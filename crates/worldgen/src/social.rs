//! Follower-graph generation: preferential attachment with instance and
//! country homophily.
//!
//! Calibration targets (§3, §5.1):
//! - ≈10.8 follower edges per account (9.25M edges / 853K accounts),
//! - power-law out-degree (Fig. 11),
//! - LCC containing ≈99.95% of accounts,
//! - catastrophic sensitivity to top-degree removal (top 1% → LCC ≈26%,
//!   Fig. 12), which emerges from hub-mediated connectivity,
//! - instance homophily so the induced federation graph has ≈92% of
//!   instances in its LCC and 32% same-country subscription links (Fig. 6).

use crate::config::WorldConfig;
use crate::pools::{Membership, SegmentedPools};
use fediscope_model::geo::Country;
use fediscope_model::ids::UserId;
use fediscope_model::instance::Instance;
use fediscope_model::user::UserProfile;
use rand::prelude::*;

/// Solve for the Pareto exponent α such that a power law truncated at `cap`
/// has (approximately) the requested mean:
/// `E[floor(X) | X ≤ cap] ≈ (cap^(2−α) − 1) / (2 − α) = mean`.
///
/// Without the truncation correction the realised mean falls far short of
/// the target (the untruncated tail above the cap carries a large share of
/// the mass at α ≈ 2).
fn solve_alpha(mean: f64, cap: u32) -> f64 {
    assert!(mean > 1.0, "mean out-degree must exceed 1");
    let cap = cap.max(2) as f64;
    let truncated_mean = |alpha: f64| -> f64 {
        let e = 2.0 - alpha;
        if e.abs() < 1e-9 {
            cap.ln()
        } else {
            (cap.powf(e) - 1.0) / e
        }
    };
    let (mut lo, mut hi) = (1.05f64, 3.5f64); // mean decreasing in alpha
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if truncated_mean(mid) > mean {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Sample an out-degree from a discrete power law with exponent `alpha`
/// (from [`solve_alpha`]), floored and clamped to `[1, cap]`.
fn sample_out_degree<R: Rng>(alpha: f64, cap: u32, rng: &mut R) -> u32 {
    let u: f64 = rng.gen::<f64>().max(1e-12);
    let x = u.powf(-1.0 / (alpha - 1.0));
    (x.floor() as u32).clamp(1, cap)
}

/// Fraction of zero-out-degree accounts would break the "every scraped
/// account has at least one edge" invariant of the Graphs dataset, so the
/// minimum is 1; the heavy tail provides the hubs.
///
/// Convenience wrapper over [`generate_with`] that collects the edge
/// stream into a `Vec` (the [`World`](fediscope_model::world::World)
/// representation). Large-scale consumers that only need the graph should
/// call [`generate_with`] and stream edges straight into a CSR builder —
/// at a million users the intermediate edge list alone is ~100 MB.
pub fn generate<R: Rng>(
    cfg: &WorldConfig,
    instances: &[Instance],
    users: &[UserProfile],
    rng: &mut R,
) -> Vec<(UserId, UserId)> {
    let mut edges: Vec<(UserId, UserId)> =
        Vec::with_capacity((users.len() as f64 * cfg.mean_out_degree) as usize);
    generate_with(cfg, instances, users, rng, &mut |a, b| {
        edges.push((UserId(a), UserId(b)))
    });
    edges
}

/// Which attachment pool a follow draw copies from.
enum PoolChoice {
    /// Same-instance pool (index into the instance table).
    Inst(usize),
    /// Same-country pool (index into `Country::ALL`).
    Country(usize),
    /// The global pool.
    Global,
}

/// Streaming core of the follower-graph generator: `sink` is invoked once
/// per generated edge `(follower, followee)`, in generation order.
///
/// The edge stream is bit-identical to what [`generate`] collects — the
/// attachment pools were moved from `Vec<Vec<u32>>` onto the flat
/// [`SegmentedPools`]/[`Membership`] arenas (one allocation apiece instead
/// of one per instance), which preserves pool contents and ordering and
/// therefore the entire RNG draw sequence.
pub fn generate_with<R: Rng>(
    cfg: &WorldConfig,
    instances: &[Instance],
    users: &[UserProfile],
    rng: &mut R,
    sink: &mut dyn FnMut(u32, u32),
) {
    let n = users.len();
    if n < 2 {
        return;
    }

    // Membership indexes. Followees are drawn from *tooting* users only —
    // you discover accounts through their content, so silent accounts
    // accumulate (almost) no followers. This is what makes the graph
    // hub-dependent enough to reproduce Fig. 12's collapse: the median
    // account has one or two edges, all pointing into the tooting core.
    let country_of_instance: Vec<usize> = instances
        .iter()
        .map(|i| Country::ALL.iter().position(|&c| c == i.country).unwrap())
        .collect();
    let tooting_by_instance = Membership::new(
        instances.len(),
        users
            .iter()
            .filter(|u| u.has_tooted())
            .map(|u| (u.instance.index() as u32, u.id.0)),
    );
    let tooting_by_country = Membership::new(
        Country::ALL.len(),
        users
            .iter()
            .filter(|u| u.has_tooted())
            .map(|u| (country_of_instance[u.instance.index()] as u32, u.id.0)),
    );
    let mut tooting_all: Vec<u32> = users
        .iter()
        .filter(|u| u.has_tooted())
        .map(|u| u.id.0)
        .collect();
    if tooting_all.is_empty() {
        // degenerate world without content: fall back to everyone
        tooting_all = (0..n as u32).collect();
    }

    // Copy-model pools: a draw from a pool implements linear preferential
    // attachment because frequently-followed accounts occur more often.
    let mut global_pool: Vec<u32> = Vec::with_capacity(n * 12);
    let mut inst_pools = SegmentedPools::new(instances.len());
    let mut country_pools = SegmentedPools::new(Country::ALL.len());

    // Probability of a uniform (non-copied) draw. Kept small: a large
    // uniform mix builds an Erdős–Rényi backbone that survives hub removal,
    // which would contradict the paper's Fig. 12.
    const UNIFORM_MIX: f64 = 0.08;

    let cap = (n as u32 / 4).max(10);
    // Lurkers follow 1–2 accounts; tooting users carry the rest of the
    // configured mean degree.
    let lurker_mean = 1.5f64;
    let tooting_mean = ((cfg.mean_out_degree - (1.0 - cfg.tooting_frac) * lurker_mean)
        / cfg.tooting_frac)
        .max(2.0);
    let alpha_tooting = solve_alpha(tooting_mean, cap);

    // Visit users in a shuffled order so early ids get no structural
    // advantage.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);

    for &uid in &order {
        let u = &users[uid as usize];
        let inst = u.instance.index();
        let country = country_of_instance[inst];
        let d = if u.has_tooted() {
            sample_out_degree(alpha_tooting, cap, rng)
        } else {
            // 1 w.p. 0.7, 2 w.p. 0.2, 3..=5 otherwise (mean ≈ 1.5)
            match rng.gen::<f64>() {
                x if x < 0.7 => 1,
                x if x < 0.9 => 2,
                _ => rng.gen_range(3..=5),
            }
        };

        for _ in 0..d {
            let roll: f64 = rng.gen();
            let (pool, domain): (PoolChoice, &[u32]) = if roll < cfg.p_follow_same_instance {
                (PoolChoice::Inst(inst), tooting_by_instance.domain(inst))
            } else if roll < cfg.p_follow_same_instance + cfg.p_follow_same_country {
                (
                    PoolChoice::Country(country),
                    tooting_by_country.domain(country),
                )
            } else {
                (PoolChoice::Global, &tooting_all)
            };
            let pool_len = match pool {
                PoolChoice::Inst(i) => inst_pools.len(i),
                PoolChoice::Country(c) => country_pools.len(c),
                PoolChoice::Global => global_pool.len(),
            };

            let mut target: Option<u32> = None;
            for _attempt in 0..4 {
                let cand = if pool_len > 0 && rng.gen::<f64>() > UNIFORM_MIX {
                    let i = rng.gen_range(0..pool_len);
                    match pool {
                        PoolChoice::Inst(d) => inst_pools.get(d, i),
                        PoolChoice::Country(d) => country_pools.get(d, i),
                        PoolChoice::Global => global_pool[i],
                    }
                } else if !domain.is_empty() {
                    domain[rng.gen_range(0..domain.len())]
                } else {
                    // no tooting members in this domain: global fallback
                    tooting_all[rng.gen_range(0..tooting_all.len())]
                };
                if cand != uid {
                    target = Some(cand);
                    break;
                }
            }
            let Some(t) = target else { continue };
            sink(uid, t);
            // Reinforce pools (linear PA).
            global_pool.push(t);
            let t_inst = users[t as usize].instance.index();
            inst_pools.push(t_inst, t);
            country_pools.push(country_of_instance[t_inst], t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::sub_seed;
    use fediscope_graph::{weakly_connected, DiGraph};
    use fediscope_model::geo::ProviderCatalog;
    use rand::rngs::StdRng;

    fn build(seed: u64, n_inst: usize, n_users: usize) -> (Vec<Instance>, Vec<UserProfile>, Vec<(UserId, UserId)>) {
        let mut cfg = WorldConfig::tiny(seed);
        cfg.n_instances = n_inst;
        cfg.n_users = n_users;
        let providers = ProviderCatalog::with_tail(cfg.n_providers);
        let mut r1 = StdRng::seed_from_u64(sub_seed(seed, 1));
        let stage = crate::instances::generate(&cfg, &providers, &mut r1);
        let mut instances = stage.instances;
        let mut r2 = StdRng::seed_from_u64(sub_seed(seed, 2));
        let users = crate::users::generate(&cfg, &mut instances, &stage.popularity, &mut r2);
        let mut r3 = StdRng::seed_from_u64(sub_seed(seed, 3));
        let follows = generate(&cfg, &instances, &users, &mut r3);
        (instances, users, follows)
    }

    fn to_graph(n: usize, follows: &[(UserId, UserId)]) -> DiGraph {
        DiGraph::from_edges(n as u32, follows.iter().map(|&(a, b)| (a.0, b.0)))
    }

    #[test]
    fn no_self_loops_and_in_range() {
        let (_, users, follows) = build(3, 40, 2_000);
        for &(a, b) in &follows {
            assert_ne!(a, b);
            assert!(a.index() < users.len() && b.index() < users.len());
        }
    }

    #[test]
    fn mean_degree_near_target() {
        let (_, users, follows) = build(5, 40, 4_000);
        let mean = follows.len() as f64 / users.len() as f64;
        assert!(
            mean > 5.0 && mean < 25.0,
            "mean out-degree {mean} out of band"
        );
    }

    #[test]
    fn lcc_is_nearly_everyone() {
        let (_, users, follows) = build(7, 40, 4_000);
        let g = to_graph(users.len(), &follows);
        let wcc = weakly_connected(&g, None);
        let frac = wcc.largest() as f64 / users.len() as f64;
        assert!(frac > 0.99, "LCC fraction {frac}");
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let (_, users, follows) = build(11, 40, 6_000);
        let g = to_graph(users.len(), &follows);
        let in_degrees: Vec<f64> = (0..users.len() as u32).map(|v| g.in_degree(v) as f64).collect();
        let max_in = in_degrees.iter().cloned().fold(0.0, f64::max);
        let mean_in = in_degrees.iter().sum::<f64>() / in_degrees.len() as f64;
        // hubs exist: max ≫ mean
        assert!(
            max_in > 20.0 * mean_in,
            "no hubs: max {max_in} mean {mean_in}"
        );
        let fit = fediscope_stats::PowerLawFit::fit(&in_degrees, 5.0).expect("fit");
        assert!(
            fit.alpha > 1.3 && fit.alpha < 4.0,
            "implausible alpha {}",
            fit.alpha
        );
    }

    #[test]
    fn homophily_matches_configuration() {
        let (_, users, follows) = build(13, 200, 8_000);
        let same_inst = follows
            .iter()
            .filter(|&&(a, b)| users[a.index()].instance == users[b.index()].instance)
            .count() as f64
            / follows.len() as f64;
        // p_follow_same_instance is 0.30, but the concentration of users on
        // a few big instances means country/global draws also frequently
        // land on the follower's own instance; the share sits well above the
        // parameter and below total dominance.
        assert!(
            same_inst > 0.25 && same_inst < 0.80,
            "same-instance share {same_inst}"
        );
        // there must still be substantial federation
        assert!(1.0 - same_inst > 0.15, "cross-instance share too small");
    }

    #[test]
    fn federation_graph_mostly_connected() {
        let (instances, users, follows) = build(17, 80, 6_000);
        let mut fed = std::collections::HashSet::new();
        for &(a, b) in &follows {
            let (ia, ib) = (users[a.index()].instance, users[b.index()].instance);
            if ia != ib {
                fed.insert((ia.0, ib.0));
            }
        }
        let g = DiGraph::from_edges(instances.len() as u32, fed.iter().copied());
        let wcc = weakly_connected(&g, None);
        // instances with zero users are isolated; among populated ones the
        // LCC should dominate
        let populated = instances.iter().filter(|i| i.user_count > 0).count();
        let frac = wcc.largest() as f64 / populated.max(1) as f64;
        assert!(frac > 0.7, "federation LCC fraction {frac}");
    }

    #[test]
    fn deterministic() {
        let (_, _, a) = build(23, 40, 2_000);
        let (_, _, b) = build(23, 40, 2_000);
        assert_eq!(a, b);
    }

    #[test]
    fn out_degree_sampler_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let alpha = solve_alpha(10.8, 100);
        for _ in 0..5_000 {
            let d = sample_out_degree(alpha, 100, &mut rng);
            assert!((1..=100).contains(&d));
        }
        let cap = 10_000;
        let alpha = solve_alpha(10.8, cap);
        let mean: f64 = (0..100_000)
            .map(|_| sample_out_degree(alpha, cap, &mut rng) as f64)
            .sum::<f64>()
            / 100_000.0;
        // truncation-corrected alpha should land near the requested mean
        assert!(mean > 6.0 && mean < 18.0, "sampled mean {mean}");
    }

    #[test]
    fn solve_alpha_monotone_in_mean() {
        let a_small = solve_alpha(3.0, 1000);
        let a_big = solve_alpha(20.0, 1000);
        // larger target mean needs a heavier tail (smaller alpha)
        assert!(a_big < a_small);
        assert!(a_small > 1.05 && a_small < 3.5);
    }

    #[test]
    fn tiny_population_degenerate_ok() {
        let mut cfg = WorldConfig::tiny(1);
        cfg.n_instances = 2;
        cfg.n_users = 1;
        let providers = ProviderCatalog::with_tail(cfg.n_providers);
        let mut r = StdRng::seed_from_u64(1);
        let stage = crate::instances::generate(&cfg, &providers, &mut r);
        let mut instances = stage.instances;
        let users = crate::users::generate(&cfg, &mut instances, &stage.popularity, &mut r);
        let follows = generate(&cfg, &instances, &users, &mut r);
        assert!(follows.is_empty());
    }
}
