//! Generator configuration.
//!
//! Every knob defaults to a value calibrated against a number stated in the
//! paper (the doc comment on each field cites it). Scale presets control how
//! large a world is generated; the *shapes* are scale-free, so analyses on a
//! `tiny()` world reproduce the same qualitative results as `paper_scaled()`.

pub use fediscope_model::scale::ScaleTier;

/// Knobs for [`crate::Generator`].
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed; every stream of randomness derives from it.
    pub seed: u64,
    /// Number of instances (paper: 4,328).
    pub n_instances: usize,
    /// Number of user accounts (paper: 853K accounts in the follower graph;
    /// scaled down by default for tractability).
    pub n_users: usize,
    /// Number of hosting ASes (paper: 351).
    pub n_providers: usize,
    /// Fraction of instances running Pleroma (paper: 3.1%).
    pub pleroma_frac: f64,
    /// Fraction of instances with open registration (paper: 47.8%).
    pub open_frac: f64,
    /// Fraction of instances that self-declare categories (paper: 697/4328).
    pub categorised_frac: f64,
    /// Zipf exponent of the instance-popularity (users per instance) law.
    /// 1.4 puts ≈90% of users on the top 5% of instances (paper: 90.6%).
    pub instance_zipf_exponent: f64,
    /// Multiplicative user-attraction boost for open-registration instances
    /// (paper: open instances average 613 users vs 87 for closed).
    pub open_boost: f64,
    /// Multiplicative user-attraction boost for adult-categorised instances
    /// (paper: 12.3% of categorised instances hold 61% of categorised users).
    pub adult_boost: f64,
    /// Mean toots per user on open instances (paper: 94.8).
    pub toots_per_user_open: f64,
    /// Mean toots per user on closed instances (paper: 186.65).
    pub toots_per_user_closed: f64,
    /// Fraction of accounts that have tooted at least once (paper: 239K
    /// tooting users were crawled; the graphs dataset has 853K accounts).
    pub tooting_frac: f64,
    /// Mean follower-graph out-degree (paper: 9.25M edges / 853K ≈ 10.8).
    pub mean_out_degree: f64,
    /// Probability a follow edge stays on the follower's own instance.
    pub p_follow_same_instance: f64,
    /// Probability a (remote) follow edge stays in the follower's country
    /// (drives Fig. 6 homophily; paper: 32% of federation links are
    /// same-country).
    pub p_follow_same_country: f64,
    /// Preferential-attachment strength when picking followees (1.0 = linear
    /// PA; smaller flattens the in-degree tail).
    pub attachment_exponent: f64,
    /// Fraction of instances that permanently disappear during the window
    /// (paper: 21.3% "went offline and never came back").
    pub churn_frac: f64,
    /// Median lifetime downtime fraction (paper: about half the instances
    /// have <5% downtime, hence a median near 0.05).
    pub downtime_median: f64,
    /// Log-normal sigma of the lifetime downtime fraction (tuned so ≈11% of
    /// instances exceed 50% downtime, per §4.4).
    pub downtime_sigma: f64,
    /// Fraction of instances whose certificates renew automatically.
    /// The complement produces Fig. 9(b)'s expiry outages (6.3% of outages).
    pub cert_auto_renew_frac: f64,
    /// Instances participating in the synchronized Let's Encrypt cohort that
    /// expires together on 2018-07-23 (paper: 105 instances).
    pub cert_cohort_frac: f64,
    /// Fraction of instances that block toot crawling (drives the 62%
    /// coverage of the toots dataset).
    pub crawl_blocked_frac: f64,
    /// Mean fraction of toots set to private per instance.
    pub private_toot_frac_mean: f64,
    /// Twitter baseline: node count of the comparison follower graph.
    pub twitter_users: usize,
    /// Twitter baseline: mean out-degree (denser, flatter than Mastodon).
    pub twitter_mean_out_degree: f64,
    /// Twitter baseline: mean daily downtime (paper: 1.25% in 2007).
    pub twitter_mean_downtime: f64,
}

impl WorldConfig {
    /// Tiny world for unit tests (runs in milliseconds).
    pub fn tiny(seed: u64) -> Self {
        Self {
            n_instances: 60,
            n_users: 1_500,
            n_providers: 30,
            twitter_users: 1_000,
            ..Self::base(seed)
        }
    }

    /// Small world for integration tests and examples (≈1 s to generate).
    pub fn small(seed: u64) -> Self {
        Self {
            n_instances: 433,
            n_users: 12_000,
            n_providers: 120,
            twitter_users: 8_000,
            ..Self::base(seed)
        }
    }

    /// Bench-scale world with the paper's instance and AS counts and a
    /// 1:7-scaled user population.
    pub fn paper_scaled(seed: u64) -> Self {
        Self {
            n_instances: 4_328,
            n_users: 120_000,
            n_providers: 351,
            twitter_users: 60_000,
            ..Self::base(seed)
        }
    }

    /// Full-scale population counts (859K accounts). Heavy: only for
    /// explicitly opted-in experiments.
    pub fn paper_full(seed: u64) -> Self {
        Self {
            n_instances: 4_328,
            n_users: 853_000,
            n_providers: 351,
            twitter_users: 400_000,
            ..Self::base(seed)
        }
    }

    /// Preset for a named [`ScaleTier`] (paper-2019 / mid / modern /
    /// fediverse2026). The calibrated *shape* constants stay fixed — only
    /// population counts move, so per-tier analyses differ in scale, not
    /// in law. The Twitter baseline is scaled down (1:15, capped at the
    /// paper-full 400K) to keep tier benchmarks focused on the Mastodon
    /// graph.
    pub fn for_tier(tier: ScaleTier, seed: u64) -> Self {
        Self {
            n_instances: tier.n_instances(),
            n_users: tier.n_users(),
            n_providers: tier.n_providers(),
            twitter_users: (tier.n_users() / 15).clamp(1_000, 400_000),
            ..Self::base(seed)
        }
    }

    fn base(seed: u64) -> Self {
        Self {
            seed,
            n_instances: 433,
            n_users: 12_000,
            n_providers: 120,
            pleroma_frac: 0.031,
            open_frac: 0.478,
            categorised_frac: 697.0 / 4328.0,
            instance_zipf_exponent: 1.4,
            open_boost: 4.0,
            adult_boost: 3.0,
            toots_per_user_open: 94.8,
            toots_per_user_closed: 186.65,
            tooting_frac: 239.0 / 853.0,
            mean_out_degree: 10.8,
            p_follow_same_instance: 0.30,
            p_follow_same_country: 0.40,
            attachment_exponent: 1.0,
            churn_frac: 0.213,
            downtime_median: 0.05,
            downtime_sigma: 1.88,
            cert_auto_renew_frac: 0.93,
            cert_cohort_frac: 105.0 / 4328.0,
            crawl_blocked_frac: 0.25,
            private_toot_frac_mean: 0.125,
            twitter_users: 8_000,
            twitter_mean_out_degree: 14.0,
            twitter_mean_downtime: 0.0125,
        }
    }
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self::small(42)
    }
}

/// SplitMix64: derive independent sub-seeds from the master seed so adding a
/// new randomness consumer never perturbs existing streams.
pub fn sub_seed(master: u64, stream: u64) -> u64 {
    let mut z = master ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_scale_monotonically() {
        let t = WorldConfig::tiny(1);
        let s = WorldConfig::small(1);
        let p = WorldConfig::paper_scaled(1);
        assert!(t.n_instances < s.n_instances);
        assert!(s.n_instances < p.n_instances);
        assert!(t.n_users < s.n_users);
        assert_eq!(p.n_instances, 4_328);
        assert_eq!(p.n_providers, 351);
    }

    #[test]
    fn calibration_constants_match_paper() {
        let c = WorldConfig::default();
        assert!((c.pleroma_frac - 0.031).abs() < 1e-9);
        assert!((c.open_frac - 0.478).abs() < 1e-9);
        assert!((c.churn_frac - 0.213).abs() < 1e-9);
        assert!((c.toots_per_user_open - 94.8).abs() < 1e-9);
        assert!((c.toots_per_user_closed - 186.65).abs() < 1e-9);
    }

    #[test]
    fn tier_presets_match_tier_tables() {
        for tier in ScaleTier::ALL {
            let c = WorldConfig::for_tier(tier, 5);
            assert_eq!(c.n_instances, tier.n_instances());
            assert_eq!(c.n_users, tier.n_users());
            assert_eq!(c.n_providers, tier.n_providers());
            assert_eq!(c.seed, 5);
            assert!(c.twitter_users < c.n_users);
            // shape constants are tier-independent
            assert!((c.mean_out_degree - 10.8).abs() < 1e-9);
        }
        assert_eq!(
            WorldConfig::for_tier(ScaleTier::Modern, 1).n_users,
            1_000_000
        );
    }

    #[test]
    fn sub_seed_streams_differ() {
        let a = sub_seed(42, 1);
        let b = sub_seed(42, 2);
        let c = sub_seed(43, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        // deterministic
        assert_eq!(a, sub_seed(42, 1));
    }

    #[test]
    fn sub_seed_avalanche() {
        // flipping one master bit should flip roughly half the output bits
        let x = sub_seed(0, 7);
        let y = sub_seed(1, 7);
        let flipped = (x ^ y).count_ones();
        assert!((16..=48).contains(&flipped), "weak diffusion: {flipped}");
    }
}
