//! Twitter comparison baselines (§3 "Twitter" dataset).
//!
//! Two artefacts:
//! - a 2007-era daily downtime series (pingdom probes, Feb–Dec 2007; mean
//!   ≈1.25% — "even Twitter, which was famous for its poor availability, had
//!   better availability compared to Mastodon"), and
//! - a 2011-era follower-graph sample whose LCC holds ≈95% of accounts but
//!   which degrades *gracefully* under top-degree removal (removing the top
//!   10% still leaves ≈80% of users in the LCC, Fig. 12), because its
//!   periphery is denser and less hub-dependent than Mastodon's.

use crate::config::WorldConfig;
use fediscope_model::world::TwitterBaseline;
use rand::prelude::*;
use rand_distr::{Distribution, LogNormal};

/// Days in the Feb–Dec 2007 probe window.
pub const TWITTER_PROBE_DAYS: usize = 334;

/// Generate both baselines.
pub fn generate<R: Rng>(cfg: &WorldConfig, rng: &mut R) -> TwitterBaseline {
    // --- daily downtime -----------------------------------------------------
    // Log-normal body with occasional fail-whale spikes.
    let body = LogNormal::new((cfg.twitter_mean_downtime * 0.64).ln(), 0.9).unwrap();
    let daily_downtime: Vec<f64> = (0..TWITTER_PROBE_DAYS)
        .map(|_| {
            let mut d: f64 = body.sample(rng);
            if rng.gen_bool(0.02) {
                // a bad fail-whale day
                d += rng.gen_range(0.05..0.20);
            }
            d.min(0.6)
        })
        .collect();

    // --- follower graph -----------------------------------------------------
    let n = cfg.twitter_users as u32;
    if n < 2 {
        return TwitterBaseline {
            daily_downtime,
            follows: Vec::new(),
            n_users: n,
        };
    }
    // ~5% of sampled accounts are inactive and isolated (LCC ≈ 95%).
    let active_cut = ((n as f64) * 0.95) as u32;
    let deg = LogNormal::new((cfg.twitter_mean_out_degree * 0.78).ln(), 0.7).unwrap();
    let mut pool: Vec<u32> = Vec::new();
    let mut follows = Vec::new();
    let mut order: Vec<u32> = (0..active_cut).collect();
    order.shuffle(rng);
    for &u in &order {
        let d = (deg.sample(rng) as u32).clamp(3, active_cut / 2);
        for _ in 0..d {
            // Half uniform, half preferential: a much flatter attachment
            // kernel than Mastodon's, yielding the robust core.
            let mut t = if pool.is_empty() || rng.gen_bool(0.5) {
                rng.gen_range(0..active_cut)
            } else {
                pool[rng.gen_range(0..pool.len())]
            };
            if t == u {
                t = (t + 1) % active_cut;
                if t == u {
                    continue;
                }
            }
            follows.push((u, t));
            pool.push(t);
        }
    }
    TwitterBaseline {
        daily_downtime,
        follows,
        n_users: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_graph::{weakly_connected, DiGraph};
    use rand::rngs::StdRng;

    fn build(seed: u64, users: usize) -> TwitterBaseline {
        let mut cfg = WorldConfig::tiny(seed);
        cfg.twitter_users = users;
        let mut rng = StdRng::seed_from_u64(seed);
        generate(&cfg, &mut rng)
    }

    #[test]
    fn downtime_mean_near_1_25_pct() {
        let t = build(3, 100);
        assert_eq!(t.daily_downtime.len(), TWITTER_PROBE_DAYS);
        let mean = t.daily_downtime.iter().sum::<f64>() / t.daily_downtime.len() as f64;
        assert!(
            (0.005..0.035).contains(&mean),
            "twitter mean downtime {mean}"
        );
    }

    #[test]
    fn downtime_far_below_mastodon_average() {
        // Paper: Twitter 1.25% vs Mastodon 10.95%.
        let t = build(5, 100);
        let mean = t.daily_downtime.iter().sum::<f64>() / t.daily_downtime.len() as f64;
        assert!(mean < 0.05);
    }

    #[test]
    fn lcc_about_95_pct() {
        let t = build(7, 4000);
        let g = DiGraph::from_edges(t.n_users, t.follows.iter().copied());
        let wcc = weakly_connected(&g, None);
        let frac = wcc.largest() as f64 / t.n_users as f64;
        assert!((0.90..=0.97).contains(&frac), "LCC {frac}");
    }

    #[test]
    fn robust_to_top_degree_removal() {
        use fediscope_graph::removal::{RankBy, RemovalSweep};
        let t = build(11, 4000);
        let g = DiGraph::from_edges(t.n_users, t.follows.iter().copied());
        // remove 10% over ten 1%-rounds of iterative top-degree attack
        let pts = RemovalSweep::new(&g).iterative_fraction(0.01, 10, RankBy::DegreeIterative);
        let survived = pts.last().unwrap().lcc_nodes as f64 / t.n_users as f64;
        assert!(
            survived > 0.6,
            "Twitter LCC after top-10% attack too small: {survived}"
        );
    }

    #[test]
    fn no_self_loops() {
        let t = build(13, 1000);
        assert!(t.follows.iter().all(|&(a, b)| a != b));
    }

    #[test]
    fn degenerate_sizes() {
        let t = build(17, 1);
        assert!(t.follows.is_empty());
        assert_eq!(t.n_users, 1);
    }

    #[test]
    fn deterministic() {
        let a = build(23, 500);
        let b = build(23, 500);
        assert_eq!(a, b);
    }
}
