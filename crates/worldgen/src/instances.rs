//! Instance population generation (§4.1–§4.3 calibration).

use crate::config::WorldConfig;
use fediscope_model::certs::{Certificate, CertificateAuthority};
use fediscope_model::geo::{Country, ProviderCatalog};
use fediscope_model::ids::InstanceId;
use fediscope_model::instance::{Instance, OperatorKind, Registration, Software};
use fediscope_model::taxonomy::{Activity, Category, CategorySet, PolicySet};
use fediscope_model::time::Day;
use rand::prelude::*;

/// Output of the instance stage: the instance records (with user/toot counts
/// still zero — the user stage fills them) plus each instance's popularity
/// weight used for user placement.
pub struct InstanceStage {
    /// Instance records.
    pub instances: Vec<Instance>,
    /// Un-normalised user-attraction weight per instance.
    pub popularity: Vec<f64>,
}

/// Per-category probability that a *declaring, non-generic* instance carries
/// the tag (multi-label; Fig. 3's instance bars, renormalised to the
/// non-generic subset).
const CATEGORY_PROBS: [(Category, f64); 15] = [
    (Category::Tech, 0.552),
    (Category::Games, 0.373),
    (Category::Art, 0.3015),
    (Category::Activism, 0.16),
    (Category::Music, 0.15),
    (Category::Anime, 0.246),
    (Category::Books, 0.11),
    (Category::Academia, 0.10),
    (Category::Lgbt, 0.09),
    (Category::Journalism, 0.08),
    (Category::Furry, 0.07),
    (Category::Sports, 0.06),
    (Category::Adult, 0.123),
    (Category::Poc, 0.04),
    (Category::Humor, 0.04),
];

/// Probability an activity is explicitly *prohibited* (Fig. 4 left panel:
/// spam 76%, porn w/o NSFW 66%, nudity w/o NSFW 62%, …).
fn prohibit_prob(a: Activity) -> f64 {
    match a {
        Activity::Spam => 0.76,
        Activity::PornWithoutNsfw => 0.66,
        Activity::NudityWithoutNsfw => 0.62,
        Activity::LinksToIllegalContent => 0.55,
        Activity::Advertising => 0.30,
        Activity::SpoilersWithoutCw => 0.25,
        Activity::PornWithNsfw => 0.20,
        Activity::NudityWithNsfw => 0.12,
    }
}

/// Probability an activity is explicitly *allowed*, given it was not
/// prohibited (Fig. 4 right panel; e.g. 24% of instances allow spam and
/// "many more explicitly allow" spoilers without CW).
fn allow_prob(a: Activity) -> f64 {
    match a {
        Activity::Spam => 0.55,
        Activity::PornWithoutNsfw => 0.35,
        Activity::NudityWithoutNsfw => 0.40,
        Activity::LinksToIllegalContent => 0.25,
        Activity::Advertising => 0.75,
        Activity::SpoilersWithoutCw => 0.85,
        Activity::PornWithNsfw => 0.80,
        Activity::NudityWithNsfw => 0.85,
    }
}

/// Country shares for instance placement (Fig. 5 top panel: JP 25.5%,
/// US 21.4%, FR 16%, DE/NL follow).
const COUNTRY_SHARES: [(Country, f64); 8] = [
    (Country::Japan, 0.255),
    (Country::UnitedStates, 0.214),
    (Country::France, 0.16),
    (Country::Germany, 0.085),
    (Country::Netherlands, 0.045),
    (Country::UnitedKingdom, 0.045),
    (Country::Canada, 0.035),
    (Country::Other, 0.161),
];

/// Within-country provider preferences `(name prefix, weight)` for ordinary
/// (non-head) instances. Remaining weight spreads uniformly over the
/// country's tail ASes. Calibrated so the §5.1 "top-5 ASes by instances"
/// set {OVH, Scaleway, Sakura, Hetzner, GMO} collectively hosts ≈40% of
/// instances.
fn named_provider_prefs(c: Country) -> &'static [(&'static str, f64)] {
    match c {
        Country::Japan => &[
            ("SAKURA Internet Inc.", 0.33),
            ("GMO", 0.28),
            ("KDDI", 0.012),
            ("SAKURA Internet Inc. (2)", 0.010),
            ("ARTERIA", 0.02),
        ],
        Country::UnitedStates => &[
            ("Amazon", 0.25),
            ("Cloudflare", 0.22),
            ("DigitalOcean", 0.21),
            ("Choopa", 0.022),
            ("Microsoft", 0.012),
            ("Google", 0.04),
            ("Linode", 0.05),
        ],
        Country::France => &[
            ("OVH", 0.56),
            ("Scaleway", 0.34),
            ("Free SAS", 0.012),
        ],
        Country::Germany => &[
            ("Hetzner", 0.70),
            ("Contabo", 0.10),
            ("netcup", 0.07),
        ],
        Country::Netherlands => &[("LeaseWeb", 0.45), ("WorldStream", 0.30)],
        _ => &[],
    }
}

/// Provider preferences for *head* instances (the top ≈1.5% by popularity):
/// the paper finds the biggest instances clustered on Amazon (>30% of all
/// users on 6% of instances), Cloudflare (31.7% of toots) and the big
/// Japanese hosts. Japanese providers get ≈40% of the head mass so "Japan
/// hosts … 41% of all users" (Fig. 5) reproduces. `(name prefix, weight)`.
const HEAD_PROVIDER_PREFS: [(&str, f64); 10] = [
    ("SAKURA Internet Inc.", 0.22),
    ("GMO", 0.12),
    ("KDDI", 0.06),
    ("Amazon", 0.25),
    ("Cloudflare", 0.15),
    ("OVH", 0.06),
    ("Scaleway", 0.03),
    ("Google", 0.02),
    ("DigitalOcean", 0.05),
    ("Hetzner", 0.04),
];

/// The paper's Table 2 domains, used to label the top-10 generated instances
/// (by popularity) for familiar output.
const TOP_DOMAINS: [(&str, OperatorKind); 10] = [
    ("mstdn.jp", OperatorKind::Individual),
    ("friends.nico", OperatorKind::Company),
    ("pawoo.net", OperatorKind::Company),
    ("mimumedon.com", OperatorKind::Individual),
    ("imastodon.net", OperatorKind::CrowdFunded),
    ("mastodon.social", OperatorKind::CrowdFunded),
    ("mastodon.cloud", OperatorKind::Unknown),
    ("mstdn-workers.com", OperatorKind::CrowdFunded),
    ("vocalodon.net", OperatorKind::CrowdFunded),
    ("mstdn.osaka", OperatorKind::Individual),
];

/// Piecewise-linear CDF of instance creation over the window: a pre-window
/// base, the Apr–Jun 2017 burst, the Jul–Dec 2017 plateau ("only 6% of
/// instances were setup between July and December"), and the H1-2018
/// re-acceleration ("43% growth").
const CREATION_CDF: [(u32, f64); 5] = [
    (0, 0.40),
    (50, 0.56),
    (81, 0.60),
    (264, 0.64),
    (471, 1.00),
];

fn sample_creation_day<R: Rng>(rng: &mut R) -> Day {
    let u: f64 = rng.gen();
    if u <= CREATION_CDF[0].1 {
        return Day(0); // existed before the window started
    }
    for w in CREATION_CDF.windows(2) {
        let (d0, c0) = w[0];
        let (d1, c1) = w[1];
        if u <= c1 {
            let frac = (u - c0) / (c1 - c0);
            let day = d0 as f64 + frac * (d1 - d0) as f64;
            return Day(day.round() as u32);
        }
    }
    Day(471)
}

fn pick_weighted<'a, R: Rng>(rng: &mut R, items: &'a [(usize, f64)]) -> Option<&'a (usize, f64)> {
    let total: f64 = items.iter().map(|(_, w)| w).sum();
    if total <= 0.0 {
        return None;
    }
    let mut x = rng.gen::<f64>() * total;
    for it in items {
        x -= it.1;
        if x <= 0.0 {
            return Some(it);
        }
    }
    items.last()
}

/// Generate the instance population.
pub fn generate<R: Rng>(
    cfg: &WorldConfig,
    providers: &ProviderCatalog,
    rng: &mut R,
) -> InstanceStage {
    let n = cfg.n_instances;

    // --- popularity ranks: Zipf over a random permutation ----------------
    // rank_of[i] is the popularity rank of instance i (0 = most popular).
    let mut perm: Vec<usize> = (0..n).collect();
    perm.shuffle(rng);
    let mut rank_of = vec![0usize; n];
    for (rank, &inst) in perm.iter().enumerate() {
        rank_of[inst] = rank;
    }
    let head_cutoff = ((n as f64) * 0.015).ceil() as usize;

    // --- provider index sets by name / country ---------------------------
    let by_country: Vec<Vec<usize>> = Country::ALL
        .iter()
        .map(|&c| {
            providers
                .providers()
                .iter()
                .enumerate()
                .filter(|(_, p)| p.country == c && p.name.starts_with("Tail"))
                .map(|(i, _)| i)
                .collect()
        })
        .collect();
    let country_idx = |c: Country| Country::ALL.iter().position(|&x| x == c).unwrap();

    let resolve = |prefix: &str| providers.index_of_name(prefix);

    let mut per_provider_count = vec![0u32; providers.len()];
    let mut instances = Vec::with_capacity(n);
    let mut popularity = vec![0.0f64; n];

    // Pre-compute named preference tables resolved to provider indices.
    let head_prefs: Vec<(usize, f64)> = HEAD_PROVIDER_PREFS
        .iter()
        .filter_map(|&(name, w)| resolve(name).map(|i| (i, w)))
        .collect();

    for (i, &rank) in rank_of.iter().enumerate().take(n) {
        // The flagship instances (mstdn.jp, pawoo, mastodon.social, …) run
        // open registrations — that is *why* they are huge. Make the head
        // ranks open with high probability and rebalance the tail so the
        // overall open share stays at the configured 47.8%.
        let head_open_cut = (n / 50).max(1);
        let open = if rank < head_open_cut {
            rng.gen_bool(0.9)
        } else {
            let tail_frac = ((cfg.open_frac * n as f64) - 0.9 * head_open_cut as f64)
                / (n - head_open_cut).max(1) as f64;
            rng.gen_bool(tail_frac.clamp(0.05, 0.95))
        };
        let software = if rng.gen_bool(cfg.pleroma_frac) {
            Software::Pleroma
        } else {
            Software::Mastodon
        };

        // Categories & policies.
        let declares = rng.gen_bool(cfg.categorised_frac);
        let mut categories = CategorySet::empty();
        let mut policies = PolicySet::unstated();
        if declares {
            // 51.7% of declaring instances are "generic" (empty set).
            if !rng.gen_bool(0.517) {
                for &(c, p) in &CATEGORY_PROBS {
                    if rng.gen_bool(p) {
                        categories.insert(c);
                    }
                }
                if categories.is_empty() {
                    // force at least one tag for the non-generic subset
                    categories.insert(Category::Tech);
                }
            }
            // Policies: 17.5% allow everything; the rest state a mixture.
            if rng.gen_bool(0.175) {
                policies = PolicySet::allow_all();
            } else {
                for a in Activity::ALL {
                    let mut p_prohibit = prohibit_prob(a);
                    let mut p_allow = allow_prob(a);
                    if categories.contains(Category::Adult) {
                        // adult instances allow (tagged) NSFW content
                        match a {
                            Activity::NudityWithNsfw | Activity::PornWithNsfw => {
                                p_prohibit = 0.02;
                                p_allow = 0.95;
                            }
                            Activity::NudityWithoutNsfw | Activity::PornWithoutNsfw => {
                                p_prohibit = 0.35;
                                p_allow = 0.5;
                            }
                            _ => {}
                        }
                    }
                    if rng.gen_bool(p_prohibit) {
                        policies.prohibit(a);
                    } else if rng.gen_bool(p_allow) {
                        policies.allow(a);
                    }
                }
            }
        }

        // Provider selection (ranks 0–4 are overridden by the flagship
        // pass below).
        let provider_index = if rank < head_cutoff && !head_prefs.is_empty() {
            pick_weighted(rng, &head_prefs).map(|&(i, _)| i).unwrap()
        } else {
            // country first, then provider within country
            let cs: Vec<(usize, f64)> = COUNTRY_SHARES
                .iter()
                .map(|&(c, w)| (country_idx(c), w))
                .collect();
            let c = Country::ALL[pick_weighted(rng, &cs).unwrap().0];
            let named: Vec<(usize, f64)> = named_provider_prefs(c)
                .iter()
                .filter_map(|&(name, w)| resolve(name).map(|i| (i, w)))
                .collect();
            let named_total: f64 = named.iter().map(|(_, w)| w).sum();
            let tail = &by_country[country_idx(c)];
            let mut table = named;
            if !tail.is_empty() {
                let residual = (1.0 - named_total).max(0.0) / tail.len() as f64;
                table.extend(tail.iter().map(|&i| (i, residual)));
            }
            match pick_weighted(rng, &table) {
                Some(&(i, _)) => i,
                // country has no providers at this catalog size: fall back
                // to a uniform pick
                None => rng.gen_range(0..providers.len()),
            }
        };
        let provider = providers.get(provider_index);
        let ip = provider.ip_for(per_provider_count[provider_index]);
        per_provider_count[provider_index] += 1;

        // Certificate.
        let ca_roll: f64 = rng.gen();
        let ca = if ca_roll < 0.87 {
            CertificateAuthority::LetsEncrypt
        } else if ca_roll < 0.92 {
            CertificateAuthority::Comodo
        } else if ca_roll < 0.95 {
            CertificateAuthority::Amazon
        } else if ca_roll < 0.975 {
            CertificateAuthority::Cloudflare
        } else if ca_roll < 0.99 {
            CertificateAuthority::DigiCert
        } else {
            CertificateAuthority::Other
        };
        let auto_renew = rng.gen_bool(cfg.cert_auto_renew_frac);
        let issued = Day(rng.gen_range(0..ca.validity_days().min(400)));
        let certificate = Certificate {
            ca,
            issued,
            auto_renew,
        };

        let created = sample_creation_day(rng);

        instances.push(Instance {
            id: InstanceId(i as u32),
            domain: format!("m{i:04}.fedi.test"),
            software,
            registration: if open {
                Registration::Open
            } else {
                Registration::Closed
            },
            declares_categories: declares,
            categories,
            policies,
            country: provider.country,
            asn: provider.asn,
            provider_index: provider_index as u32,
            ip,
            certificate,
            created,
            operator: match rng.gen_range(0..10) {
                0..=5 => OperatorKind::Individual,
                6..=7 => OperatorKind::CrowdFunded,
                8 => OperatorKind::Company,
                _ => OperatorKind::Unknown,
            },
            user_count: 0,
            toot_count: 0,
            boosted_toots: 0,
            active_user_pct: 0.0,
            crawl_allowed: !rng.gen_bool(cfg.crawl_blocked_frac),
            private_toot_frac: (rng.gen::<f64>() * 2.0 * cfg.private_toot_frac_mean)
                .clamp(0.0, 0.9),
        });
    }

    // --- flagship instances ----------------------------------------------
    // The head of the real population is not a random draw: mstdn.jp,
    // friends.nico, pawoo.net and mastodon.social are open-registration,
    // predominantly Japanese-hosted, and the categorised ones are the
    // anime/games and adult/art giants (never tech). Pin those profiles on
    // ranks 0–4 so the Figs. 2/3/5 contrasts hold at every seed instead of
    // flipping on the attributes of one or two huge instances.
    struct Flagship {
        provider: &'static str,
        declares: bool,
        categories: &'static [Category],
    }
    const FLAGSHIPS: [Flagship; 5] = [
        // mstdn.jp analogue
        Flagship { provider: "SAKURA Internet Inc.", declares: false, categories: &[] },
        // friends.nico analogue
        Flagship { provider: "GMO", declares: true, categories: &[Category::Anime, Category::Games] },
        // pawoo.net analogue
        Flagship { provider: "SAKURA Internet Inc.", declares: true, categories: &[Category::Adult, Category::Art] },
        // mastodon.social analogue
        Flagship { provider: "OVH", declares: false, categories: &[] },
        // mastodon.cloud analogue
        Flagship { provider: "Amazon", declares: false, categories: &[] },
    ];
    for (rank, spec) in FLAGSHIPS.iter().enumerate() {
        let Some(&idx) = perm.get(rank) else { continue };
        let inst = &mut instances[idx];
        inst.registration = Registration::Open;
        inst.declares_categories = spec.declares;
        inst.categories = spec.categories.iter().copied().collect();
        inst.created = Day(0);
        if let Some(p) = resolve(spec.provider) {
            let provider = providers.get(p);
            inst.provider_index = p as u32;
            inst.asn = provider.asn;
            inst.country = provider.country;
            inst.ip = provider.ip_for(per_provider_count[p]);
            per_provider_count[p] += 1;
        }
    }
    // The rest of the categorised head still avoids tech (Fig. 3: the
    // big categorised communities under-produce tech content).
    let mut declaring: Vec<usize> = (0..n)
        .filter(|&i| instances[i].declares_categories)
        .collect();
    declaring.sort_by_key(|&i| rank_of[i]);
    for &i in declaring.iter().take(8) {
        instances[i].categories.remove(Category::Tech);
    }

    // --- popularity weights ---------------------------------------------
    // Zipf body with calibrated boosts; computed after the flagship pass so
    // the adult boost lands on the pinned instance.
    for (i, inst) in instances.iter().enumerate() {
        let rank = rank_of[i];
        let mut w = 1.0 / ((rank + 1) as f64).powf(cfg.instance_zipf_exponent);
        if inst.is_open() {
            w *= cfg.open_boost;
        }
        if inst.categories.contains(Category::Adult) {
            w *= cfg.adult_boost;
        }
        if inst.policies.allows(Activity::Advertising) {
            w *= 1.3;
        }
        // Late-created instances had less time to accumulate users.
        let age_frac = (472.0 - inst.created.0 as f64) / 472.0;
        w *= age_frac.max(0.05);
        popularity[i] = w;
    }

    // Label the top-10 by popularity with the paper's Table 2 domains.
    let mut by_pop: Vec<usize> = (0..n).collect();
    by_pop.sort_by(|&a, &b| popularity[b].partial_cmp(&popularity[a]).unwrap());
    for (slot, &idx) in by_pop.iter().take(TOP_DOMAINS.len().min(n)).enumerate() {
        instances[idx].domain = TOP_DOMAINS[slot].0.to_string();
        instances[idx].operator = TOP_DOMAINS[slot].1;
        // the famous instances existed from day 0 and never block crawling
        instances[idx].created = Day(0);
        instances[idx].crawl_allowed = true;
    }

    InstanceStage {
        instances,
        popularity,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::sub_seed;
    use rand::rngs::StdRng;

    fn stage(n: usize, seed: u64) -> InstanceStage {
        let mut cfg = WorldConfig::tiny(seed);
        cfg.n_instances = n;
        let providers = ProviderCatalog::with_tail(cfg.n_providers);
        let mut rng = StdRng::seed_from_u64(sub_seed(seed, 1));
        generate(&cfg, &providers, &mut rng)
    }

    #[test]
    fn deterministic_given_seed() {
        let a = stage(100, 7);
        let b = stage(100, 7);
        assert_eq!(a.instances, b.instances);
        assert_eq!(a.popularity, b.popularity);
    }

    #[test]
    fn different_seeds_differ() {
        let a = stage(100, 7);
        let b = stage(100, 8);
        assert_ne!(a.instances, b.instances);
    }

    #[test]
    fn open_share_near_config() {
        let s = stage(2000, 3);
        let open = s.instances.iter().filter(|i| i.is_open()).count() as f64 / 2000.0;
        assert!((open - 0.478).abs() < 0.05, "open share {open}");
    }

    #[test]
    fn pleroma_share_small() {
        let s = stage(2000, 3);
        let pl = s
            .instances
            .iter()
            .filter(|i| i.software == Software::Pleroma)
            .count() as f64
            / 2000.0;
        assert!(pl > 0.005 && pl < 0.08, "pleroma share {pl}");
    }

    #[test]
    fn categorised_subset_matches_fraction() {
        let s = stage(2000, 3);
        let declared = s.instances.iter().filter(|i| i.declares_categories).count() as f64;
        assert!((declared / 2000.0 - 697.0 / 4328.0).abs() < 0.05);
        // roughly half of declaring instances are generic (empty category set)
        let generic = s
            .instances
            .iter()
            .filter(|i| i.declares_categories && i.categories.is_empty())
            .count() as f64;
        assert!((generic / declared - 0.517).abs() < 0.1);
    }

    #[test]
    fn tech_most_common_category() {
        let s = stage(3000, 5);
        let count = |c: Category| {
            s.instances
                .iter()
                .filter(|i| i.categories.contains(c))
                .count()
        };
        assert!(count(Category::Tech) > count(Category::Games));
        assert!(count(Category::Games) > count(Category::Sports));
    }

    #[test]
    fn spam_is_most_prohibited() {
        let s = stage(3000, 5);
        let prohibit_count = |a: Activity| {
            s.instances
                .iter()
                .filter(|i| i.declares_categories && i.policies.prohibits(a))
                .count()
        };
        assert!(prohibit_count(Activity::Spam) >= prohibit_count(Activity::PornWithoutNsfw));
        assert!(
            prohibit_count(Activity::PornWithoutNsfw)
                >= prohibit_count(Activity::NudityWithNsfw)
        );
    }

    #[test]
    fn ips_unique() {
        let s = stage(1000, 11);
        let mut ips: Vec<u32> = s.instances.iter().map(|i| i.ip).collect();
        ips.sort_unstable();
        let before = ips.len();
        ips.dedup();
        assert_eq!(ips.len(), before, "duplicate IPs allocated");
    }

    #[test]
    fn country_shares_roughly_match() {
        let s = stage(4000, 13);
        let jp = s
            .instances
            .iter()
            .filter(|i| i.country == Country::Japan)
            .count() as f64
            / 4000.0;
        let us = s
            .instances
            .iter()
            .filter(|i| i.country == Country::UnitedStates)
            .count() as f64
            / 4000.0;
        assert!(jp > 0.15 && jp < 0.40, "JP share {jp}");
        assert!(us > 0.12 && us < 0.35, "US share {us}");
        assert!(jp > us * 0.8, "JP should lead or tie US");
    }

    #[test]
    fn lets_encrypt_dominates() {
        let s = stage(2000, 17);
        let le = s
            .instances
            .iter()
            .filter(|i| i.certificate.ca == CertificateAuthority::LetsEncrypt)
            .count() as f64
            / 2000.0;
        assert!(le > 0.8, "Let's Encrypt share {le}");
    }

    #[test]
    fn top10_carry_paper_domains() {
        let s = stage(500, 19);
        let domains: Vec<&str> = s.instances.iter().map(|i| i.domain.as_str()).collect();
        for (d, _) in TOP_DOMAINS {
            assert!(domains.contains(&d), "missing {d}");
        }
    }

    #[test]
    fn creation_cdf_has_plateau() {
        let s = stage(5000, 23);
        let count_in = |lo: u32, hi: u32| {
            s.instances
                .iter()
                .filter(|i| i.created.0 > lo && i.created.0 <= hi)
                .count() as f64
        };
        // Jul–Dec 2017 (days 81..264) should see far fewer creations per day
        // than H1 2018 (days 264..471).
        let plateau_rate = count_in(81, 264) / (264 - 81) as f64;
        let growth_rate = count_in(264, 471) / (471 - 264) as f64;
        assert!(
            growth_rate > 3.0 * plateau_rate,
            "plateau {plateau_rate} vs growth {growth_rate}"
        );
    }

    #[test]
    fn popularity_positive_and_skewed() {
        let s = stage(1000, 29);
        assert!(s.popularity.iter().all(|&w| w > 0.0));
        let mut sorted = s.popularity.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let total: f64 = sorted.iter().sum();
        let top5: f64 = sorted[..50].iter().sum();
        assert!(top5 / total > 0.5, "top-5% weight share {}", top5 / total);
    }
}
