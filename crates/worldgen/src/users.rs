//! User population generation: placement, toot counts, activity levels.
//!
//! Sharded (PR 10): every user draws from its own counter-derived RNG
//! stream ([`crate::shard::unit_rng`]), so the population can be built
//! in independent per-block segments and concatenated — bit-identical
//! to the serial walk at any block size. Instance placement samples a
//! frozen Walker alias table over the popularity law instead of a
//! cumulative binary search. The per-instance aggregate back-fill is a
//! serial pass over the concatenated population (f64 sums are
//! order-sensitive, so they must never happen inside a shard).

use crate::config::{sub_seed, WorldConfig};
use crate::pools::AliasSampler;
use crate::shard::{blocks, unit_rng, DEFAULT_BLOCK};
use fediscope_graph::par;
use fediscope_model::ids::{InstanceId, UserId};
use fediscope_model::instance::Instance;
use fediscope_model::taxonomy::{Activity, Category};
use fediscope_model::user::UserProfile;
use rand::prelude::*;
use rand_distr::{Beta, Distribution, LogNormal};

/// RNG stream tag for the per-instance aggregate back-fill draws.
const AGG_TAG: u64 = 0x5553_4552_4147_4700; // "USERAGG"

/// Toot-production multiplier for an instance, from its categories and
/// policies. Calibrated to Fig. 3's instance-vs-toot contrasts: games
/// (37.3% of instances, 43.4% of toots) and anime (24.6% → 37.2%) over-toot;
/// tech (55.2% → 24.5%) and journalism under-toot; adult instances have many
/// users but comparatively few toots per user. Advertising-friendly
/// instances over-toot (47% of instances but 75% of toots).
pub fn toot_multiplier(inst: &Instance) -> f64 {
    let mut m = 1.0;
    if inst.categories.contains(Category::Games) {
        m *= 1.7;
    }
    if inst.categories.contains(Category::Anime) {
        m *= 1.8;
    }
    if inst.categories.contains(Category::Tech) {
        m *= 0.35;
    }
    if inst.categories.contains(Category::Journalism) {
        m *= 0.4;
    }
    if inst.categories.contains(Category::Adult) {
        m *= 0.25;
    }
    if inst.policies.allows(Activity::Advertising) {
        m *= 1.5;
    }
    m
}

/// The frozen per-user draw context shared by every shard.
struct UserDraws {
    stage_seed: u64,
    n_instances: usize,
    placement: AliasSampler,
    tooting_frac: f64,
    ln_open: LogNormal,
    ln_closed: LogNormal,
    beta_open: Beta,
    beta_closed: Beta,
    open: Vec<bool>,
    multiplier: Vec<f64>,
}

impl UserDraws {
    fn new(cfg: &WorldConfig, instances: &[Instance], popularity: &[f64]) -> Self {
        // Toot-count distribution: log-normal tail over *tooting* users,
        // with a per-instance-type mean. sigma 1.6 keeps Fig. 2(a)'s heavy
        // tail (top users reach ~10^6 toots at full scale once the
        // category multipliers stack) while keeping the open-vs-closed
        // per-capita contrast resolvable in small worlds — at sigma 2 the
        // group means are dominated by single draws and the Fig. 2
        // orderings become seed lotteries.
        let sigma = 1.6f64;
        let mean_factor = (sigma * sigma / 2.0).exp();
        let mk_lognormal = |mean_target: f64| {
            let mu = (mean_target / mean_factor).ln();
            LogNormal::new(mu, sigma).expect("valid lognormal")
        };
        // mean toots per *user*; tooting users carry the whole mass.
        let open_mean_tooting = cfg.toots_per_user_open / cfg.tooting_frac;
        let closed_mean_tooting = cfg.toots_per_user_closed / cfg.tooting_frac;
        let ids: Vec<u32> = (0..instances.len() as u32).collect();
        Self {
            stage_seed: sub_seed(cfg.seed, 2),
            n_instances: instances.len(),
            placement: AliasSampler::from_weighted_ids(&ids, popularity),
            tooting_frac: cfg.tooting_frac,
            ln_open: mk_lognormal(open_mean_tooting),
            ln_closed: mk_lognormal(closed_mean_tooting),
            // Weekly-login propensity: closed instances have the more
            // engaged population (median activity 75% vs 50%, Fig. 2c).
            beta_open: Beta::new(2.2, 2.2).unwrap(),
            beta_closed: Beta::new(5.0, 1.8).unwrap(),
            open: instances.iter().map(|i| i.is_open()).collect(),
            multiplier: instances.iter().map(toot_multiplier).collect(),
        }
    }

    fn draw(&self, uid: usize) -> UserProfile {
        let mut rng = unit_rng(self.stage_seed, uid as u64);
        // Every instance starts with its administrator's account (user ids
        // 0..n_instances are the admins); the rest follow the popularity
        // law. This guarantees no instance is a zero-user ghost, matching
        // the federation graph's 92%-of-instances LCC (Fig. 13).
        let ii = if uid < self.n_instances {
            uid
        } else {
            self.placement.sample_u64(rng.r#gen()) as usize
        };
        let open = self.open[ii];
        let toots = if rng.gen_bool(self.tooting_frac) {
            let base = if open {
                self.ln_open.sample(&mut rng)
            } else {
                self.ln_closed.sample(&mut rng)
            };
            let boosted = base * self.multiplier[ii];
            boosted.round().clamp(1.0, 20_000_000.0) as u32
        } else {
            0
        };
        let login: f64 = if open {
            self.beta_open.sample(&mut rng)
        } else {
            self.beta_closed.sample(&mut rng)
        };
        UserProfile {
            id: UserId(uid as u32),
            instance: InstanceId(ii as u32),
            toot_count: toots,
            weekly_login_prob: login as f32,
        }
    }
}

/// Generate users, assign them to instances, and back-fill the per-instance
/// aggregates (`user_count`, `toot_count`, `boosted_toots`,
/// `active_user_pct`). Fans out over [`par::parallel_map`] in
/// [`DEFAULT_BLOCK`]-user segments.
pub fn generate(
    cfg: &WorldConfig,
    instances: &mut [Instance],
    popularity: &[f64],
) -> Vec<UserProfile> {
    generate_with_block(cfg, instances, popularity, DEFAULT_BLOCK)
}

/// [`generate`] with an explicit block size — output is bit-identical
/// for every block size (the sharding proptests pin this).
pub fn generate_with_block(
    cfg: &WorldConfig,
    instances: &mut [Instance],
    popularity: &[f64],
    block: usize,
) -> Vec<UserProfile> {
    assert_eq!(instances.len(), popularity.len());
    let draws = UserDraws::new(cfg, instances, popularity);
    let segments = par::parallel_map(&blocks(cfg.n_users, block), |&(lo, hi)| {
        (lo..hi).map(|uid| draws.draw(uid)).collect::<Vec<_>>()
    });
    let mut users = Vec::with_capacity(cfg.n_users);
    for seg in segments {
        users.extend(seg);
    }

    // Back-fill instance aggregates: a serial pass over the concatenated
    // population, so the f64 sums see one fixed order.
    let mut user_count = vec![0u32; instances.len()];
    let mut toot_count = vec![0u64; instances.len()];
    let mut login_sum = vec![0.0f64; instances.len()];
    for u in &users {
        let i = u.instance.index();
        user_count[i] += 1;
        toot_count[i] += u.toot_count as u64;
        login_sum[i] += u.weekly_login_prob as f64;
    }
    let agg_seed = sub_seed(cfg.seed, 2) ^ AGG_TAG;
    for (i, inst) in instances.iter_mut().enumerate() {
        let mut rng = unit_rng(agg_seed, i as u64);
        inst.user_count = user_count[i];
        inst.toot_count = toot_count[i];
        inst.boosted_toots =
            (toot_count[i] as f64 * rng.gen_range(0.05..0.25)).round() as u64;
        // The instance's peak weekly activity: mean member propensity plus a
        // small burst factor, capped at 100%.
        inst.active_user_pct = if user_count[i] == 0 {
            0.0
        } else {
            let mean_login = login_sum[i] / user_count[i] as f64;
            (mean_login * 100.0 * rng.gen_range(1.0..1.15)).min(100.0)
        };
    }
    users
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::sub_seed;
    use fediscope_model::geo::ProviderCatalog;
    use rand::rngs::StdRng;

    fn world_pieces(seed: u64, n_inst: usize, n_users: usize) -> (Vec<Instance>, Vec<UserProfile>) {
        let mut cfg = WorldConfig::tiny(seed);
        cfg.n_instances = n_inst;
        cfg.n_users = n_users;
        let providers = ProviderCatalog::with_tail(cfg.n_providers);
        let mut rng1 = StdRng::seed_from_u64(sub_seed(seed, 1));
        let stage = crate::instances::generate(&cfg, &providers, &mut rng1);
        let mut instances = stage.instances;
        let users = generate(&cfg, &mut instances, &stage.popularity);
        (instances, users)
    }

    #[test]
    fn aggregates_consistent() {
        let (instances, users) = world_pieces(5, 50, 3000);
        let mut uc = [0u32; 50];
        let mut tc = vec![0u64; 50];
        for u in &users {
            uc[u.instance.index()] += 1;
            tc[u.instance.index()] += u.toot_count as u64;
        }
        for (i, inst) in instances.iter().enumerate() {
            assert_eq!(inst.user_count, uc[i]);
            assert_eq!(inst.toot_count, tc[i]);
            assert!(inst.boosted_toots <= inst.toot_count.max(1) / 2 + inst.toot_count / 3 + 1);
        }
    }

    #[test]
    fn block_size_does_not_change_population() {
        let mut cfg = WorldConfig::tiny(23);
        cfg.n_users = 2_500;
        let providers = ProviderCatalog::with_tail(cfg.n_providers);
        let mut rng1 = StdRng::seed_from_u64(sub_seed(23, 1));
        let stage = crate::instances::generate(&cfg, &providers, &mut rng1);
        let mut inst_a = stage.instances.clone();
        let mut inst_b = stage.instances.clone();
        let a = generate_with_block(&cfg, &mut inst_a, &stage.popularity, 1);
        let b = generate_with_block(&cfg, &mut inst_b, &stage.popularity, 997);
        assert_eq!(a, b);
        assert_eq!(inst_a, inst_b);
    }

    #[test]
    fn population_skewed_toward_top_instances() {
        let (instances, users) = world_pieces(7, 200, 20_000);
        let mut counts: Vec<u32> = instances.iter().map(|i| i.user_count).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        assert_eq!(total, users.len() as u64);
        let top5pct: u64 = counts[..10].iter().map(|&c| c as u64).sum();
        let share = top5pct as f64 / total as f64;
        // Paper: 90.6%. Loose band for a small world.
        assert!(share > 0.6, "top-5% user share only {share}");
    }

    #[test]
    fn open_instances_attract_more_users() {
        let (instances, _) = world_pieces(11, 400, 40_000);
        let mean = |open: bool| {
            let v: Vec<f64> = instances
                .iter()
                .filter(|i| i.is_open() == open)
                .map(|i| i.user_count as f64)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let (mo, mc) = (mean(true), mean(false));
        assert!(
            mo > 2.0 * mc,
            "open mean {mo} should dwarf closed mean {mc}"
        );
    }

    #[test]
    fn closed_instances_toot_more_per_capita() {
        let (instances, _) = world_pieces(13, 400, 40_000);
        let per_capita = |open: bool| {
            let (t, u): (u64, u64) = instances
                .iter()
                .filter(|i| i.is_open() == open && i.user_count > 0)
                .fold((0, 0), |(t, u), i| (t + i.toot_count, u + i.user_count as u64));
            t as f64 / u.max(1) as f64
        };
        assert!(
            per_capita(false) > per_capita(true),
            "closed {} open {}",
            per_capita(false),
            per_capita(true)
        );
    }

    #[test]
    fn closed_instances_more_active() {
        let (instances, _) = world_pieces(17, 400, 40_000);
        let median_activity = |open: bool| {
            let mut v: Vec<f64> = instances
                .iter()
                .filter(|i| i.is_open() == open && i.user_count > 0)
                .map(|i| i.active_user_pct)
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let (mo, mc) = (median_activity(true), median_activity(false));
        assert!(mc > mo, "closed median {mc} should exceed open median {mo}");
        assert!(mc > 55.0 && mc <= 100.0);
        assert!(mo > 30.0 && mo < 75.0);
    }

    #[test]
    fn tooting_fraction_near_config() {
        let (_, users) = world_pieces(19, 100, 20_000);
        let tooting = users.iter().filter(|u| u.has_tooted()).count() as f64 / 20_000.0;
        assert!((tooting - 239.0 / 853.0).abs() < 0.03, "tooting frac {tooting}");
    }

    #[test]
    fn toot_multiplier_orderings() {
        use fediscope_model::certs::{Certificate, CertificateAuthority};
        use fediscope_model::geo::Country;
        use fediscope_model::ids::AsId;
        use fediscope_model::instance::{OperatorKind, Registration, Software};
        use fediscope_model::taxonomy::{CategorySet, PolicySet};
        use fediscope_model::time::Day;
        let base = Instance {
            id: InstanceId(0),
            domain: "x".into(),
            software: Software::Mastodon,
            registration: Registration::Open,
            declares_categories: true,
            categories: CategorySet::empty(),
            policies: PolicySet::unstated(),
            country: Country::Japan,
            asn: AsId(1),
            provider_index: 0,
            ip: 0,
            certificate: Certificate {
                ca: CertificateAuthority::LetsEncrypt,
                issued: Day(0),
                auto_renew: true,
            },
            created: Day(0),
            operator: OperatorKind::Individual,
            user_count: 0,
            toot_count: 0,
            boosted_toots: 0,
            active_user_pct: 0.0,
            crawl_allowed: true,
            private_toot_frac: 0.0,
        };
        let mut anime = base.clone();
        anime.categories.insert(Category::Anime);
        let mut adult = base.clone();
        adult.categories.insert(Category::Adult);
        assert!(toot_multiplier(&anime) > toot_multiplier(&base));
        assert!(toot_multiplier(&adult) < toot_multiplier(&base));
    }
}
