//! User population generation: placement, toot counts, activity levels.

use crate::config::WorldConfig;
use fediscope_model::ids::{InstanceId, UserId};
use fediscope_model::instance::Instance;
use fediscope_model::taxonomy::{Activity, Category};
use fediscope_model::user::UserProfile;
use rand::prelude::*;
use rand_distr::{Beta, Distribution, LogNormal};

/// Toot-production multiplier for an instance, from its categories and
/// policies. Calibrated to Fig. 3's instance-vs-toot contrasts: games
/// (37.3% of instances, 43.4% of toots) and anime (24.6% → 37.2%) over-toot;
/// tech (55.2% → 24.5%) and journalism under-toot; adult instances have many
/// users but comparatively few toots per user. Advertising-friendly
/// instances over-toot (47% of instances but 75% of toots).
pub fn toot_multiplier(inst: &Instance) -> f64 {
    let mut m = 1.0;
    if inst.categories.contains(Category::Games) {
        m *= 1.7;
    }
    if inst.categories.contains(Category::Anime) {
        m *= 1.8;
    }
    if inst.categories.contains(Category::Tech) {
        m *= 0.35;
    }
    if inst.categories.contains(Category::Journalism) {
        m *= 0.4;
    }
    if inst.categories.contains(Category::Adult) {
        m *= 0.25;
    }
    if inst.policies.allows(Activity::Advertising) {
        m *= 1.5;
    }
    m
}

/// Cumulative-weight sampler over instances.
struct CumSampler {
    cum: Vec<f64>,
}

impl CumSampler {
    fn new(weights: &[f64]) -> Self {
        let mut cum = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w.max(0.0);
            cum.push(acc);
        }
        assert!(acc > 0.0, "all-zero weights");
        Self { cum }
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cum.last().unwrap();
        let x = rng.gen::<f64>() * total;
        self.cum.partition_point(|&c| c < x).min(self.cum.len() - 1)
    }
}

/// Generate users, assign them to instances, and back-fill the per-instance
/// aggregates (`user_count`, `toot_count`, `boosted_toots`,
/// `active_user_pct`).
pub fn generate<R: Rng>(
    cfg: &WorldConfig,
    instances: &mut [Instance],
    popularity: &[f64],
    rng: &mut R,
) -> Vec<UserProfile> {
    assert_eq!(instances.len(), popularity.len());
    let sampler = CumSampler::new(popularity);

    // Toot-count distribution: log-normal tail over *tooting* users, with a
    // per-instance-type mean. sigma 2.0 gives the heavy tail Fig. 2(a) shows.
    let sigma = 2.0f64;
    let mean_factor = (sigma * sigma / 2.0).exp();
    let mk_lognormal = |mean_target: f64| {
        let mu = (mean_target / mean_factor).ln();
        LogNormal::new(mu, sigma).expect("valid lognormal")
    };
    // mean toots per *user*; tooting users carry the whole mass.
    let open_mean_tooting = cfg.toots_per_user_open / cfg.tooting_frac;
    let closed_mean_tooting = cfg.toots_per_user_closed / cfg.tooting_frac;
    let ln_open = mk_lognormal(open_mean_tooting);
    let ln_closed = mk_lognormal(closed_mean_tooting);

    // Weekly-login propensity: closed instances have the more engaged
    // population (median activity 75% vs 50%, Fig. 2c).
    let beta_open = Beta::new(2.2, 2.2).unwrap();
    let beta_closed = Beta::new(5.0, 1.8).unwrap();

    let mut users = Vec::with_capacity(cfg.n_users);
    for uid in 0..cfg.n_users {
        // Every instance starts with its administrator's account (user ids
        // 0..n_instances are the admins); the rest follow the popularity
        // law. This guarantees no instance is a zero-user ghost, matching
        // the federation graph's 92%-of-instances LCC (Fig. 13).
        let ii = if uid < instances.len() {
            uid
        } else {
            sampler.sample(rng)
        };
        let inst = &instances[ii];
        let toots = if rng.gen_bool(cfg.tooting_frac) {
            let base = if inst.is_open() {
                ln_open.sample(rng)
            } else {
                ln_closed.sample(rng)
            };
            let boosted = base * toot_multiplier(inst);
            boosted.round().clamp(1.0, 20_000_000.0) as u32
        } else {
            0
        };
        let login: f64 = if inst.is_open() {
            beta_open.sample(rng)
        } else {
            beta_closed.sample(rng)
        };
        users.push(UserProfile {
            id: UserId(uid as u32),
            instance: InstanceId(ii as u32),
            toot_count: toots,
            weekly_login_prob: login as f32,
        });
    }

    // Back-fill instance aggregates.
    let mut user_count = vec![0u32; instances.len()];
    let mut toot_count = vec![0u64; instances.len()];
    let mut login_sum = vec![0.0f64; instances.len()];
    for u in &users {
        let i = u.instance.index();
        user_count[i] += 1;
        toot_count[i] += u.toot_count as u64;
        login_sum[i] += u.weekly_login_prob as f64;
    }
    for (i, inst) in instances.iter_mut().enumerate() {
        inst.user_count = user_count[i];
        inst.toot_count = toot_count[i];
        inst.boosted_toots =
            (toot_count[i] as f64 * rng.gen_range(0.05..0.25)).round() as u64;
        // The instance's peak weekly activity: mean member propensity plus a
        // small burst factor, capped at 100%.
        inst.active_user_pct = if user_count[i] == 0 {
            0.0
        } else {
            let mean_login = login_sum[i] / user_count[i] as f64;
            (mean_login * 100.0 * rng.gen_range(1.0..1.15)).min(100.0)
        };
    }
    users
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::sub_seed;
    use fediscope_model::geo::ProviderCatalog;
    use rand::rngs::StdRng;

    fn world_pieces(seed: u64, n_inst: usize, n_users: usize) -> (Vec<Instance>, Vec<UserProfile>) {
        let mut cfg = WorldConfig::tiny(seed);
        cfg.n_instances = n_inst;
        cfg.n_users = n_users;
        let providers = ProviderCatalog::with_tail(cfg.n_providers);
        let mut rng1 = StdRng::seed_from_u64(sub_seed(seed, 1));
        let stage = crate::instances::generate(&cfg, &providers, &mut rng1);
        let mut instances = stage.instances;
        let mut rng2 = StdRng::seed_from_u64(sub_seed(seed, 2));
        let users = generate(&cfg, &mut instances, &stage.popularity, &mut rng2);
        (instances, users)
    }

    #[test]
    fn aggregates_consistent() {
        let (instances, users) = world_pieces(5, 50, 3000);
        let mut uc = [0u32; 50];
        let mut tc = vec![0u64; 50];
        for u in &users {
            uc[u.instance.index()] += 1;
            tc[u.instance.index()] += u.toot_count as u64;
        }
        for (i, inst) in instances.iter().enumerate() {
            assert_eq!(inst.user_count, uc[i]);
            assert_eq!(inst.toot_count, tc[i]);
            assert!(inst.boosted_toots <= inst.toot_count.max(1) / 2 + inst.toot_count / 3 + 1);
        }
    }

    #[test]
    fn population_skewed_toward_top_instances() {
        let (instances, users) = world_pieces(7, 200, 20_000);
        let mut counts: Vec<u32> = instances.iter().map(|i| i.user_count).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().map(|&c| c as u64).sum();
        assert_eq!(total, users.len() as u64);
        let top5pct: u64 = counts[..10].iter().map(|&c| c as u64).sum();
        let share = top5pct as f64 / total as f64;
        // Paper: 90.6%. Loose band for a small world.
        assert!(share > 0.6, "top-5% user share only {share}");
    }

    #[test]
    fn open_instances_attract_more_users() {
        let (instances, _) = world_pieces(11, 400, 40_000);
        let mean = |open: bool| {
            let v: Vec<f64> = instances
                .iter()
                .filter(|i| i.is_open() == open)
                .map(|i| i.user_count as f64)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let (mo, mc) = (mean(true), mean(false));
        assert!(
            mo > 2.0 * mc,
            "open mean {mo} should dwarf closed mean {mc}"
        );
    }

    #[test]
    fn closed_instances_toot_more_per_capita() {
        let (instances, _) = world_pieces(13, 400, 40_000);
        let per_capita = |open: bool| {
            let (t, u): (u64, u64) = instances
                .iter()
                .filter(|i| i.is_open() == open && i.user_count > 0)
                .fold((0, 0), |(t, u), i| (t + i.toot_count, u + i.user_count as u64));
            t as f64 / u.max(1) as f64
        };
        assert!(
            per_capita(false) > per_capita(true),
            "closed {} open {}",
            per_capita(false),
            per_capita(true)
        );
    }

    #[test]
    fn closed_instances_more_active() {
        let (instances, _) = world_pieces(17, 400, 40_000);
        let median_activity = |open: bool| {
            let mut v: Vec<f64> = instances
                .iter()
                .filter(|i| i.is_open() == open && i.user_count > 0)
                .map(|i| i.active_user_pct)
                .collect();
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let (mo, mc) = (median_activity(true), median_activity(false));
        assert!(mc > mo, "closed median {mc} should exceed open median {mo}");
        assert!(mc > 55.0 && mc <= 100.0);
        assert!(mo > 30.0 && mo < 75.0);
    }

    #[test]
    fn tooting_fraction_near_config() {
        let (_, users) = world_pieces(19, 100, 20_000);
        let tooting = users.iter().filter(|u| u.has_tooted()).count() as f64 / 20_000.0;
        assert!((tooting - 239.0 / 853.0).abs() < 0.03, "tooting frac {tooting}");
    }

    #[test]
    fn cum_sampler_respects_weights() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = CumSampler::new(&[1.0, 0.0, 9.0]);
        let mut counts = [0u32; 3];
        for _ in 0..10_000 {
            counts[s.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > 8_000);
    }

    #[test]
    #[should_panic(expected = "all-zero")]
    fn cum_sampler_rejects_zero_weights() {
        let _ = CumSampler::new(&[0.0, 0.0]);
    }

    #[test]
    fn toot_multiplier_orderings() {
        use fediscope_model::certs::{Certificate, CertificateAuthority};
        use fediscope_model::geo::Country;
        use fediscope_model::ids::AsId;
        use fediscope_model::instance::{OperatorKind, Registration, Software};
        use fediscope_model::taxonomy::{CategorySet, PolicySet};
        use fediscope_model::time::Day;
        let base = Instance {
            id: InstanceId(0),
            domain: "x".into(),
            software: Software::Mastodon,
            registration: Registration::Open,
            declares_categories: true,
            categories: CategorySet::empty(),
            policies: PolicySet::unstated(),
            country: Country::Japan,
            asn: AsId(1),
            provider_index: 0,
            ip: 0,
            certificate: Certificate {
                ca: CertificateAuthority::LetsEncrypt,
                issued: Day(0),
                auto_renew: true,
            },
            created: Day(0),
            operator: OperatorKind::Individual,
            user_count: 0,
            toot_count: 0,
            boosted_toots: 0,
            active_user_pct: 0.0,
            crawl_allowed: true,
            private_toot_frac: 0.0,
        };
        let mut anime = base.clone();
        anime.categories.insert(Category::Anime);
        let mut adult = base.clone();
        adult.categories.insert(Category::Adult);
        assert!(toot_multiplier(&anime) > toot_multiplier(&base));
        assert!(toot_multiplier(&adult) < toot_multiplier(&base));
    }
}
