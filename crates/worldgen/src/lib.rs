//! # fediscope-worldgen
//!
//! Calibrated synthetic-fediverse generator — the substitute for the IMC'19
//! paper's proprietary datasets (mnm.social's 15-month monitoring feed, the
//! May-2018 toot crawl, the July-2018 follower scrape, Maxmind geo data,
//! crt.sh certificate logs, and the pingdom/2011 Twitter baselines).
//!
//! The generator is a pipeline of seeded stages, each with its own derived
//! RNG stream (adding a stage never perturbs the others):
//!
//! 1. [`instances`]: the instance population (registration policy,
//!    categories, activity policies, hosting provider/country/IP,
//!    certificates, creation dates),
//! 2. [`users`]: user placement (Zipf popularity with open/adult boosts),
//!    toot counts, activity levels,
//! 3. [`social`]: the follower graph (preferential attachment with instance
//!    and country homophily),
//! 4. [`availability`]: outage schedules (organic + certificate expiry +
//!    AS-wide failures) and churn,
//! 5. [`growth`]: the Fig.-1 daily series,
//! 6. [`twitter`]: the comparison baselines,
//! 7. [`toots`]: per-user toot-event streams over a simulation horizon
//!    (feeds `simnet::fedsim`).
//!
//! Every constant is calibrated against a number quoted in the paper; see
//! `DESIGN.md` §4 for the target list and the per-module doc comments for
//! the specific citations.
//!
//! Beyond the pipeline, [`observatory`] replays a generated world's
//! schedules as a mnm.social-style 5-minute poll feed (streaming, so even
//! the 30k-instance modern tier's multi-billion-poll feed never
//! materialises), and [`availability::generate_arena`] drains the schedule
//! stream straight into a columnar `OutageArena` for the §4 telemetry
//! engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod availability;
pub mod config;
pub mod growth;
pub mod instances;
pub mod observatory;
pub mod pools;
pub mod shard;
pub mod social;
pub mod streams;
pub mod toots;
pub mod twitter;
pub mod users;

pub use config::{sub_seed, ScaleTier, WorldConfig};

use fediscope_model::geo::ProviderCatalog;
use fediscope_model::instance::Instance;
use fediscope_model::user::UserProfile;
use fediscope_model::world::World;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The world generator: configure once, generate deterministically.
pub struct Generator {
    cfg: WorldConfig,
}

impl Generator {
    /// New generator with the given configuration.
    pub fn new(cfg: WorldConfig) -> Self {
        Self { cfg }
    }

    /// Convenience: generate a world straight from a config.
    pub fn generate_world(cfg: WorldConfig) -> World {
        Self::new(cfg).generate()
    }

    /// Run the pipeline up to the user table (instances → users) — the
    /// prerequisite state for the social stage. Returns `(instances,
    /// users)` with per-instance aggregates already back-filled.
    pub fn user_stage(cfg: &WorldConfig) -> (Vec<Instance>, Vec<UserProfile>) {
        let providers = ProviderCatalog::with_tail(cfg.n_providers);
        let mut r_inst = StdRng::seed_from_u64(sub_seed(cfg.seed, 1));
        let stage = instances::generate(cfg, &providers, &mut r_inst);
        let mut instances = stage.instances;
        let users = users::generate(cfg, &mut instances, &stage.popularity);
        (instances, users)
    }

    /// Build a seekable social-edge cursor: instance and user stages run
    /// eagerly, then the returned [`social::SocialCursor`] can emit any
    /// user's adjacency block independently (`emit_user` / `segment`)
    /// without replaying the users before it — block `b` maps straight to
    /// its counter-derived RNG offset. This is the resume-identity path:
    /// a crash-recovered run re-emits exactly the blocks it needs.
    pub fn social_cursor(cfg: &WorldConfig) -> social::SocialCursor {
        let (instances, users) = Self::user_stage(cfg);
        social::SocialCursor::new(cfg, &instances, &users)
    }

    /// Run only the stages the follower graph needs (instances → users →
    /// social) and stream each follow edge into `sink` instead of
    /// materialising the edge list. Returns the number of user nodes.
    ///
    /// The sub-seeded RNG streams are the same ones [`Self::generate`]
    /// uses, so the edge stream is bit-identical to the `follows` of a
    /// full world from the same config — this is the path large-scale
    /// benchmarks use to pipe a million-user graph straight into a CSR
    /// builder without the ~100 MB intermediate `Vec`. Callers that want
    /// seekable access instead of a full replay should use
    /// [`Self::social_cursor`].
    pub fn stream_social_edges(cfg: &WorldConfig, sink: &mut dyn FnMut(u32, u32)) -> usize {
        let cursor = Self::social_cursor(cfg);
        let n = cursor.n_users();
        cursor.stream(shard::DEFAULT_BLOCK, sink);
        n
    }

    /// Run the full pipeline and validate the result.
    pub fn generate(&self) -> World {
        let cfg = &self.cfg;
        let providers = ProviderCatalog::with_tail(cfg.n_providers);

        let mut r_inst = StdRng::seed_from_u64(sub_seed(cfg.seed, 1));
        let stage = instances::generate(cfg, &providers, &mut r_inst);
        let mut instances = stage.instances;

        let users = users::generate(cfg, &mut instances, &stage.popularity);

        let follows = social::generate(cfg, &instances, &users);

        let schedules = availability::generate(cfg, &mut instances);

        let total_toots: u64 = users.iter().map(|u| u.toot_count as u64).sum();
        let growth = growth::series(&schedules, users.len() as u64, total_toots);

        let mut r_twitter = StdRng::seed_from_u64(sub_seed(cfg.seed, 5));
        let twitter = twitter::generate(cfg, &mut r_twitter);

        let world = World {
            seed: cfg.seed,
            instances,
            users,
            follows,
            schedules,
            providers,
            growth,
            twitter,
        };
        world.validate();
        world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_world_generates_and_validates() {
        let w = Generator::generate_world(WorldConfig::tiny(1));
        assert_eq!(w.instances.len(), 60);
        assert_eq!(w.users.len(), 1_500);
        assert!(!w.follows.is_empty());
        assert_eq!(w.growth.len(), 472);
        assert_eq!(w.seed, 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Generator::generate_world(WorldConfig::tiny(99));
        let b = Generator::generate_world(WorldConfig::tiny(99));
        assert_eq!(a.instances, b.instances);
        assert_eq!(a.users, b.users);
        assert_eq!(a.follows, b.follows);
        assert_eq!(a.schedules, b.schedules);
        assert_eq!(a.growth, b.growth);
        assert_eq!(a.twitter, b.twitter);
    }

    #[test]
    fn streamed_social_edges_match_world_follows() {
        use fediscope_model::ids::UserId;
        let cfg = WorldConfig::tiny(3);
        let w = Generator::generate_world(cfg.clone());
        let mut edges: Vec<(UserId, UserId)> = Vec::new();
        let n = Generator::stream_social_edges(&cfg, &mut |a, b| {
            edges.push((UserId(a), UserId(b)))
        });
        assert_eq!(n, w.users.len());
        assert_eq!(edges, w.follows);
    }

    #[test]
    fn seeds_produce_different_worlds() {
        let a = Generator::generate_world(WorldConfig::tiny(1));
        let b = Generator::generate_world(WorldConfig::tiny(2));
        assert_ne!(a.follows, b.follows);
    }

    #[test]
    fn instance_aggregates_match_user_table() {
        let w = Generator::generate_world(WorldConfig::tiny(5));
        let uc = w.user_counts();
        let tc = w.toot_counts();
        for (i, inst) in w.instances.iter().enumerate() {
            assert_eq!(inst.user_count, uc[i], "user_count at {i}");
            assert_eq!(inst.toot_count, tc[i], "toot_count at {i}");
        }
    }

    #[test]
    fn growth_final_day_matches_population() {
        let w = Generator::generate_world(WorldConfig::tiny(7));
        let last = w.growth.last().unwrap();
        assert_eq!(last.users as usize, w.users.len());
        assert_eq!(last.toots, w.total_toots());
    }
}
