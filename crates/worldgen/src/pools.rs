//! Flat attachment-pool storage for the preferential-attachment generator.
//!
//! At modern-Fediverse scale (30K instances, 1M+ accounts, ~10M follow
//! edges) the social generator's per-instance and per-country attachment
//! pools dominate memory traffic. `Vec<Vec<u32>>` puts every domain's pool
//! in its own allocation (tens of thousands of independently growing
//! vectors); the structures here keep everything in a handful of flat
//! arrays:
//!
//! - [`Membership`]: CSR-style *static* member lists (offsets + one flat
//!   member array), built once from counting passes.
//! - [`SegmentedPools`]: *growing* per-domain pools stored in one shared
//!   arena. Each domain owns a geometric series of segments (8, 16, 32, …
//!   slots) whose arena offsets live in one flat directory, so `push` and
//!   uniform random `get` are O(1) with two array reads and growth never
//!   moves existing elements.
//!
//! Both preserve pool contents and ordering exactly, so swapping them in
//! for `Vec<Vec<u32>>` leaves the generator's RNG-driven output
//! bit-identical.

/// CSR-style static membership lists: `domain -> &[u32]` built once.
#[derive(Debug, Clone)]
pub struct Membership {
    offsets: Vec<u32>,
    members: Vec<u32>,
}

impl Membership {
    /// Build from `(domain, member)` pairs; members appear in each domain's
    /// slice in the order the iterator yields them. The iterator is
    /// consumed twice (counting pass + fill pass), hence `Clone`.
    pub fn new(n_domains: usize, pairs: impl Iterator<Item = (u32, u32)> + Clone) -> Self {
        let mut offsets = vec![0u32; n_domains + 1];
        for (d, _) in pairs.clone() {
            offsets[d as usize + 1] += 1;
        }
        for i in 0..n_domains {
            offsets[i + 1] += offsets[i];
        }
        let mut members = vec![0u32; offsets[n_domains] as usize];
        let mut cursor: Vec<u32> = offsets[..n_domains].to_vec();
        for (d, m) in pairs {
            members[cursor[d as usize] as usize] = m;
            cursor[d as usize] += 1;
        }
        Self { offsets, members }
    }

    /// Members of `domain`, in insertion order.
    pub fn domain(&self, domain: usize) -> &[u32] {
        let lo = self.offsets[domain] as usize;
        let hi = self.offsets[domain + 1] as usize;
        &self.members[lo..hi]
    }

    /// Total members across all domains.
    pub fn total(&self) -> usize {
        self.members.len()
    }
}

/// First-segment capacity (must be a power of two; segment `s` holds
/// `SEG0 << s` slots, so a domain's capacity doubles with each new
/// segment).
const SEG0: u32 = 8;
/// Segments per domain in the flat directory. Capacity with 28 segments is
/// `8·(2^28 − 1)` ≈ 2.1B elements per domain — beyond any u32-indexed
/// arena.
const SEGS: usize = 28;

/// Growing per-domain `u32` pools in one shared arena.
///
/// The directory row for a domain holds the arena offset of each of its
/// segments; index `i` lives in segment `⌊log2(i/SEG0 + 1)⌋` at offset
/// `i − (SEG0·2^seg − SEG0)`, both O(1) bit operations.
#[derive(Debug, Clone)]
pub struct SegmentedPools {
    arena: Vec<u32>,
    dir: Vec<u32>,
    len: Vec<u32>,
}

impl SegmentedPools {
    /// `n_domains` empty pools.
    pub fn new(n_domains: usize) -> Self {
        Self {
            arena: Vec::new(),
            dir: vec![0; n_domains * SEGS],
            len: vec![0; n_domains],
        }
    }

    /// Segment index and in-segment offset of logical index `i`.
    #[inline]
    fn locate(i: u32) -> (usize, u32) {
        let t = i / SEG0 + 1;
        let seg = (31 - t.leading_zeros()) as usize;
        let seg_start = (SEG0 << seg) - SEG0;
        (seg, i - seg_start)
    }

    /// Number of elements in `domain`'s pool.
    #[inline]
    pub fn len(&self, domain: usize) -> usize {
        self.len[domain] as usize
    }

    /// Whether `domain`'s pool is empty.
    #[inline]
    pub fn is_empty(&self, domain: usize) -> bool {
        self.len[domain] == 0
    }

    /// The `i`-th element ever pushed to `domain` (0-based).
    #[inline]
    pub fn get(&self, domain: usize, i: usize) -> u32 {
        debug_assert!(i < self.len(domain));
        let (seg, off) = Self::locate(i as u32);
        self.arena[(self.dir[domain * SEGS + seg] + off) as usize]
    }

    /// Append `value` to `domain`'s pool.
    #[inline]
    pub fn push(&mut self, domain: usize, value: u32) {
        let i = self.len[domain];
        let (seg, off) = Self::locate(i);
        if off == 0 {
            // First element of a fresh segment: claim it at the arena end.
            let base = self.arena.len() as u32;
            self.dir[domain * SEGS + seg] = base;
            self.arena.resize(self.arena.len() + (SEG0 << seg) as usize, 0);
        }
        self.arena[(self.dir[domain * SEGS + seg] + off) as usize] = value;
        self.len[domain] = i + 1;
    }

    /// Total elements across all domains (arena slack excluded).
    pub fn total(&self) -> usize {
        self.len.iter().map(|&l| l as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership_matches_vec_of_vecs() {
        let pairs = [(2u32, 10u32), (0, 11), (2, 12), (1, 13), (2, 14)];
        let m = Membership::new(4, pairs.iter().copied());
        assert_eq!(m.domain(0), &[11]);
        assert_eq!(m.domain(1), &[13]);
        assert_eq!(m.domain(2), &[10, 12, 14]);
        assert_eq!(m.domain(3), &[] as &[u32]);
        assert_eq!(m.total(), 5);
    }

    #[test]
    fn locate_segments_partition_indices() {
        // indices 0..8 -> seg 0, 8..24 -> seg 1, 24..56 -> seg 2, …
        assert_eq!(SegmentedPools::locate(0), (0, 0));
        assert_eq!(SegmentedPools::locate(7), (0, 7));
        assert_eq!(SegmentedPools::locate(8), (1, 0));
        assert_eq!(SegmentedPools::locate(23), (1, 15));
        assert_eq!(SegmentedPools::locate(24), (2, 0));
        assert_eq!(SegmentedPools::locate(55), (2, 31));
        assert_eq!(SegmentedPools::locate(56), (3, 0));
    }

    #[test]
    fn push_get_round_trip_single_domain() {
        let mut p = SegmentedPools::new(1);
        for v in 0..1000u32 {
            p.push(0, v * 7);
        }
        assert_eq!(p.len(0), 1000);
        for i in 0..1000usize {
            assert_eq!(p.get(0, i), i as u32 * 7);
        }
    }

    #[test]
    fn interleaved_domains_stay_separate() {
        let mut p = SegmentedPools::new(3);
        let mut model: Vec<Vec<u32>> = vec![Vec::new(); 3];
        // deterministic interleaving across domains
        let mut s = 0x9e3779b97f4a7c15u64;
        for step in 0..5000u32 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let d = (s >> 33) as usize % 3;
            p.push(d, step);
            model[d].push(step);
        }
        for (d, expected) in model.iter().enumerate() {
            assert_eq!(p.len(d), expected.len());
            for (i, &v) in expected.iter().enumerate() {
                assert_eq!(p.get(d, i), v, "domain {d} index {i}");
            }
        }
        assert_eq!(p.total(), 5000);
        assert!(p.is_empty(0) == model[0].is_empty());
    }

    #[test]
    fn empty_pools_report_empty() {
        let p = SegmentedPools::new(2);
        assert!(p.is_empty(0) && p.is_empty(1));
        assert_eq!(p.total(), 0);
    }
}
