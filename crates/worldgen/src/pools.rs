//! Flat membership lists and Walker alias tables for the static
//! fitness-attachment social generator.
//!
//! At modern-Fediverse scale (30K instances, 1M+ accounts, ~10M follow
//! edges) the social generator's per-domain candidate sets dominate
//! memory traffic, and its samplers dominate time. Everything here lives
//! in a handful of flat arrays:
//!
//! - [`Membership`]: CSR-style *static* member lists (offsets + one flat
//!   member array), built once from counting passes.
//! - [`AliasSampler`] / [`AliasFamily`]: Walker alias tables packed as
//!   12-byte entries, one per candidate, giving O(1) weighted sampling
//!   from a **single `u64` draw** — the bucket comes from the high 32
//!   bits (a Lemire reduction), acceptance from an integer compare of
//!   the low 32 bits against a fixed-point probability. No floats, no
//!   rejection loop, at most one cache line per sample.
//!
//! The tables are immutable after construction, which is what makes the
//! sharded generator possible: every shard samples from the same frozen
//! tables with its own counter-derived RNG stream, so output is
//! independent of the partition.

/// CSR-style static membership lists: `domain -> &[u32]` built once.
#[derive(Debug, Clone)]
pub struct Membership {
    offsets: Vec<u32>,
    members: Vec<u32>,
}

impl Membership {
    /// Build from `(domain, member)` pairs; members appear in each domain's
    /// slice in the order the iterator yields them. The iterator is
    /// consumed twice (counting pass + fill pass), hence `Clone`.
    pub fn new(n_domains: usize, pairs: impl Iterator<Item = (u32, u32)> + Clone) -> Self {
        let mut offsets = vec![0u32; n_domains + 1];
        for (d, _) in pairs.clone() {
            offsets[d as usize + 1] += 1;
        }
        for i in 0..n_domains {
            offsets[i + 1] += offsets[i];
        }
        let mut members = vec![0u32; offsets[n_domains] as usize];
        let mut cursor: Vec<u32> = offsets[..n_domains].to_vec();
        for (d, m) in pairs {
            members[cursor[d as usize] as usize] = m;
            cursor[d as usize] += 1;
        }
        Self { offsets, members }
    }

    /// Members of `domain`, in insertion order.
    pub fn domain(&self, domain: usize) -> &[u32] {
        let lo = self.offsets[domain] as usize;
        let hi = self.offsets[domain + 1] as usize;
        &self.members[lo..hi]
    }

    /// Total members across all domains.
    pub fn total(&self) -> usize {
        self.members.len()
    }
}

/// One packed alias slot: accept `accept` if the low 32 draw bits fall
/// under `prob` (fixed-point in [0, 1]), else `alias`. Opaque outside
/// this module — callers hold `&[AliasSlot]` slices (via
/// [`AliasSampler::slots`] / [`AliasFamily::domain_slots`]) and sample
/// them with [`sample_slice`], which lets a hot loop pick its table by
/// *index* instead of re-branching through a sampler enum per draw.
#[derive(Debug, Clone, Copy)]
pub struct AliasSlot {
    prob: u32,
    accept: u32,
    alias: u32,
}

/// Vose/Walker alias-table construction over `weights`, emitting one
/// slot per entry with `ids[i]` as the accepted value. Deterministic:
/// the small/large worklists are filled in index order and popped from
/// the back.
fn build_slots(ids: &[u32], weights: &[f64], out: &mut Vec<AliasSlot>) {
    let n = ids.len();
    debug_assert_eq!(n, weights.len());
    if n == 0 {
        return;
    }
    let total: f64 = weights.iter().sum();
    let base = out.len();
    out.reserve(n);
    // Degenerate mass: fall back to uniform.
    let scale = if total > 0.0 { n as f64 / total } else { 0.0 };
    let mut scaled: Vec<f64> = weights
        .iter()
        .map(|&w| if total > 0.0 { w * scale } else { 1.0 })
        .collect();
    let mut small: Vec<u32> = Vec::new();
    let mut large: Vec<u32> = Vec::new();
    for (i, &p) in scaled.iter().enumerate() {
        if p < 1.0 {
            small.push(i as u32);
        } else {
            large.push(i as u32);
        }
    }
    out.resize(
        base + n,
        AliasSlot {
            prob: u32::MAX,
            accept: 0,
            alias: 0,
        },
    );
    while let Some(&l) = large.last() {
        let Some(s) = small.pop() else { break };
        let p = scaled[s as usize];
        out[base + s as usize] = AliasSlot {
            prob: (p * 4_294_967_296.0) as u32,
            accept: ids[s as usize],
            alias: ids[l as usize],
        };
        let rem = scaled[l as usize] - (1.0 - p);
        scaled[l as usize] = rem;
        if rem < 1.0 {
            large.pop();
            small.push(l);
        }
    }
    // Leftovers (either list) saturate: always accept.
    for &i in small.iter().chain(large.iter()) {
        out[base + i as usize] = AliasSlot {
            prob: u32::MAX,
            accept: ids[i as usize],
            alias: ids[i as usize],
        };
    }
}

/// Touch the cache line holding the slot `r` selects. The bucket
/// arithmetic mirrors [`sample_slots`] exactly, so a caller that batches
/// draws can issue the table touches up front as *independent* loads —
/// the out-of-order core overlaps the L2/L3 misses instead of paying one
/// serialized miss per accept/reject resolution. `black_box` keeps the
/// otherwise-dead load; the crate forbids `unsafe`, so this is the
/// portable stand-in for a prefetch intrinsic.
#[inline]
fn prefetch_slot(slots: &[AliasSlot], r: u64) {
    let n = slots.len() as u64;
    let bucket = ((r >> 32) * n) >> 32;
    std::hint::black_box(slots[bucket as usize].prob);
}

#[inline]
fn sample_slots(slots: &[AliasSlot], r: u64) -> u32 {
    let n = slots.len() as u64;
    let bucket = ((r >> 32) * n) >> 32;
    let slot = slots[bucket as usize];
    if (r as u32) < slot.prob {
        slot.accept
    } else {
        slot.alias
    }
}

/// Sample a raw slot slice from one uniform `u64`. Panics on an empty
/// slice — callers that can see empty domains must check first.
#[inline]
pub fn sample_slice(slots: &[AliasSlot], r: u64) -> u32 {
    sample_slots(slots, r)
}

/// Touch the slot a later [`sample_slice`] with the same `(slots, r)`
/// will read; a no-op on an empty slice.
#[inline]
pub fn touch_slice(slots: &[AliasSlot], r: u64) {
    if !slots.is_empty() {
        prefetch_slot(slots, r);
    }
}

/// A single frozen weighted sampler over an id set.
#[derive(Debug, Clone)]
pub struct AliasSampler {
    slots: Vec<AliasSlot>,
}

impl AliasSampler {
    /// Weighted sampler returning `ids[i]` with probability proportional
    /// to `weights[i]`. Zero total weight degrades to uniform.
    pub fn from_weighted_ids(ids: &[u32], weights: &[f64]) -> Self {
        let mut slots = Vec::new();
        build_slots(ids, weights, &mut slots);
        Self { slots }
    }

    /// Number of candidates.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the candidate set is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Sample from one uniform `u64`. Panics (debug) on an empty table.
    #[inline]
    pub fn sample_u64(&self, r: u64) -> u32 {
        sample_slots(&self.slots, r)
    }

    /// The raw slot table, for callers that batch draws over a fixed
    /// table set via [`sample_slice`].
    #[inline]
    pub fn slots(&self) -> &[AliasSlot] {
        &self.slots
    }
}

/// A CSR family of alias tables: one frozen weighted sampler per domain
/// (instance, country), all slots in a single flat allocation.
#[derive(Debug, Clone)]
pub struct AliasFamily {
    offsets: Vec<u32>,
    slots: Vec<AliasSlot>,
}

impl AliasFamily {
    /// One alias table per [`Membership`] domain, weighting member `m`
    /// by `weight_of(m)`.
    pub fn build(members: &Membership, n_domains: usize, weight_of: impl Fn(u32) -> f64) -> Self {
        let mut offsets = Vec::with_capacity(n_domains + 1);
        let mut slots = Vec::with_capacity(members.total());
        let mut weights: Vec<f64> = Vec::new();
        offsets.push(0);
        for d in 0..n_domains {
            let ids = members.domain(d);
            weights.clear();
            weights.extend(ids.iter().map(|&m| weight_of(m)));
            build_slots(ids, &weights, &mut slots);
            offsets.push(slots.len() as u32);
        }
        Self { offsets, slots }
    }

    /// Number of candidates in `domain`.
    #[inline]
    pub fn domain_len(&self, domain: usize) -> usize {
        (self.offsets[domain + 1] - self.offsets[domain]) as usize
    }

    /// Sample `domain` from one uniform `u64`; `None` if the domain has
    /// no candidates.
    #[inline]
    pub fn sample_u64(&self, domain: usize, r: u64) -> Option<u32> {
        let lo = self.offsets[domain] as usize;
        let hi = self.offsets[domain + 1] as usize;
        if lo == hi {
            return None;
        }
        Some(sample_slots(&self.slots[lo..hi], r))
    }

    /// `domain`'s raw slot table (possibly empty), for callers that
    /// batch draws over a fixed table set via [`sample_slice`].
    #[inline]
    pub fn domain_slots(&self, domain: usize) -> &[AliasSlot] {
        let lo = self.offsets[domain] as usize;
        let hi = self.offsets[domain + 1] as usize;
        &self.slots[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn membership_matches_vec_of_vecs() {
        let pairs = [(2u32, 10u32), (0, 11), (2, 12), (1, 13), (2, 14)];
        let m = Membership::new(4, pairs.iter().copied());
        assert_eq!(m.domain(0), &[11]);
        assert_eq!(m.domain(1), &[13]);
        assert_eq!(m.domain(2), &[10, 12, 14]);
        assert_eq!(m.domain(3), &[] as &[u32]);
        assert_eq!(m.total(), 5);
    }

    #[test]
    fn alias_sampler_tracks_weights() {
        let ids = [7u32, 8, 9];
        let weights = [1.0, 2.0, 7.0];
        let a = AliasSampler::from_weighted_ids(&ids, &weights);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut counts = [0u32; 3];
        const N: u32 = 200_000;
        for _ in 0..N {
            let v = a.sample_u64(rng.r#gen());
            counts[(v - 7) as usize] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expect = w / 10.0;
            let got = counts[i] as f64 / N as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "id {i}: got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn alias_sampler_uniform_on_zero_mass() {
        let a = AliasSampler::from_weighted_ids(&[1, 2], &[0.0, 0.0]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut ones = 0u32;
        for _ in 0..10_000 {
            if a.sample_u64(rng.r#gen()) == 1 {
                ones += 1;
            }
        }
        assert!((2_000..8_000).contains(&ones));
    }

    #[test]
    fn alias_family_respects_domains() {
        let pairs = [(0u32, 5u32), (0, 6), (2, 9)];
        let m = Membership::new(3, pairs.iter().copied());
        let fam = AliasFamily::build(&m, 3, |_| 1.0);
        assert_eq!(fam.domain_len(0), 2);
        assert_eq!(fam.domain_len(1), 0);
        assert_eq!(fam.sample_u64(1, 12345), None);
        assert_eq!(fam.sample_u64(2, 12345), Some(9));
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = fam.sample_u64(0, rng.r#gen()).unwrap();
            assert!(v == 5 || v == 6);
        }
    }

    #[test]
    fn single_entry_table_always_accepts() {
        let a = AliasSampler::from_weighted_ids(&[42], &[3.5]);
        for r in [0u64, u64::MAX, 1 << 33] {
            assert_eq!(a.sample_u64(r), 42);
        }
    }
}
