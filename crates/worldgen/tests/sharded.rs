//! Differential proptests for the sharded worldgen pipeline: every
//! generator stage must be **bit-identical** across shard geometries.
//!
//! The sharding contract is that each work unit derives its RNG stream
//! from a (stage seed, unit index) counter ([`shard::unit_rng`]), never
//! from draw order — so concatenating per-block segments reproduces the
//! serial output exactly, for *any* block size. These tests pin that with
//! FNV-1a digests of the concrete outputs (users, edges, outage arena,
//! toot streams) while proptest varies the seed, the block size (1..=64
//! and the production defaults), and the population shape.
//!
//! A failure here means a stage picked up order-dependent state (a shared
//! RNG, a running sum feeding back into draws) and the parallel fan-out
//! in `par::parallel_map` would silently change the world.

use fediscope_model::geo::ProviderCatalog;
use fediscope_model::schedule::OutageArena;
use fediscope_worldgen::{
    availability, instances, shard, social, sub_seed, toots, users, WorldConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A small world shape the proptests can afford to regenerate ~dozens of
/// times: tiny preset, with the population nudged so block boundaries
/// land in different places relative to `n_users`.
fn shaped_config(seed: u64, extra_users: usize, extra_instances: usize) -> WorldConfig {
    let mut cfg = WorldConfig::tiny(seed);
    cfg.n_users += extra_users;
    cfg.n_instances += extra_instances;
    cfg
}

fn instance_stage(cfg: &WorldConfig) -> instances::InstanceStage {
    let providers = ProviderCatalog::with_tail(cfg.n_providers);
    instances::generate(
        cfg,
        &providers,
        &mut StdRng::seed_from_u64(sub_seed(cfg.seed, 1)),
    )
}

/// Digest a segment list as the flat `(src, dst)` edge stream it encodes.
fn digest_segments(segs: &[social::SocialSegment]) -> u64 {
    shard::digest_edges(segs.iter().flat_map(|s| {
        (0..s.offsets.len() - 1).flat_map(move |k| {
            s.targets[s.offsets[k] as usize..s.offsets[k + 1] as usize]
                .iter()
                .map(move |&t| (s.start + k as u32, t))
        })
    }))
}

proptest! {
    /// Users: serial (one spanning block) ≡ sharded at any block size.
    #[test]
    fn users_identical_at_any_block(
        seed in 0u64..1_000_000,
        extra in 0usize..97,
        block in 1usize..64,
    ) {
        let cfg = shaped_config(seed, extra, 0);
        let stage = instance_stage(&cfg);

        let serial = {
            let mut inst = stage.instances.clone();
            users::generate_with_block(&cfg, &mut inst, &stage.popularity, 0)
        };
        let mut inst = stage.instances.clone();
        let sharded = users::generate_with_block(&cfg, &mut inst, &stage.popularity, block);

        prop_assert_eq!(shard::digest_users(&serial), shard::digest_users(&sharded));
        // Block size must not leak into the instance aggregates either.
        let mut inst_serial = stage.instances.clone();
        users::generate_with_block(&cfg, &mut inst_serial, &stage.popularity, 0);
        for (a, b) in inst_serial.iter().zip(inst.iter()) {
            prop_assert_eq!(a.user_count, b.user_count);
            prop_assert_eq!(a.toot_count, b.toot_count);
        }
    }

    /// Social edges: the frozen cursor emits the same edge stream whether
    /// segmented per-user, in odd blocks, or in one spanning block.
    #[test]
    fn social_identical_at_any_block(
        seed in 0u64..1_000_000,
        extra in 0usize..61,
        block in 1usize..64,
    ) {
        let cfg = shaped_config(seed, extra, 0);
        let stage = instance_stage(&cfg);
        let mut inst = stage.instances.clone();
        let users_v = users::generate_with_block(&cfg, &mut inst, &stage.popularity, 0);
        let cursor = social::SocialCursor::new(&cfg, &inst, &users_v);

        let serial = digest_segments(&cursor.segments(0));
        prop_assert_eq!(serial, digest_segments(&cursor.segments(block)));
        prop_assert_eq!(serial, digest_segments(&cursor.segments(shard::DEFAULT_BLOCK)));
    }

    /// Availability: the unsorted-interval arena ingest is block-invariant
    /// and matches the sorted per-schedule builder path exactly.
    #[test]
    fn arena_identical_at_any_block(
        seed in 0u64..1_000_000,
        extra in 0usize..37,
        block in 1usize..64,
    ) {
        let cfg = shaped_config(seed, 0, extra);
        let stage = instance_stage(&cfg);

        let serial = {
            let mut inst = stage.instances.clone();
            availability::generate_arena_with_block(&cfg, &mut inst, 0)
        };
        let sharded = {
            let mut inst = stage.instances.clone();
            availability::generate_arena_with_block(&cfg, &mut inst, block)
        };
        // Sorted-builder reference: schedules → OutageArena::from_schedules.
        let sorted = {
            let mut inst = stage.instances.clone();
            let schedules = availability::generate_with_block(&cfg, &mut inst, 0);
            OutageArena::from_schedules(&schedules)
        };

        let want = shard::digest_arena(&serial);
        prop_assert_eq!(want, shard::digest_arena(&sharded));
        prop_assert_eq!(want, shard::digest_arena(&sorted));
    }

    /// Toot streams: per-user keyed event draws are block-invariant.
    #[test]
    fn toots_identical_at_any_block(
        seed in 0u64..1_000_000,
        extra in 0usize..53,
        block in 1usize..64,
        horizon in 4u32..48,
    ) {
        let cfg = shaped_config(seed, extra, 0);
        let stage = instance_stage(&cfg);
        let mut inst = stage.instances.clone();
        let users_v = users::generate_with_block(&cfg, &mut inst, &stage.popularity, 0);

        let serial = toots::generate_with_block(&cfg, &users_v, horizon, 1.0, 0);
        let sharded = toots::generate_with_block(&cfg, &users_v, horizon, 1.0, block);
        prop_assert_eq!(shard::digest_toots(&serial), shard::digest_toots(&sharded));
    }
}

/// The full pipeline at the production block sizes equals the explicit
/// serial pipeline — one fixed-seed end-to-end pin on top of the
/// per-stage proptests.
#[test]
fn default_blocks_match_serial_end_to_end() {
    let cfg = WorldConfig::tiny(2026);
    let stage = instance_stage(&cfg);

    let (serial_users, serial_inst) = {
        let mut inst = stage.instances.clone();
        let u = users::generate_with_block(&cfg, &mut inst, &stage.popularity, 0);
        (u, inst)
    };
    let mut inst = stage.instances.clone();
    let users_v = users::generate(&cfg, &mut inst, &stage.popularity);
    assert_eq!(
        shard::digest_users(&serial_users),
        shard::digest_users(&users_v)
    );

    let cursor = social::SocialCursor::new(&cfg, &inst, &users_v);
    let serial_cursor = social::SocialCursor::new(&cfg, &serial_inst, &serial_users);
    assert_eq!(
        digest_segments(&serial_cursor.segments(0)),
        digest_segments(&cursor.segments(shard::DEFAULT_BLOCK))
    );

    let serial_arena = {
        let mut i = serial_inst.clone();
        availability::generate_arena_with_block(&cfg, &mut i, 0)
    };
    let arena = availability::generate_arena(&cfg, &mut inst);
    assert_eq!(
        shard::digest_arena(&serial_arena),
        shard::digest_arena(&arena)
    );

    let serial_toots = toots::generate_with_block(&cfg, &serial_users, 24, 1.0, 0);
    let toots_v = toots::generate(&cfg, &users_v, 24, 1.0);
    assert_eq!(
        shard::digest_toots(&serial_toots),
        shard::digest_toots(&toots_v)
    );
}
