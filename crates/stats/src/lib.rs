//! # fediscope-stats
//!
//! Statistics substrate for the fediscope toolkit.
//!
//! The IMC'19 Mastodon study is, at heart, a pile of distributional
//! analyses: CDFs of users/toots per instance (Fig. 2), downtime
//! distributions (Figs. 7, 8, 10), degree distributions (Fig. 11),
//! correlation claims ("correlation between toots and downtime is −0.04"),
//! and share/top-k statements ("top 5% of instances hold 90.6% of users").
//! This crate provides the small, dependency-free numeric toolkit those
//! analyses are built on:
//!
//! - [`Ecdf`]: empirical CDFs with exact quantiles,
//! - [`Summary`] and [`BoxStats`]: five-number summaries for box plots,
//! - [`pearson`] / [`spearman`]: correlation coefficients,
//! - [`PowerLawFit`]: maximum-likelihood power-law exponent estimation,
//! - [`gini`] / [`lorenz`] / [`top_share`]: concentration measures,
//! - [`Histogram`] / [`LogHistogram`]: linear and logarithmic binning,
//! - [`Counter`]: ranked frequency counting for top-k tables.
//!
//! Everything is deterministic and `f64`-based; callers convert counts with
//! `as f64` at the boundary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correlation;
pub mod counter;
pub mod ecdf;
pub mod gini;
pub mod hist;
pub mod powerlaw;
pub mod summary;

pub use correlation::{pearson, spearman};
pub use counter::Counter;
pub use ecdf::Ecdf;
pub use gini::{gini, lorenz, top_share};
pub use hist::{Histogram, LogHistogram};
pub use powerlaw::PowerLawFit;
pub use summary::{BoxStats, Summary};

/// Linearly interpolated quantile of already-sorted data (`q` in `[0, 1]`).
///
/// Uses the common "R-7" definition (as NumPy's default). Returns `None` on
/// empty input. Panics in debug builds if the input is not sorted.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]), "input must be sorted");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Convenience: sort a copy of `data` and take a quantile.
pub fn quantile(data: &[f64], q: f64) -> Option<f64> {
    let mut v: Vec<f64> = data.to_vec();
    assert!(v.iter().all(|x| !x.is_nan()), "quantile: NaN value");
    v.sort_unstable_by(f64::total_cmp);
    quantile_sorted(&v, q)
}

/// Arithmetic mean; `None` on empty input.
pub fn mean(data: &[f64]) -> Option<f64> {
    if data.is_empty() {
        None
    } else {
        Some(data.iter().sum::<f64>() / data.len() as f64)
    }
}

/// Population standard deviation; `None` if fewer than one element.
pub fn std_dev(data: &[f64]) -> Option<f64> {
    let m = mean(data)?;
    let var = data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / data.len() as f64;
    Some(var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_of_singleton_is_value() {
        assert_eq!(quantile(&[42.0], 0.0), Some(42.0));
        assert_eq!(quantile(&[42.0], 0.5), Some(42.0));
        assert_eq!(quantile(&[42.0], 1.0), Some(42.0));
    }

    #[test]
    fn quantile_interpolates_linearly() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.5), Some(2.5));
        assert_eq!(quantile(&data, 0.0), Some(1.0));
        assert_eq!(quantile(&data, 1.0), Some(4.0));
        // R-7: pos = 0.25 * 3 = 0.75 -> 1 + 0.75*(2-1) = 1.75
        assert_eq!(quantile(&data, 0.25), Some(1.75));
    }

    #[test]
    fn quantile_empty_is_none() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(mean(&[]), None);
        assert_eq!(std_dev(&[]), None);
    }

    #[test]
    fn quantile_clamps_out_of_range_q() {
        let data = [1.0, 2.0, 3.0];
        assert_eq!(quantile(&data, -1.0), Some(1.0));
        assert_eq!(quantile(&data, 2.0), Some(3.0));
    }

    #[test]
    fn mean_and_std_dev_basic() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&data), Some(5.0));
        assert!((std_dev(&data).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_handles_unsorted_input() {
        let data = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&data, 0.5), Some(2.0));
    }
}
