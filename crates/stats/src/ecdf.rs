//! Empirical cumulative distribution functions.
//!
//! Used for every "CDF of X" figure in the paper (Figs. 2, 7, 10, 11).

/// An empirical CDF over `f64` samples.
///
/// Construction sorts the samples once; evaluation is `O(log n)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build an ECDF from samples. NaNs are rejected with a panic because a
    /// CDF over NaN is meaningless and almost always indicates an upstream bug.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            samples.iter().all(|x| !x.is_nan()),
            "Ecdf::new: NaN sample"
        );
        // total_cmp is branch-light and panic-free; with NaN excluded above
        // it orders exactly like partial_cmp.
        samples.sort_unstable_by(f64::total_cmp);
        Self { sorted: samples }
    }

    /// Build from any iterator of values convertible to `f64`.
    pub fn from_counts<I: IntoIterator<Item = u64>>(counts: I) -> Self {
        Self::new(counts.into_iter().map(|c| c as f64).collect())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: fraction of samples `<= x`. Returns 0 for empty ECDFs.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        // partition_point gives the count of samples <= x.
        let n_le = self.sorted.partition_point(|&v| v <= x);
        n_le as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF (quantile). `q` is clamped to `[0, 1]`; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        crate::quantile_sorted(&self.sorted, q)
    }

    /// Median, i.e. `quantile(0.5)`.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// The sorted samples (ascending). Useful for plotting (x = value,
    /// y = (i+1)/n).
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluate at a fixed set of points, producing `(x, F(x))` pairs — the
    /// series a plotting frontend would consume.
    pub fn series(&self, points: &[f64]) -> Vec<(f64, f64)> {
        points.iter().map(|&x| (x, self.eval(x))).collect()
    }

    /// Produce a step-function series with one point per distinct sample
    /// value: `(value, F(value))`.
    pub fn step_series(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &v) in self.sorted.iter().enumerate() {
            let y = (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 == v => last.1 = y,
                _ => out.push((v, y)),
            }
        }
        out
    }

    /// Fraction of samples strictly greater than `x` (the CCDF).
    pub fn ccdf(&self, x: f64) -> f64 {
        1.0 - self.eval(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_counts_inclusive() {
        let e = Ecdf::new(vec![1.0, 2.0, 2.0, 3.0]);
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.eval(99.0), 1.0);
    }

    #[test]
    fn quantiles_round_trip_at_extremes() {
        let e = Ecdf::new(vec![5.0, 1.0, 3.0]);
        assert_eq!(e.quantile(0.0), Some(1.0));
        assert_eq!(e.quantile(1.0), Some(5.0));
        assert_eq!(e.min(), Some(1.0));
        assert_eq!(e.max(), Some(5.0));
    }

    #[test]
    fn empty_ecdf_behaves() {
        let e = Ecdf::new(vec![]);
        assert!(e.is_empty());
        assert_eq!(e.eval(1.0), 0.0);
        assert_eq!(e.quantile(0.5), None);
    }

    #[test]
    fn step_series_merges_duplicates() {
        let e = Ecdf::new(vec![1.0, 1.0, 2.0]);
        let s = e.step_series();
        assert_eq!(s.len(), 2);
        assert!((s[0].1 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s[1], (2.0, 1.0));
    }

    #[test]
    fn ccdf_complements_cdf() {
        let e = Ecdf::from_counts(vec![1, 10, 100, 1000]);
        for x in [0.0, 1.0, 10.0, 500.0, 1000.0] {
            assert!((e.eval(x) + e.ccdf(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Ecdf::new(vec![1.0, f64::NAN]);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// F is monotonically non-decreasing.
        #[test]
        fn monotone(mut xs in proptest::collection::vec(0.0f64..1e6, 1..200),
                    a in 0.0f64..1e6, b in 0.0f64..1e6) {
            xs.iter_mut().for_each(|x| *x = x.floor());
            let e = Ecdf::new(xs);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(e.eval(lo) <= e.eval(hi));
        }

        /// F(max) == 1 and F(min - 1) == 0.
        #[test]
        fn bounds(xs in proptest::collection::vec(0.0f64..1e6, 1..200)) {
            let e = Ecdf::new(xs);
            prop_assert!((e.eval(e.max().unwrap()) - 1.0).abs() < 1e-12);
            prop_assert_eq!(e.eval(e.min().unwrap() - 1.0), 0.0);
        }

        /// quantile(F(x)) never exceeds the smallest sample strictly greater
        /// than x (interpolated quantiles may exceed x itself, but must stay
        /// below the next observed value).
        #[test]
        fn quantile_inverse(xs in proptest::collection::vec(0.0f64..1e4, 1..100)) {
            let e = Ecdf::new(xs.clone());
            for &x in &xs {
                let q = e.eval(x);
                let v = e.quantile(q).unwrap();
                let next_above = e
                    .samples()
                    .iter()
                    .copied()
                    .find(|&s| s > x)
                    .unwrap_or(x);
                prop_assert!(v <= next_above + 1e-9, "quantile({q}) = {v} > {next_above}");
            }
        }
    }
}
