//! Power-law exponent estimation.
//!
//! The paper observes "traditional power law distributions across all three
//! graphs" (Fig. 11). To make that claim checkable on synthetic data we fit
//! the discrete power-law exponent by maximum likelihood (the Clauset,
//! Shalizi & Newman approximation) and expose a crude goodness signal.

/// Result of a power-law fit `p(x) ∝ x^(−alpha)` for `x >= xmin`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawFit {
    /// Estimated exponent (alpha).
    pub alpha: f64,
    /// The lower cut-off used for the fit.
    pub xmin: f64,
    /// Number of samples at or above `xmin`.
    pub n_tail: usize,
}

impl PowerLawFit {
    /// MLE fit for continuous/discrete data with a given `xmin`.
    ///
    /// Uses the continuous approximation
    /// `alpha = 1 + n / sum(ln(x_i / (xmin - 0.5)))` which is accurate for
    /// discrete data when `xmin >= 6` and serviceable above `xmin >= 1`.
    /// Returns `None` when fewer than 2 samples reach `xmin`.
    pub fn fit(samples: &[f64], xmin: f64) -> Option<Self> {
        assert!(xmin > 0.0, "xmin must be positive");
        let shift = (xmin - 0.5).max(f64::MIN_POSITIVE);
        let tail: Vec<f64> = samples.iter().copied().filter(|&x| x >= xmin).collect();
        if tail.len() < 2 {
            return None;
        }
        let log_sum: f64 = tail.iter().map(|&x| (x / shift).ln()).sum();
        if log_sum <= 0.0 {
            return None;
        }
        Some(Self {
            alpha: 1.0 + tail.len() as f64 / log_sum,
            xmin,
            n_tail: tail.len(),
        })
    }

    /// Fit scanning a small set of candidate `xmin` values and keeping the
    /// one minimising the Kolmogorov–Smirnov distance between the empirical
    /// tail and the fitted CDF.
    pub fn fit_auto(samples: &[f64]) -> Option<Self> {
        let candidates = [1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0];
        let mut best: Option<(f64, Self)> = None;
        for &xmin in &candidates {
            let Some(fit) = Self::fit(samples, xmin) else {
                continue;
            };
            if fit.n_tail < 50 {
                continue; // too little tail to judge
            }
            let d = fit.ks_distance(samples);
            if best.as_ref().is_none_or(|(bd, _)| d < *bd) {
                best = Some((d, fit));
            }
        }
        best.map(|(_, f)| f).or_else(|| Self::fit(samples, 1.0))
    }

    /// CCDF of the fitted (continuous) power law at `x >= xmin`.
    pub fn ccdf(&self, x: f64) -> f64 {
        if x < self.xmin {
            return 1.0;
        }
        (x / self.xmin).powf(1.0 - self.alpha)
    }

    /// Kolmogorov–Smirnov distance between the empirical tail distribution
    /// and the fitted power law (smaller = better fit).
    pub fn ks_distance(&self, samples: &[f64]) -> f64 {
        let mut tail: Vec<f64> = samples
            .iter()
            .copied()
            .filter(|&x| x >= self.xmin)
            .collect();
        if tail.is_empty() {
            return 1.0;
        }
        tail.sort_by(|a, b| a.partial_cmp(b).expect("NaN"));
        let n = tail.len() as f64;
        let mut d: f64 = 0.0;
        for (i, &x) in tail.iter().enumerate() {
            let emp_ccdf = 1.0 - (i as f64 + 1.0) / n;
            let model = self.ccdf(x);
            d = d.max((emp_ccdf - model).abs());
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Draw n deterministic samples from a discrete zeta-ish tail via inverse
    /// transform on a quasi-random sequence (no rand dependency needed here).
    fn synth_power_law(alpha: f64, n: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(n);
        // golden-ratio low-discrepancy sequence in (0,1)
        let mut u = 0.5f64;
        const PHI_CONJ: f64 = 0.618_033_988_749_894_9;
        for _ in 0..n {
            u = (u + PHI_CONJ) % 1.0;
            let uu = u.max(1e-12);
            // inverse CCDF of continuous power law with xmin = 1
            let x = uu.powf(-1.0 / (alpha - 1.0));
            out.push(x.floor().max(1.0));
        }
        out
    }

    #[test]
    fn recovers_known_exponent() {
        for alpha in [1.8, 2.2, 2.8] {
            let data = synth_power_law(alpha, 20_000);
            let fit = PowerLawFit::fit(&data, 5.0).unwrap();
            assert!(
                (fit.alpha - alpha).abs() < 0.25,
                "alpha {alpha} estimated {got}",
                got = fit.alpha
            );
        }
    }

    #[test]
    fn too_few_samples_is_none() {
        assert!(PowerLawFit::fit(&[10.0], 1.0).is_none());
        assert!(PowerLawFit::fit(&[1.0, 1.0, 1.0], 5.0).is_none());
    }

    #[test]
    fn ccdf_monotone_and_bounded() {
        let fit = PowerLawFit {
            alpha: 2.5,
            xmin: 1.0,
            n_tail: 100,
        };
        let mut prev = 1.0;
        for i in 1..100 {
            let c = fit.ccdf(i as f64);
            assert!(c <= prev + 1e-12);
            assert!((0.0..=1.0).contains(&c));
            prev = c;
        }
    }

    #[test]
    fn ks_distance_small_for_true_model() {
        let data = synth_power_law(2.3, 50_000);
        let fit = PowerLawFit::fit(&data, 8.0).unwrap();
        // Samples are floored to integers, so the continuous model deviates
        // by up to the discretisation step near xmin; 0.15 is a loose bound
        // that still cleanly separates power-law from uniform data (see
        // `uniform_data_fits_badly`).
        let d = fit.ks_distance(&data);
        assert!(d < 0.15, "KS distance {d} too large for a true power law");
    }

    #[test]
    fn fit_auto_picks_something_reasonable() {
        let data = synth_power_law(2.1, 20_000);
        let fit = PowerLawFit::fit_auto(&data).unwrap();
        assert!(fit.alpha > 1.5 && fit.alpha < 3.0, "alpha = {}", fit.alpha);
    }

    #[test]
    fn uniform_data_fits_badly() {
        // Uniform data should be distinguishable from a power law by KS.
        let uniform: Vec<f64> = (1..=1000).map(|x| x as f64).collect();
        let power = synth_power_law(2.3, 1000);
        let fu = PowerLawFit::fit(&uniform, 5.0).unwrap();
        let fp = PowerLawFit::fit(&power, 5.0).unwrap();
        assert!(fu.ks_distance(&uniform) > fp.ks_distance(&power));
    }
}
