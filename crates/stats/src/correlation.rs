//! Correlation coefficients.
//!
//! The paper states e.g. "the correlation between the number of toots on an
//! instance and its downtime is −0.04" (§4.4) and "the more toots an instance
//! generates, the higher the probability of them being replicated
//! (correlation 0.97)" (§5.2). These are reproduced with [`pearson`] and
//! [`spearman`].

/// Pearson product-moment correlation of two equal-length series.
///
/// Returns `None` if the series differ in length, are shorter than 2, or if
/// either has zero variance (correlation undefined).
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return None;
    }
    Some(cov / (vx.sqrt() * vy.sqrt()))
}

/// Spearman rank correlation (Pearson over fractional ranks, ties averaged).
///
/// More robust than Pearson for the heavy-tailed count data that dominates
/// this study.
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.len() != y.len() || x.len() < 2 {
        return None;
    }
    let rx = fractional_ranks(x);
    let ry = fractional_ranks(y);
    pearson(&rx, &ry)
}

/// Assign fractional ranks (1-based; ties share the average of their ranks).
pub fn fractional_ranks(data: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..data.len()).collect();
    idx.sort_by(|&a, &b| data[a].partial_cmp(&data[b]).expect("NaN in rank input"));
    let mut ranks = vec![0.0; data.len()];
    let mut i = 0;
    while i < idx.len() {
        // find the tie run [i, j)
        let mut j = i + 1;
        while j < idx.len() && data[idx[j]] == data[idx[i]] {
            j += 1;
        }
        // ranks are 1-based: positions i+1 ..= j
        let avg = (i + 1 + j) as f64 / 2.0;
        for &k in &idx[i..j] {
            ranks[k] = avg;
        }
        i = j;
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative_correlation() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &y).unwrap() + 1.0).abs() < 1e-12);
        assert!((spearman(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_variance_is_none() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
        assert_eq!(spearman(&[1.0, 2.0], &[5.0, 5.0]), None);
    }

    #[test]
    fn mismatched_or_tiny_is_none() {
        assert_eq!(pearson(&[1.0], &[1.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[1.0]), None);
    }

    #[test]
    fn spearman_ignores_monotone_transform() {
        let x = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| f64::exp(*v)).collect();
        // Nonlinear but monotone: Spearman = 1, Pearson < 1.
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn ranks_average_ties() {
        let r = fractional_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn ranks_of_empty() {
        assert!(fractional_ranks(&[]).is_empty());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Correlation is symmetric and bounded in [-1, 1].
        #[test]
        fn bounded_and_symmetric(pairs in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 3..100)) {
            let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let (Some(r1), Some(r2)) = (pearson(&x, &y), pearson(&y, &x)) {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r1));
                prop_assert!((r1 - r2).abs() < 1e-9);
            }
        }

        /// rank vector is a permutation-with-ties of 1..=n (sums match).
        #[test]
        fn rank_sum_invariant(xs in proptest::collection::vec(-1e3f64..1e3, 1..100)) {
            let r = fractional_ranks(&xs);
            let n = xs.len() as f64;
            let expect = n * (n + 1.0) / 2.0;
            prop_assert!((r.iter().sum::<f64>() - expect).abs() < 1e-6);
        }
    }
}
