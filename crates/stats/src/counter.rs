//! Ranked frequency counting for the paper's "top-N" tables and shares
//! (Fig. 5 country/AS shares, Table 1, Table 2).

use std::collections::HashMap;
use std::hash::Hash;

/// A frequency counter with weighted increments and ranked extraction.
#[derive(Debug, Clone)]
pub struct Counter<K: Eq + Hash> {
    counts: HashMap<K, f64>,
}

impl<K: Eq + Hash + Clone> Default for Counter<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone> Counter<K> {
    /// Empty counter.
    pub fn new() -> Self {
        Self {
            counts: HashMap::new(),
        }
    }

    /// Increment `key` by 1.
    pub fn add(&mut self, key: K) {
        self.add_weighted(key, 1.0);
    }

    /// Increment `key` by `w`.
    pub fn add_weighted(&mut self, key: K, w: f64) {
        *self.counts.entry(key).or_insert(0.0) += w;
    }

    /// Current count for `key` (0 when absent).
    pub fn get(&self, key: &K) -> f64 {
        self.counts.get(key).copied().unwrap_or(0.0)
    }

    /// Number of distinct keys.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Sum of all counts.
    pub fn total(&self) -> f64 {
        self.counts.values().sum()
    }

    /// Keys ranked by descending count. Ties are broken arbitrarily but
    /// deterministically is NOT guaranteed by HashMap iteration, so callers
    /// needing stable output should use [`Counter::top_k_stable`].
    pub fn ranked(&self) -> Vec<(K, f64)> {
        let mut v: Vec<(K, f64)> = self
            .counts
            .iter()
            .map(|(k, &c)| (k.clone(), c))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("NaN count"));
        v
    }

    /// Top `k` entries by count with a secondary deterministic ordering
    /// provided by the caller's key-ordering function.
    pub fn top_k_stable<F>(&self, k: usize, mut key_ord: F) -> Vec<(K, f64)>
    where
        F: FnMut(&K, &K) -> std::cmp::Ordering,
    {
        let mut v: Vec<(K, f64)> = self
            .counts
            .iter()
            .map(|(key, &c)| (key.clone(), c))
            .collect();
        v.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("NaN count")
                .then_with(|| key_ord(&a.0, &b.0))
        });
        v.truncate(k);
        v
    }

    /// Share of the total held by `key` (0 when total is 0).
    pub fn share(&self, key: &K) -> f64 {
        let t = self.total();
        if t == 0.0 {
            0.0
        } else {
            self.get(key) / t
        }
    }

    /// All counts as a vector (for feeding into gini / top_share).
    pub fn values(&self) -> Vec<f64> {
        self.counts.values().copied().collect()
    }
}

impl<K: Eq + Hash + Clone> FromIterator<K> for Counter<K> {
    fn from_iter<T: IntoIterator<Item = K>>(iter: T) -> Self {
        let mut c = Self::new();
        for k in iter {
            c.add(k);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_shares() {
        let c: Counter<&str> = ["jp", "jp", "us", "fr"].into_iter().collect();
        assert_eq!(c.get(&"jp"), 2.0);
        assert_eq!(c.get(&"de"), 0.0);
        assert_eq!(c.distinct(), 3);
        assert_eq!(c.total(), 4.0);
        assert!((c.share(&"jp") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn weighted_adds() {
        let mut c = Counter::new();
        c.add_weighted("amazon", 30.5);
        c.add_weighted("amazon", 10.0);
        c.add_weighted("ovh", 5.0);
        assert_eq!(c.get(&"amazon"), 40.5);
        let ranked = c.ranked();
        assert_eq!(ranked[0].0, "amazon");
    }

    #[test]
    fn top_k_stable_breaks_ties_deterministically() {
        let mut c = Counter::new();
        c.add_weighted("b", 1.0);
        c.add_weighted("a", 1.0);
        c.add_weighted("c", 2.0);
        let top = c.top_k_stable(3, |x, y| x.cmp(y));
        assert_eq!(
            top.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec!["c", "a", "b"]
        );
    }

    #[test]
    fn top_k_truncates() {
        let c: Counter<u32> = (0..100).collect();
        assert_eq!(c.top_k_stable(5, |a, b| a.cmp(b)).len(), 5);
    }

    #[test]
    fn empty_counter() {
        let c: Counter<u8> = Counter::new();
        assert_eq!(c.total(), 0.0);
        assert_eq!(c.share(&1), 0.0);
        assert!(c.ranked().is_empty());
    }
}
