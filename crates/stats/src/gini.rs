//! Concentration measures: Gini coefficient, Lorenz curve, top-k shares.
//!
//! The paper's centralisation narrative rests on statements like "the top 5%
//! of all instances have 90.6% of all users" and "10% of instances host
//! almost half of the users". [`top_share`] computes exactly those numbers;
//! [`gini`] summarises the skew in one scalar.

/// Gini coefficient of non-negative values in `[0, 1]`.
///
/// 0 = perfectly equal, →1 = maximally concentrated. Returns `None` on empty
/// input or when the total is zero.
pub fn gini(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    // NaN fails the >= too, so corrupt input still fails fast here.
    assert!(v.iter().all(|x| *x >= 0.0), "gini: negative or NaN value");
    v.sort_unstable_by(f64::total_cmp);
    let n = v.len() as f64;
    let total: f64 = v.iter().sum();
    if total == 0.0 {
        return None;
    }
    // G = (2 * sum_i i*x_i) / (n * total) - (n + 1) / n, with i 1-based over
    // ascending-sorted values.
    let weighted: f64 = v
        .iter()
        .enumerate()
        .map(|(i, &x)| (i as f64 + 1.0) * x)
        .sum();
    Some((2.0 * weighted) / (n * total) - (n + 1.0) / n)
}

/// Lorenz curve: returns `(population_fraction, value_fraction)` points for
/// the *ascending*-sorted values, starting at `(0, 0)` and ending at `(1, 1)`.
pub fn lorenz(values: &[f64]) -> Vec<(f64, f64)> {
    let mut v = values.to_vec();
    assert!(v.iter().all(|x| !x.is_nan()), "lorenz: NaN value");
    v.sort_unstable_by(f64::total_cmp);
    let total: f64 = v.iter().sum();
    let n = v.len() as f64;
    let mut out = vec![(0.0, 0.0)];
    if total == 0.0 || v.is_empty() {
        out.push((1.0, 1.0));
        return out;
    }
    let mut acc = 0.0;
    for (i, &x) in v.iter().enumerate() {
        acc += x;
        out.push(((i as f64 + 1.0) / n, acc / total));
    }
    out
}

/// Share of the total held by the top `frac` of holders (by value).
///
/// `top_share(&users_per_instance, 0.05)` answers "what fraction of users do
/// the top 5% of instances hold?". The number of top holders is
/// `ceil(frac * n)` so that a non-empty prefix is always considered for
/// `frac > 0`. Returns `None` on empty input or zero total.
pub fn top_share(values: &[f64], frac: f64) -> Option<f64> {
    if values.is_empty() || !(0.0..=1.0).contains(&frac) {
        return None;
    }
    let total: f64 = values.iter().sum();
    if total == 0.0 {
        return None;
    }
    let mut v = values.to_vec();
    assert!(v.iter().all(|x| !x.is_nan()), "top_share: NaN value");
    // descending
    v.sort_unstable_by(|a, b| f64::total_cmp(b, a));
    let k = ((frac * v.len() as f64).ceil() as usize).min(v.len());
    Some(v[..k].iter().sum::<f64>() / total)
}

/// Smallest fraction of (top) holders needed to cover at least `share` of the
/// total — the inverse question of [`top_share`]. E.g. "what fraction of
/// instances hold half the users?".
pub fn holders_for_share(values: &[f64], share: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let total: f64 = values.iter().sum();
    if total == 0.0 {
        return None;
    }
    let mut v = values.to_vec();
    assert!(v.iter().all(|x| !x.is_nan()), "holders_for_share: NaN value");
    v.sort_unstable_by(|a, b| f64::total_cmp(b, a));
    let target = share.clamp(0.0, 1.0) * total;
    let mut acc = 0.0;
    for (i, &x) in v.iter().enumerate() {
        acc += x;
        if acc >= target {
            return Some((i + 1) as f64 / v.len() as f64);
        }
    }
    Some(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_equal_distribution_is_zero() {
        let g = gini(&[5.0, 5.0, 5.0, 5.0]).unwrap();
        assert!(g.abs() < 1e-12);
    }

    #[test]
    fn gini_single_holder_approaches_one() {
        let mut v = vec![0.0; 999];
        v.push(100.0);
        let g = gini(&v).unwrap();
        assert!(g > 0.99, "g = {g}");
    }

    #[test]
    fn gini_empty_or_zero_is_none() {
        assert_eq!(gini(&[]), None);
        assert_eq!(gini(&[0.0, 0.0]), None);
    }

    #[test]
    fn lorenz_endpoints() {
        let l = lorenz(&[1.0, 2.0, 3.0]);
        assert_eq!(l.first(), Some(&(0.0, 0.0)));
        let last = *l.last().unwrap();
        assert!((last.0 - 1.0).abs() < 1e-12 && (last.1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lorenz_below_diagonal_for_skewed() {
        let l = lorenz(&[1.0, 1.0, 1.0, 97.0]);
        for &(p, v) in &l[1..l.len() - 1] {
            assert!(v <= p + 1e-12, "Lorenz curve must lie below the diagonal");
        }
    }

    #[test]
    fn top_share_picks_largest() {
        // 10 instances, one with 91 users, nine with 1.
        let mut v = vec![1.0; 9];
        v.push(91.0);
        // top 10% = 1 instance = the big one.
        assert!((top_share(&v, 0.10).unwrap() - 0.91).abs() < 1e-12);
        // top 100% = everything.
        assert!((top_share(&v, 1.0).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn holders_for_share_inverse_of_top_share() {
        let mut v = vec![1.0; 90];
        v.extend(std::iter::repeat_n(91.0, 10));
        // top 10 holders have 910 of 1000 -> to cover 50% we need few holders.
        let h = holders_for_share(&v, 0.5).unwrap();
        assert!(h <= 0.10, "h = {h}");
    }

    #[test]
    fn top_share_frac_zero_takes_nothing_extra() {
        // ceil(0 * n) = 0 holders -> share 0
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(top_share(&v, 0.0), Some(0.0));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Gini is within [0, 1] and invariant under scaling.
        #[test]
        fn gini_bounds_and_scale(xs in proptest::collection::vec(0.0f64..1e4, 1..200), k in 0.1f64..100.0) {
            if let Some(g) = gini(&xs) {
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&g));
                let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
                let g2 = gini(&scaled).unwrap();
                prop_assert!((g - g2).abs() < 1e-9);
            }
        }

        /// top_share is monotone in frac.
        #[test]
        fn top_share_monotone(xs in proptest::collection::vec(0.0f64..1e4, 1..200),
                              a in 0.0f64..1.0, b in 0.0f64..1.0) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            if let (Some(s1), Some(s2)) = (top_share(&xs, lo), top_share(&xs, hi)) {
                prop_assert!(s1 <= s2 + 1e-9);
            }
        }

        /// Lorenz curve is monotone in both coordinates.
        #[test]
        fn lorenz_monotone(xs in proptest::collection::vec(0.0f64..1e4, 1..200)) {
            let l = lorenz(&xs);
            for w in l.windows(2) {
                prop_assert!(w[0].0 <= w[1].0 + 1e-12);
                prop_assert!(w[0].1 <= w[1].1 + 1e-12);
            }
        }
    }
}
