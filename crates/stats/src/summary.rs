//! Five-number summaries and box-plot statistics (Fig. 8 of the paper).

/// A basic distribution summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile (used repeatedly by the paper, e.g. Fig. 7).
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarise `data`; `None` on empty input.
    pub fn of(data: &[f64]) -> Option<Self> {
        if data.is_empty() {
            return None;
        }
        let mut v = data.to_vec();
        assert!(v.iter().all(|x| !x.is_nan()), "NaN in Summary input");
        v.sort_unstable_by(f64::total_cmp);
        Some(Self {
            n: v.len(),
            mean: crate::mean(&v)?,
            std_dev: crate::std_dev(&v)?,
            min: v[0],
            p25: crate::quantile_sorted(&v, 0.25)?,
            median: crate::quantile_sorted(&v, 0.5)?,
            p75: crate::quantile_sorted(&v, 0.75)?,
            p95: crate::quantile_sorted(&v, 0.95)?,
            max: *v.last().unwrap(),
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.p75 - self.p25
    }
}

/// Tukey box-plot statistics: quartiles, whiskers at 1.5·IQR, and outliers.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxStats {
    /// 25th percentile (box bottom).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile (box top).
    pub q3: f64,
    /// Lowest sample within `q1 - 1.5·IQR`.
    pub whisker_lo: f64,
    /// Highest sample within `q3 + 1.5·IQR`.
    pub whisker_hi: f64,
    /// Samples outside the whiskers.
    pub outliers: Vec<f64>,
}

impl BoxStats {
    /// Compute box-plot statistics; `None` on empty input.
    pub fn of(data: &[f64]) -> Option<Self> {
        if data.is_empty() {
            return None;
        }
        let mut v = data.to_vec();
        assert!(v.iter().all(|x| !x.is_nan()), "NaN in BoxStats input");
        v.sort_unstable_by(f64::total_cmp);
        let q1 = crate::quantile_sorted(&v, 0.25)?;
        let median = crate::quantile_sorted(&v, 0.5)?;
        let q3 = crate::quantile_sorted(&v, 0.75)?;
        let iqr = q3 - q1;
        let lo_fence = q1 - 1.5 * iqr;
        let hi_fence = q3 + 1.5 * iqr;
        // Most extreme samples inside the fences; when every sample on a
        // side is an outlier the whisker collapses onto the box edge
        // (matplotlib's convention), keeping whisker_lo <= q1 <= q3 <= whisker_hi.
        let whisker_lo = v
            .iter()
            .copied()
            .find(|&x| x >= lo_fence)
            .unwrap_or(v[0])
            .min(q1);
        let whisker_hi = v
            .iter()
            .rev()
            .copied()
            .find(|&x| x <= hi_fence)
            .unwrap_or(*v.last().unwrap())
            .max(q3);
        let outliers = v
            .iter()
            .copied()
            .filter(|&x| x < lo_fence || x > hi_fence)
            .collect();
        Some(Self {
            q1,
            median,
            q3,
            whisker_lo,
            whisker_hi,
            outliers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_data() {
        let data: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let s = Summary::of(&data).unwrap();
        assert_eq!(s.n, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert!((s.median - 50.5).abs() < 1e-12);
        assert!((s.p25 - 25.75).abs() < 1e-12);
        assert!((s.p95 - 95.05).abs() < 1e-9);
    }

    #[test]
    fn summary_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(BoxStats::of(&[]).is_none());
    }

    #[test]
    fn box_stats_no_outliers_for_uniform() {
        let data: Vec<f64> = (0..20).map(|x| x as f64).collect();
        let b = BoxStats::of(&data).unwrap();
        assert!(b.outliers.is_empty());
        assert_eq!(b.whisker_lo, 0.0);
        assert_eq!(b.whisker_hi, 19.0);
    }

    #[test]
    fn box_stats_flags_extreme_outlier() {
        let mut data: Vec<f64> = (0..20).map(|x| x as f64).collect();
        data.push(1000.0);
        let b = BoxStats::of(&data).unwrap();
        assert_eq!(b.outliers, vec![1000.0]);
        assert!(b.whisker_hi <= 20.0);
    }

    #[test]
    fn box_order_invariant() {
        let b = BoxStats::of(&[5.0, 1.0, 9.0, 3.0, 7.0]).unwrap();
        assert!(b.whisker_lo <= b.q1);
        assert!(b.q1 <= b.median);
        assert!(b.median <= b.q3);
        assert!(b.q3 <= b.whisker_hi);
    }

    #[test]
    fn iqr_nonnegative() {
        let s = Summary::of(&[3.0, 3.0, 3.0]).unwrap();
        assert_eq!(s.iqr(), 0.0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Quartile ordering always holds and whiskers bound the box.
        #[test]
        fn box_invariants(xs in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
            let b = BoxStats::of(&xs).unwrap();
            prop_assert!(b.whisker_lo <= b.q1 + 1e-9);
            prop_assert!(b.q1 <= b.median + 1e-9);
            prop_assert!(b.median <= b.q3 + 1e-9);
            prop_assert!(b.q3 <= b.whisker_hi + 1e-9);
            // every outlier is outside the whiskers
            for o in &b.outliers {
                prop_assert!(*o < b.whisker_lo || *o > b.whisker_hi);
            }
        }

        /// Summary min/max bracket every other statistic.
        #[test]
        fn summary_bracketing(xs in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
            let s = Summary::of(&xs).unwrap();
            for v in [s.mean, s.p25, s.median, s.p75, s.p95] {
                prop_assert!(v >= s.min - 1e-9 && v <= s.max + 1e-9);
            }
        }
    }
}
