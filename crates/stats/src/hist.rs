//! Linear and logarithmic histograms.
//!
//! Log-binned histograms underpin the degree-distribution work (Fig. 11) and
//! the toot-count bins of Fig. 8 (`<10K`, `10K–100K`, `100K–1M`, `>1M`).

/// Fixed-width linear histogram over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    /// Samples below `lo`.
    pub underflow: u64,
    /// Samples at or above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// Create with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "Histogram: bins must be > 0");
        assert!(hi > lo, "Histogram: hi must exceed lo");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Add a sample.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.counts.len() - 1); // float-edge guard
            self.counts[idx] += 1;
        }
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total samples including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// `(bin_center, count)` pairs.
    pub fn series(&self) -> Vec<(f64, u64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * w, c))
            .collect()
    }
}

/// Histogram with logarithmically spaced bin edges, for heavy-tailed counts.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    /// Ascending bin edges; bin `i` covers `[edges[i], edges[i+1])`.
    edges: Vec<f64>,
    counts: Vec<u64>,
    /// Samples below the first edge (including zeros).
    pub underflow: u64,
    /// Samples at or beyond the last edge.
    pub overflow: u64,
}

impl LogHistogram {
    /// `bins` log-spaced bins between `lo > 0` and `hi > lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo > 0.0 && hi > lo && bins > 0, "LogHistogram: bad bounds");
        let llo = lo.ln();
        let lhi = hi.ln();
        let edges: Vec<f64> = (0..=bins)
            .map(|i| (llo + (lhi - llo) * i as f64 / bins as f64).exp())
            .collect();
        Self {
            counts: vec![0; bins],
            edges,
            underflow: 0,
            overflow: 0,
        }
    }

    /// Build from explicit ascending edges (used for the paper's toot bins).
    pub fn from_edges(edges: Vec<f64>) -> Self {
        assert!(edges.len() >= 2, "need at least two edges");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly ascending"
        );
        let n = edges.len() - 1;
        Self {
            edges,
            counts: vec![0; n],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Index of the bin containing `x`, if in range.
    pub fn bin_of(&self, x: f64) -> Option<usize> {
        if x < self.edges[0] {
            return None;
        }
        if x >= *self.edges.last().unwrap() {
            return None;
        }
        // binary search for the rightmost edge <= x
        let i = self.edges.partition_point(|&e| e <= x) - 1;
        Some(i.min(self.counts.len() - 1))
    }

    /// Add a sample.
    pub fn add(&mut self, x: f64) {
        match self.bin_of(x) {
            Some(i) => self.counts[i] += 1,
            None if x < self.edges[0] => self.underflow += 1,
            None => self.overflow += 1,
        }
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Bin edges.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Total samples including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_histogram_bins_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.add(i as f64 + 0.5);
        }
        assert_eq!(h.counts(), &[1; 10]);
        assert_eq!(h.total(), 10);
    }

    #[test]
    fn linear_histogram_overflow_underflow() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-1.0);
        h.add(5.0);
        h.add(1.0); // hi is exclusive
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn log_histogram_spacing() {
        let h = LogHistogram::new(1.0, 1000.0, 3);
        let e = h.edges();
        assert!((e[0] - 1.0).abs() < 1e-9);
        assert!((e[1] - 10.0).abs() < 1e-6);
        assert!((e[2] - 100.0).abs() < 1e-4);
        assert!((e[3] - 1000.0).abs() < 1e-3);
    }

    #[test]
    fn paper_toot_bins() {
        // Fig. 8 bins: <10K, 10K-100K, 100K-1M, >1M. We model them with
        // explicit edges plus under/overflow for the open ends.
        let mut h = LogHistogram::from_edges(vec![1e4, 1e5, 1e6]);
        h.add(500.0); // <10K       -> underflow
        h.add(5e4); //   10K-100K   -> bin 0
        h.add(5e5); //   100K-1M    -> bin 1
        h.add(2e6); //   >1M        -> overflow
        assert_eq!(h.underflow, 1);
        assert_eq!(h.counts(), &[1, 1]);
        assert_eq!(h.overflow, 1);
    }

    #[test]
    fn bin_of_edges_inclusive_exclusive() {
        let h = LogHistogram::from_edges(vec![1.0, 10.0, 100.0]);
        assert_eq!(h.bin_of(1.0), Some(0));
        assert_eq!(h.bin_of(9.999), Some(0));
        assert_eq!(h.bin_of(10.0), Some(1));
        assert_eq!(h.bin_of(100.0), None);
        assert_eq!(h.bin_of(0.5), None);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn from_edges_rejects_disorder() {
        let _ = LogHistogram::from_edges(vec![10.0, 1.0]);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// No sample is ever lost: total == number of adds.
        #[test]
        fn conservation(xs in proptest::collection::vec(-1e3f64..1e7, 0..500)) {
            let mut h = Histogram::new(0.0, 1e6, 37);
            let mut lh = LogHistogram::new(1.0, 1e6, 13);
            for &x in &xs {
                h.add(x);
                lh.add(x);
            }
            prop_assert_eq!(h.total(), xs.len() as u64);
            prop_assert_eq!(lh.total(), xs.len() as u64);
        }
    }
}
