//! Deterministic fault injection (smoltcp-style: drop chance, delay,
//! rate limiting) applied in front of the instance API.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// What the fault layer decided to do with a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Serve normally.
    Pass,
    /// Delay by the given duration, then serve.
    Delay(Duration),
    /// Fail with a 500 (models transient backend errors).
    ServerError,
    /// Fail with a 429 (rate limit exceeded).
    RateLimited,
}

/// Fault plan configuration.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Probability of a transient 500.
    pub error_prob: f64,
    /// Probability of an artificial delay.
    pub delay_prob: f64,
    /// Delay bounds.
    pub delay_min: Duration,
    /// Upper delay bound.
    pub delay_max: Duration,
    /// Requests allowed per instance per virtual epoch before 429s
    /// (0 = unlimited).
    pub per_epoch_budget: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            error_prob: 0.0,
            delay_prob: 0.0,
            delay_min: Duration::from_millis(1),
            delay_max: Duration::from_millis(20),
            per_epoch_budget: 0,
        }
    }
}

impl FaultPlan {
    /// A mildly hostile network: 2% errors, 10% delays.
    pub fn flaky() -> Self {
        Self {
            error_prob: 0.02,
            delay_prob: 0.10,
            ..Self::default()
        }
    }
}

/// Stateful injector: deterministic decisions derived from a seed and a
/// request counter (no global RNG locking on the hot path).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
    counter: AtomicU64,
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultInjector {
    /// New injector.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        Self {
            plan,
            seed,
            counter: AtomicU64::new(0),
        }
    }

    /// The configured plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide the fate of the next request.
    pub fn decide(&self) -> FaultDecision {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let h = mix(self.seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let u = (h >> 11) as f64 / (1u64 << 53) as f64; // uniform [0,1)
        if u < self.plan.error_prob {
            return FaultDecision::ServerError;
        }
        if u < self.plan.error_prob + self.plan.delay_prob {
            let span = self
                .plan
                .delay_max
                .saturating_sub(self.plan.delay_min)
                .as_millis() as u64;
            let extra = if span == 0 { 0 } else { mix(h) % span };
            return FaultDecision::Delay(self.plan.delay_min + Duration::from_millis(extra));
        }
        FaultDecision::Pass
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_always_passes() {
        let inj = FaultInjector::new(FaultPlan::default(), 1);
        for _ in 0..1000 {
            assert_eq!(inj.decide(), FaultDecision::Pass);
        }
    }

    #[test]
    fn error_rate_respected() {
        let plan = FaultPlan {
            error_prob: 0.3,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan, 42);
        let errs = (0..10_000)
            .filter(|_| inj.decide() == FaultDecision::ServerError)
            .count();
        let rate = errs as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "error rate {rate}");
    }

    #[test]
    fn delays_within_bounds() {
        let plan = FaultPlan {
            delay_prob: 1.0,
            delay_min: Duration::from_millis(5),
            delay_max: Duration::from_millis(10),
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan, 7);
        for _ in 0..100 {
            match inj.decide() {
                FaultDecision::Delay(d) => {
                    assert!(d >= Duration::from_millis(5) && d <= Duration::from_millis(10));
                }
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn deterministic_sequence() {
        let mk = || FaultInjector::new(FaultPlan::flaky(), 99);
        let a: Vec<FaultDecision> = (0..50).map(|_| mk().decide()).collect();
        // same seed, same first decision each time
        assert!(a.windows(2).all(|w| w[0] == w[1]));
        let i1 = mk();
        let i2 = mk();
        let s1: Vec<FaultDecision> = (0..50).map(|_| i1.decide()).collect();
        let s2: Vec<FaultDecision> = (0..50).map(|_| i2.decide()).collect();
        assert_eq!(s1, s2);
    }
}
