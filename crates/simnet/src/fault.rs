//! Deterministic fault injection (smoltcp-style: drop chance, delay,
//! rate limiting, connection resets, mid-crawl instance death) applied in
//! front of the instance API.
//!
//! # Taxonomy
//!
//! | Decision      | Wire behaviour                 | Crawler sees        |
//! |---------------|--------------------------------|---------------------|
//! | `Pass`        | serve normally                 | 2xx/4xx per route   |
//! | `Delay`       | virtual-time sleep, then serve | slow response       |
//! | `ServerError` | `500`                          | transient failure   |
//! | `RateLimited` | `429` + `retry-after`          | back off and retry  |
//! | `Reset`       | RST, nothing written           | connection error    |
//!
//! Two distinct sources produce `Reset`: a transient connection reset
//! (`reset_prob`, recoverable on retry) and *instance death*
//! (`death_prob`): once an instance draws death, every later request to it
//! resets forever — the mid-crawl disappearance §3 of the paper had to
//! tolerate.
//!
//! # Determinism
//!
//! Decisions derive from `mix(seed, counter)` — no RNG state beyond one
//! atomic counter, so the same seed yields the same fault transcript on
//! every run regardless of task interleaving (the executor is
//! single-threaded and deterministic, so interleaving is fixed too).
//!
//! # Budgets
//!
//! Per-epoch request budgets live here (not in `SimState`) and are keyed
//! by the [`SimClock`] epoch: advancing the virtual clock — never wall
//! time — resets every instance's allowance.

use crate::clock::SimClock;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sentinel instance id for calls that are not attributable to an instance.
const NO_INSTANCE: u32 = u32::MAX;

/// What the fault layer decided to do with a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Serve normally.
    Pass,
    /// Delay by the given duration, then serve.
    Delay(Duration),
    /// Fail with a 500 (models transient backend errors).
    ServerError,
    /// Fail with a 429 (rate limit exceeded).
    RateLimited,
    /// Reset the connection without answering (RST / abrupt death).
    Reset,
}

/// Fault plan configuration.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Probability of a transient 500.
    pub error_prob: f64,
    /// Probability of an artificial delay.
    pub delay_prob: f64,
    /// Delay bounds.
    pub delay_min: Duration,
    /// Upper delay bound.
    pub delay_max: Duration,
    /// Probability of a transient connection reset (recoverable).
    pub reset_prob: f64,
    /// Probability that a request *kills* its instance: this and all later
    /// requests to the same instance reset (permanent, unrecoverable).
    pub death_prob: f64,
    /// Probability of a spurious 429 independent of the budget.
    pub rate_limit_prob: f64,
    /// Requests allowed per instance per virtual epoch before 429s
    /// (0 = unlimited).
    pub per_epoch_budget: u32,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            error_prob: 0.0,
            delay_prob: 0.0,
            delay_min: Duration::from_millis(1),
            delay_max: Duration::from_millis(20),
            reset_prob: 0.0,
            death_prob: 0.0,
            rate_limit_prob: 0.0,
            per_epoch_budget: 0,
        }
    }
}

impl FaultPlan {
    /// A mildly hostile network: 2% errors, 10% delays, 1% resets, 1%
    /// spurious rate limits. Every fault here is *recoverable*, so a
    /// retrying crawler recovers the ground truth exactly.
    pub fn flaky() -> Self {
        Self {
            error_prob: 0.02,
            delay_prob: 0.10,
            reset_prob: 0.01,
            rate_limit_prob: 0.01,
            ..Self::default()
        }
    }

    /// A genuinely hostile network: heavy errors and resets, tight budgets,
    /// and permanent instance death. Full recovery is impossible by
    /// construction — this plan exercises graceful degradation and the
    /// coverage report, not bit-identical reconstruction.
    pub fn harsh() -> Self {
        Self {
            error_prob: 0.10,
            delay_prob: 0.10,
            reset_prob: 0.05,
            death_prob: 0.0005,
            rate_limit_prob: 0.03,
            per_epoch_budget: 64,
            ..Self::default()
        }
    }

    /// Does this plan inject any fault at all?
    pub fn is_quiet(&self) -> bool {
        self.error_prob == 0.0
            && self.delay_prob == 0.0
            && self.reset_prob == 0.0
            && self.death_prob == 0.0
            && self.rate_limit_prob == 0.0
            && self.per_epoch_budget == 0
    }
}

/// Stateful injector: deterministic decisions derived from a seed and a
/// request counter (no global RNG locking on the hot path).
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
    counter: AtomicU64,
    /// Virtual clock driving per-epoch budget resets. Without one, budgets
    /// never reset (epoch is pinned to 0).
    clock: Option<SimClock>,
    /// Instances that drew permanent death; all their requests reset.
    dead: Mutex<HashSet<u32>>,
    /// Per-instance (epoch, used) budget accounting.
    budgets: Mutex<HashMap<u32, (u32, u32)>>,
}

/// Serialized mutable state of a [`FaultInjector`] — everything its
/// decisions depend on besides the immutable `(plan, seed)` pair. Part
/// of crawl checkpoints: resuming a fault-injected crawl on a fresh
/// executor must continue the *same* fault transcript, or harsh plans
/// (permanent death, budgets) would diverge from the uninterrupted run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectorState {
    /// Decision counter (the whole RNG state).
    pub counter: u64,
    /// Instances that drew permanent death, ascending.
    pub dead: Vec<u32>,
    /// Per-instance `(epoch, used)` budget windows.
    pub budgets: BTreeMap<u32, (u32, u32)>,
}

fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultInjector {
    /// New injector.
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        Self {
            plan,
            seed,
            counter: AtomicU64::new(0),
            clock: None,
            dead: Mutex::new(HashSet::new()),
            budgets: Mutex::new(HashMap::new()),
        }
    }

    /// Attach the virtual clock whose epoch transitions reset the
    /// per-instance request budgets.
    pub fn with_clock(mut self, clock: SimClock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// The configured plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide the fate of the next request, unattributed to an instance
    /// (death is never drawn — there is nothing to kill).
    pub fn decide(&self) -> FaultDecision {
        self.decide_for(NO_INSTANCE)
    }

    /// Decide the fate of the next request against `instance`.
    pub fn decide_for(&self, instance: u32) -> FaultDecision {
        if instance != NO_INSTANCE && self.dead.lock().contains(&instance) {
            return FaultDecision::Reset;
        }
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        let h = mix(self.seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let u = (h >> 11) as f64 / (1u64 << 53) as f64; // uniform [0,1)
        let mut threshold = 0.0;

        // Death first: permanent, so it must not be shadowed by the
        // transient faults when probabilities overlap.
        if instance != NO_INSTANCE {
            threshold += self.plan.death_prob;
            if u < threshold {
                self.dead.lock().insert(instance);
                return FaultDecision::Reset;
            }
        }
        threshold += self.plan.reset_prob;
        if u < threshold {
            return FaultDecision::Reset;
        }
        threshold += self.plan.error_prob;
        if u < threshold {
            return FaultDecision::ServerError;
        }
        threshold += self.plan.rate_limit_prob;
        if u < threshold {
            return FaultDecision::RateLimited;
        }
        threshold += self.plan.delay_prob;
        if u < threshold {
            let span = self
                .plan
                .delay_max
                .saturating_sub(self.plan.delay_min)
                .as_millis() as u64;
            let extra = if span == 0 { 0 } else { mix(h) % span };
            return FaultDecision::Delay(self.plan.delay_min + Duration::from_millis(extra));
        }
        FaultDecision::Pass
    }

    /// Has `instance` drawn permanent death?
    pub fn is_dead(&self, instance: u32) -> bool {
        self.dead.lock().contains(&instance)
    }

    /// Number of instances that have died so far.
    pub fn death_count(&self) -> usize {
        self.dead.lock().len()
    }

    /// Capture the injector's mutable state for a checkpoint. The counter
    /// *is* the RNG — decisions are `mix(seed, counter)` — so a restored
    /// injector continues the exact fault transcript the dead one would
    /// have produced; the dead set and budget windows ride along so
    /// permanent deaths stay permanent and allowances don't refill.
    /// (Hash containers are emitted sorted: deterministic bytes.)
    pub fn export_state(&self) -> InjectorState {
        let mut dead: Vec<u32> = self.dead.lock().iter().copied().collect();
        dead.sort_unstable();
        InjectorState {
            counter: self.counter.load(Ordering::Relaxed),
            dead,
            budgets: self.budgets.lock().iter().map(|(&k, &v)| (k, v)).collect(),
        }
    }

    /// Load a captured [`InjectorState`] into this (fresh) injector,
    /// continuing the decision stream where the snapshot left off.
    pub fn restore_state(&self, state: &InjectorState) {
        self.counter.store(state.counter, Ordering::Relaxed);
        *self.dead.lock() = state.dead.iter().copied().collect();
        *self.budgets.lock() = state.budgets.iter().map(|(&k, &v)| (k, v)).collect();
    }

    /// Enforce the per-epoch request budget for `instance`. Returns `false`
    /// when the request should be rejected with 429. A budget of 0 means
    /// unlimited. The allowance resets when the attached [`SimClock`]
    /// advances to a new epoch — virtual time, never wall time.
    pub fn consume_budget(&self, instance: u32) -> bool {
        let budget = self.plan.per_epoch_budget;
        if budget == 0 {
            return true;
        }
        let epoch = self.clock.as_ref().map(|c| c.now().0).unwrap_or(0);
        let mut map = self.budgets.lock();
        let entry = map.entry(instance).or_insert((epoch, 0));
        if entry.0 != epoch {
            *entry = (epoch, 0);
        }
        entry.1 += 1;
        entry.1 <= budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_model::time::Epoch;

    #[test]
    fn default_plan_always_passes() {
        let inj = FaultInjector::new(FaultPlan::default(), 1);
        for _ in 0..1000 {
            assert_eq!(inj.decide(), FaultDecision::Pass);
        }
        assert!(FaultPlan::default().is_quiet());
        assert!(!FaultPlan::flaky().is_quiet());
    }

    #[test]
    fn error_rate_respected() {
        let plan = FaultPlan {
            error_prob: 0.3,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan, 42);
        let errs = (0..10_000)
            .filter(|_| inj.decide() == FaultDecision::ServerError)
            .count();
        let rate = errs as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "error rate {rate}");
    }

    #[test]
    fn delays_within_bounds() {
        let plan = FaultPlan {
            delay_prob: 1.0,
            delay_min: Duration::from_millis(5),
            delay_max: Duration::from_millis(10),
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan, 7);
        for _ in 0..100 {
            match inj.decide() {
                FaultDecision::Delay(d) => {
                    assert!(d >= Duration::from_millis(5) && d <= Duration::from_millis(10));
                }
                other => panic!("expected delay, got {other:?}"),
            }
        }
    }

    #[test]
    fn deterministic_sequence() {
        let mk = || FaultInjector::new(FaultPlan::flaky(), 99);
        let a: Vec<FaultDecision> = (0..50).map(|_| mk().decide()).collect();
        // same seed, same first decision each time
        assert!(a.windows(2).all(|w| w[0] == w[1]));
        let i1 = mk();
        let i2 = mk();
        let s1: Vec<FaultDecision> = (0..50).map(|_| i1.decide()).collect();
        let s2: Vec<FaultDecision> = (0..50).map(|_| i2.decide()).collect();
        assert_eq!(s1, s2);
    }

    #[test]
    fn resets_drawn_at_configured_rate() {
        let plan = FaultPlan {
            reset_prob: 0.2,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan, 5);
        let resets = (0..10_000)
            .filter(|_| inj.decide() == FaultDecision::Reset)
            .count();
        let rate = resets as f64 / 10_000.0;
        assert!((rate - 0.2).abs() < 0.03, "reset rate {rate}");
    }

    #[test]
    fn death_is_permanent_and_per_instance() {
        let plan = FaultPlan {
            death_prob: 0.05,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan, 11);
        // Hammer instance 3 until it dies.
        let mut died_at = None;
        for i in 0..10_000 {
            if inj.decide_for(3) == FaultDecision::Reset {
                died_at = Some(i);
                break;
            }
        }
        assert!(died_at.is_some(), "death_prob=0.05 never fired in 10k");
        assert!(inj.is_dead(3));
        assert_eq!(inj.death_count(), 1);
        // Every subsequent request to 3 resets, forever.
        for _ in 0..100 {
            assert_eq!(inj.decide_for(3), FaultDecision::Reset);
        }
        // Other instances are unaffected until they draw their own death.
        assert!(!inj.is_dead(4));
        // Unattributed decisions never draw death.
        let inj2 = FaultInjector::new(
            FaultPlan {
                death_prob: 1.0,
                ..FaultPlan::default()
            },
            1,
        );
        for _ in 0..100 {
            assert_eq!(inj2.decide(), FaultDecision::Pass);
        }
        assert_eq!(inj2.death_count(), 0);
    }

    #[test]
    fn spurious_rate_limits_drawn() {
        let plan = FaultPlan {
            rate_limit_prob: 1.0,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan, 2);
        assert_eq!(inj.decide(), FaultDecision::RateLimited);
    }

    /// Satellite 1: the per-epoch budget is driven by SimClock epoch
    /// transitions — advancing *virtual* time resets the allowance; more
    /// requests within the same epoch never do.
    #[test]
    fn budget_resets_on_virtual_epoch_transition() {
        let clock = SimClock::new();
        let plan = FaultPlan {
            per_epoch_budget: 3,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan, 1).with_clock(clock.clone());
        // Three allowed, the fourth (and onward) rejected — same epoch.
        for _ in 0..3 {
            assert!(inj.consume_budget(0));
        }
        assert!(!inj.consume_budget(0));
        assert!(!inj.consume_budget(0));
        // A *different* instance has its own allowance.
        assert!(inj.consume_budget(1));
        // Advance the virtual clock: instance 0's allowance is restored.
        clock.advance(1);
        for _ in 0..3 {
            assert!(inj.consume_budget(0));
        }
        assert!(!inj.consume_budget(0));
        // Jumping backwards (tests rewind clocks) also re-keys the window.
        clock.set(Epoch(0));
        assert!(inj.consume_budget(0));
    }

    #[test]
    fn budget_without_clock_never_resets() {
        let plan = FaultPlan {
            per_epoch_budget: 2,
            ..FaultPlan::default()
        };
        let inj = FaultInjector::new(plan, 1); // no clock attached
        assert!(inj.consume_budget(7));
        assert!(inj.consume_budget(7));
        assert!(!inj.consume_budget(7));
    }

    /// Checkpoint/resume pin: a restored injector continues the exact
    /// decision stream — counter, permanent deaths, and *in-window budget
    /// usage* all survive; nothing resets just because the process did.
    #[test]
    fn export_restore_continues_the_stream() {
        let clock = SimClock::new();
        let plan = FaultPlan {
            per_epoch_budget: 5,
            ..FaultPlan::harsh()
        };
        let a = FaultInjector::new(plan.clone(), 33).with_clock(clock.clone());
        // burn some decisions, kill an instance, use some budget
        for i in 0..500 {
            let _ = a.decide_for(i % 7);
        }
        for _ in 0..3 {
            let _ = a.consume_budget(2);
        }
        let state = a.export_state();
        // serde round trip (the exact path the checkpoint frame takes)
        let v = serde::Serialize::to_json_value(&state);
        let state: InjectorState = serde::Deserialize::from_json_value(&v).unwrap();

        let b = FaultInjector::new(plan, 33).with_clock(clock.clone());
        b.restore_state(&state);
        assert_eq!(b.export_state(), state);
        // identical future: decisions, death persistence, budget windows
        for i in 0..500 {
            assert_eq!(a.decide_for(i % 7), b.decide_for(i % 7), "decision {i}");
        }
        // remaining allowance matches (5 budget, 3 used): 2 more pass
        assert_eq!(a.consume_budget(2), b.consume_budget(2));
        assert_eq!(a.consume_budget(2), b.consume_budget(2));
        assert!(!b.consume_budget(2), "restored budget window must not refill");
        // a fresh injector WITHOUT restore diverges (proves state matters)
        let fresh = FaultInjector::new(FaultPlan::harsh(), 33);
        assert_eq!(fresh.export_state().counter, 0);
    }

    #[test]
    fn zero_budget_is_unlimited() {
        let inj = FaultInjector::new(FaultPlan::default(), 1);
        for _ in 0..1000 {
            assert!(inj.consume_budget(0));
        }
    }
}
