//! Launching the simulated fediverse on a real loopback socket.
//!
//! All instances sit behind one listener; the `Host` header picks the
//! instance (exactly how a multi-tenant front like Cloudflare — which the
//! paper finds fronting 5.4% of instances — would terminate them).

use crate::api;
use crate::fault::FaultPlan;
use crate::state::SimState;
use fediscope_httpwire::{Server, ServerHandle};
use fediscope_model::world::World;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

/// A running simulated fediverse.
pub struct SimNetHandle {
    /// Shared state (clock control, inbox inspection).
    pub state: Arc<SimState>,
    server: ServerHandle,
}

impl SimNetHandle {
    /// Address of the shared listener.
    pub fn addr(&self) -> SocketAddr {
        self.server.addr()
    }

    /// Stop the listener.
    pub async fn shutdown(self) {
        self.server.shutdown().await;
    }
}

/// Launch the fediverse over `world` on an ephemeral loopback port.
pub async fn launch(
    world: Arc<World>,
    plan: FaultPlan,
    seed: u64,
) -> std::io::Result<SimNetHandle> {
    let state = SimState::new(world, plan, seed);
    let handler_state = state.clone();
    let server = Server::new(move |req| api::handle(handler_state.clone(), req))
        .with_read_timeout(Duration::from_secs(5))
        .bind("127.0.0.1:0")
        .await?;
    Ok(SimNetHandle { state, server })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_httpwire::Client;
    use fediscope_worldgen::{Generator, WorldConfig};

    async fn boot() -> SimNetHandle {
        let mut cfg = WorldConfig::tiny(55);
        cfg.n_instances = 8;
        cfg.n_users = 160;
        let mut world = Generator::generate_world(cfg);
        for s in &mut world.schedules {
            *s = fediscope_model::schedule::AvailabilitySchedule::always_up();
        }
        launch(Arc::new(world), FaultPlan::default(), 3)
            .await
            .unwrap()
    }

    #[tokio::test]
    async fn serves_instance_api_over_tcp() {
        let net = boot().await;
        let client = Client::default();
        let domain = net.state.world.instances[0].domain.clone();
        let resp = client
            .get(net.addr(), &domain, "/api/v1/instance")
            .await
            .unwrap();
        assert!(resp.status.is_success());
        let v: serde_json::Value = serde_json::from_str(&resp.text()).unwrap();
        assert_eq!(v["uri"].as_str().unwrap(), domain);
        net.shutdown().await;
    }

    #[tokio::test]
    async fn virtual_hosts_are_distinct() {
        let net = boot().await;
        let client = Client::default();
        let d0 = net.state.world.instances[0].domain.clone();
        let d1 = net.state.world.instances[1].domain.clone();
        let r0 = client.get(net.addr(), &d0, "/api/v1/instance").await.unwrap();
        let r1 = client.get(net.addr(), &d1, "/api/v1/instance").await.unwrap();
        let v0: serde_json::Value = serde_json::from_str(&r0.text()).unwrap();
        let v1: serde_json::Value = serde_json::from_str(&r1.text()).unwrap();
        assert_ne!(v0["uri"], v1["uri"]);
        net.shutdown().await;
    }

    #[tokio::test]
    async fn outage_visible_over_the_wire() {
        let mut cfg = WorldConfig::tiny(56);
        cfg.n_instances = 4;
        cfg.n_users = 40;
        let mut world = Generator::generate_world(cfg);
        for s in &mut world.schedules {
            *s = fediscope_model::schedule::AvailabilitySchedule::always_up();
        }
        world.schedules[0].add_outage(
            fediscope_model::time::Epoch(5),
            fediscope_model::time::Epoch(10),
            fediscope_model::schedule::OutageCause::Organic,
        );
        let domain = world.instances[0].domain.clone();
        let net = launch(Arc::new(world), FaultPlan::default(), 1).await.unwrap();
        let client = Client::default();

        let up = client.get(net.addr(), &domain, "/api/v1/instance").await.unwrap();
        assert!(up.status.is_success());
        net.state.clock.set(fediscope_model::time::Epoch(5));
        let down = client.get(net.addr(), &domain, "/api/v1/instance").await.unwrap();
        assert_eq!(down.status.0, 503);
        net.state.clock.set(fediscope_model::time::Epoch(10));
        let back = client.get(net.addr(), &domain, "/api/v1/instance").await.unwrap();
        assert!(back.status.is_success());
        net.shutdown().await;
    }

    #[tokio::test]
    async fn fault_injection_produces_500s() {
        let mut cfg = WorldConfig::tiny(57);
        cfg.n_instances = 4;
        cfg.n_users = 40;
        let mut world = Generator::generate_world(cfg);
        for s in &mut world.schedules {
            *s = fediscope_model::schedule::AvailabilitySchedule::always_up();
        }
        let domain = world.instances[0].domain.clone();
        let plan = FaultPlan {
            error_prob: 0.5,
            ..FaultPlan::default()
        };
        let net = launch(Arc::new(world), plan, 9).await.unwrap();
        let client = Client::default();
        let mut errors = 0;
        for _ in 0..40 {
            let resp = client.get(net.addr(), &domain, "/api/v1/instance").await.unwrap();
            if resp.status.0 == 500 {
                errors += 1;
            }
        }
        assert!(errors > 5, "only {errors} injected errors seen");
        net.shutdown().await;
    }
}
