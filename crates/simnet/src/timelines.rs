//! Virtual timelines: deterministic, pageable views over an instance's
//! public toots without materialising millions of toot records.
//!
//! Toots are enumerated user-major: all public toots of the lowest local
//! user id first. Toot ids are dense and descending-from-`total` so the
//! standard Mastodon `max_id` pagination works: a page returns ids strictly
//! below `max_id`, newest (highest) first.

use fediscope_model::ids::InstanceId;
use fediscope_model::world::World;

/// Pageable index over one instance's public toots.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineIndex {
    /// Local users with at least one public toot, ascending by id.
    pub user_ids: Vec<u32>,
    /// Cumulative public-toot counts aligned with `user_ids`
    /// (`cum[i]` = total public toots of users `0..=i`).
    cum: Vec<u64>,
    /// Total public toots on this instance.
    pub total_public: u64,
}

/// Public toots of one user: the ground-truth count scaled by the
/// instance's private fraction.
pub fn public_toots_of(world: &World, user_idx: usize) -> u64 {
    let u = &world.users[user_idx];
    let inst = &world.instances[u.instance.index()];
    (u.toot_count as f64 * (1.0 - inst.private_toot_frac)).floor() as u64
}

impl TimelineIndex {
    /// Build the index for `instance`.
    pub fn build(world: &World, instance: InstanceId) -> Self {
        let mut user_ids = Vec::new();
        let mut cum = Vec::new();
        let mut total = 0u64;
        for u in &world.users {
            if u.instance != instance {
                continue;
            }
            let public = public_toots_of(world, u.id.index());
            if public > 0 {
                total += public;
                user_ids.push(u.id.0);
                cum.push(total);
            }
        }
        Self {
            user_ids,
            cum,
            total_public: total,
        }
    }

    /// Map a 0-based enumeration index to `(user, per-user toot number)`.
    pub fn locate(&self, idx: u64) -> Option<(u32, u64)> {
        if idx >= self.total_public {
            return None;
        }
        let pos = self.cum.partition_point(|&c| c <= idx);
        let prev = if pos == 0 { 0 } else { self.cum[pos - 1] };
        Some((self.user_ids[pos], idx - prev))
    }

    /// The page of toot ids strictly below `max_id`, descending, at most
    /// `limit` entries. Ids are 1-based (`1..=total_public`);
    /// pass `u64::MAX` for the first page.
    pub fn page(&self, max_id: u64, limit: usize) -> Vec<u64> {
        let start = max_id.min(self.total_public + 1);
        (1..start)
            .rev()
            .take(limit)
            .collect()
    }

    /// The author of toot `id` (1-based id).
    pub fn author_of(&self, id: u64) -> Option<u32> {
        if id == 0 || id > self.total_public {
            return None;
        }
        // id N is enumeration index total - N (id 'total' = index 0 = oldest
        // user's… ordering direction is arbitrary but fixed).
        self.locate(self.total_public - id).map(|(u, _)| u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_worldgen::{Generator, WorldConfig};

    fn world() -> World {
        let mut cfg = WorldConfig::tiny(11);
        cfg.n_instances = 10;
        cfg.n_users = 300;
        Generator::generate_world(cfg)
    }

    #[test]
    fn totals_match_per_user_publics() {
        let w = world();
        for inst in &w.instances {
            let idx = TimelineIndex::build(&w, inst.id);
            let expect: u64 = w
                .users
                .iter()
                .filter(|u| u.instance == inst.id)
                .map(|u| public_toots_of(&w, u.id.index()))
                .sum();
            assert_eq!(idx.total_public, expect, "instance {}", inst.id);
        }
    }

    #[test]
    fn locate_covers_every_index_exactly_once() {
        let w = world();
        let inst = w.instances.iter().find(|i| i.user_count > 3).unwrap();
        let idx = TimelineIndex::build(&w, inst.id);
        let mut per_user: std::collections::HashMap<u32, u64> = Default::default();
        for i in 0..idx.total_public {
            let (user, k) = idx.locate(i).unwrap();
            let c = per_user.entry(user).or_insert(0);
            assert_eq!(*c, k, "per-user toot numbers must be sequential");
            *c += 1;
        }
        for (user, count) in per_user {
            assert_eq!(count, public_toots_of(&w, user as usize));
        }
        assert_eq!(idx.locate(idx.total_public), None);
    }

    #[test]
    fn paging_walks_all_ids_without_overlap() {
        let w = world();
        let inst = w.instances.iter().find(|i| i.user_count > 3).unwrap();
        let idx = TimelineIndex::build(&w, inst.id);
        let mut seen = Vec::new();
        let mut max_id = u64::MAX;
        loop {
            let page = idx.page(max_id, 7);
            if page.is_empty() {
                break;
            }
            // descending within the page
            assert!(page.windows(2).all(|w| w[0] > w[1]));
            max_id = *page.last().unwrap();
            seen.extend(page);
        }
        assert_eq!(seen.len() as u64, idx.total_public);
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seen.len(), "duplicate ids served");
    }

    #[test]
    fn author_of_bounds() {
        let w = world();
        let inst = w.instances.iter().find(|i| i.user_count > 0).unwrap();
        let idx = TimelineIndex::build(&w, inst.id);
        assert_eq!(idx.author_of(0), None);
        assert_eq!(idx.author_of(idx.total_public + 1), None);
        if idx.total_public > 0 {
            assert!(idx.author_of(1).is_some());
            assert!(idx.author_of(idx.total_public).is_some());
        }
    }

    #[test]
    fn empty_instance_has_empty_timeline() {
        let w = world();
        if let Some(inst) = w.instances.iter().find(|i| i.user_count == 0) {
            let idx = TimelineIndex::build(&w, inst.id);
            assert_eq!(idx.total_public, 0);
            assert!(idx.page(u64::MAX, 40).is_empty());
        }
    }
}
