//! The simulation clock.
//!
//! The study spans 15 months of 5-minute epochs; live crawling obviously
//! cannot wait that long, so the simulated fediverse runs on a virtual
//! [`Epoch`] counter that tests and drivers advance manually (or via an
//! optional real-time ticker that compresses epochs to milliseconds).

use fediscope_model::time::{Epoch, WINDOW_EPOCHS};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;
#[cfg(feature = "net")]
use std::time::Duration;

/// Shared, thread-safe virtual clock.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    epoch: Arc<AtomicU32>,
}

impl SimClock {
    /// A clock starting at epoch 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// A clock starting at a specific epoch.
    pub fn starting_at(e: Epoch) -> Self {
        let c = Self::new();
        c.set(e);
        c
    }

    /// Current virtual time.
    pub fn now(&self) -> Epoch {
        Epoch(self.epoch.load(Ordering::Acquire))
    }

    /// Jump to an absolute epoch.
    pub fn set(&self, e: Epoch) {
        self.epoch.store(e.0.min(WINDOW_EPOCHS), Ordering::Release);
    }

    /// Advance by `n` epochs (clamped to the window end); returns the new time.
    pub fn advance(&self, n: u32) -> Epoch {
        let mut cur = self.epoch.load(Ordering::Acquire);
        loop {
            let next = cur.saturating_add(n).min(WINDOW_EPOCHS);
            match self.epoch.compare_exchange_weak(
                cur,
                next,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Epoch(next),
                Err(actual) => cur = actual,
            }
        }
    }

    /// Spawn a background ticker advancing one epoch every `tick` until
    /// `until` (or the window end). Returns the task handle; abort it to
    /// stop early.
    #[cfg(feature = "net")]
    pub fn run_ticker(&self, tick: Duration, until: Epoch) -> tokio::task::JoinHandle<()> {
        let clock = self.clone();
        tokio::spawn(async move {
            let mut interval = tokio::time::interval(tick);
            interval.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Delay);
            loop {
                interval.tick().await;
                let now = clock.advance(1);
                if now >= until || now.0 >= WINDOW_EPOCHS {
                    break;
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().now(), Epoch(0));
    }

    #[test]
    fn set_and_advance() {
        let c = SimClock::new();
        c.set(Epoch(100));
        assert_eq!(c.now(), Epoch(100));
        assert_eq!(c.advance(5), Epoch(105));
        assert_eq!(c.now(), Epoch(105));
    }

    #[test]
    fn clamps_to_window() {
        let c = SimClock::starting_at(Epoch(WINDOW_EPOCHS - 1));
        assert_eq!(c.advance(1000), Epoch(WINDOW_EPOCHS));
        c.set(Epoch(u32::MAX));
        assert_eq!(c.now(), Epoch(WINDOW_EPOCHS));
    }

    #[test]
    fn clones_share_state() {
        let a = SimClock::new();
        let b = a.clone();
        a.advance(3);
        assert_eq!(b.now(), Epoch(3));
    }

    #[cfg(feature = "net")]
    #[tokio::test]
    async fn ticker_advances_and_stops() {
        let c = SimClock::new();
        let handle = c.run_ticker(Duration::from_millis(1), Epoch(10));
        handle.await.unwrap();
        assert_eq!(c.now(), Epoch(10));
    }
}
