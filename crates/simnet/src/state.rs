//! Shared state of the simulated fediverse.

use crate::clock::SimClock;
use crate::fault::{FaultInjector, FaultPlan};
use crate::timelines::TimelineIndex;
use fediscope_activitypub::Activity;
use fediscope_model::ids::InstanceId;
use fediscope_model::world::World;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::sync::OnceLock;

/// Everything the instance-API handler needs, shared across connections.
pub struct SimState {
    /// Ground truth.
    pub world: Arc<World>,
    /// Virtual clock.
    pub clock: SimClock,
    /// Fault injection.
    pub faults: FaultInjector,
    domains: HashMap<String, InstanceId>,
    timelines: Vec<OnceLock<TimelineIndex>>,
    followers_of: OnceLock<Vec<Vec<u32>>>,
    subscriptions_out: OnceLock<Vec<u32>>,
    remote_toots: OnceLock<Vec<u64>>,
    inboxes: Vec<Mutex<Vec<Activity>>>,
}

impl SimState {
    /// Build state over a world.
    pub fn new(world: Arc<World>, plan: FaultPlan, seed: u64) -> Arc<Self> {
        let domains = world
            .instances
            .iter()
            .map(|i| (i.domain.clone(), i.id))
            .collect();
        let n = world.instances.len();
        // The clock is built first so the injector's per-epoch budget
        // windows track the same virtual time the availability checks use.
        let clock = SimClock::new();
        Arc::new(Self {
            faults: FaultInjector::new(plan, seed).with_clock(clock.clone()),
            clock,
            domains,
            timelines: (0..n).map(|_| OnceLock::new()).collect(),
            followers_of: OnceLock::new(),
            subscriptions_out: OnceLock::new(),
            remote_toots: OnceLock::new(),
            inboxes: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            world,
        })
    }

    /// Resolve a `Host` header to an instance.
    pub fn instance_by_domain(&self, domain: &str) -> Option<InstanceId> {
        self.domains.get(domain).copied()
    }

    /// Is the instance up at the current virtual time?
    pub fn is_up(&self, id: InstanceId) -> bool {
        self.world.schedules[id.index()].is_up(self.clock.now())
    }

    /// Lazily built timeline index for an instance.
    pub fn timeline(&self, id: InstanceId) -> &TimelineIndex {
        self.timelines[id.index()]
            .get_or_init(|| TimelineIndex::build(&self.world, id))
    }

    /// Lazily built reverse follower index: `followers_of()[u]` lists the
    /// user ids following `u`.
    pub fn followers_of(&self) -> &Vec<Vec<u32>> {
        self.followers_of.get_or_init(|| {
            let mut rev = vec![Vec::new(); self.world.users.len()];
            for &(a, b) in &self.world.follows {
                rev[b.index()].push(a.0);
            }
            for list in &mut rev {
                list.sort_unstable();
            }
            rev
        })
    }

    /// Outbound federated-subscription count per instance (the number the
    /// instance API reports).
    pub fn subscription_counts(&self) -> &Vec<u32> {
        self.subscriptions_out.get_or_init(|| {
            let mut out = vec![0u32; self.world.instances.len()];
            for (a, _b) in self.world.federation_edges() {
                out[a.index()] += 1;
            }
            out
        })
    }

    /// Per-instance *remote* toot volume: the public toots authored by
    /// remote accounts that local users follow — the federated-timeline
    /// replica pool of §5.2 (Fig. 14).
    pub fn remote_toot_counts(&self) -> &Vec<u64> {
        self.remote_toots.get_or_init(|| {
            // (subscribing instance, remote followee), deduplicated: a toot
            // replicated once is visible once however many locals follow.
            let mut pairs: Vec<(u32, u32)> = self
                .world
                .follows
                .iter()
                .filter_map(|&(a, b)| {
                    let ia = self.world.instance_of(a);
                    let ib = self.world.instance_of(b);
                    (ia != ib).then_some((ia.0, b.0))
                })
                .collect();
            pairs.sort_unstable();
            pairs.dedup();
            let mut out = vec![0u64; self.world.instances.len()];
            for (inst, followee) in pairs {
                out[inst as usize] +=
                    crate::timelines::public_toots_of(&self.world, followee as usize);
            }
            out
        })
    }

    /// Enforce the per-epoch request budget for an instance. Returns `false`
    /// when the request should be rejected with 429. Budget accounting
    /// lives in the [`FaultInjector`], keyed by the shared virtual clock.
    pub fn consume_budget(&self, id: InstanceId) -> bool {
        self.faults.consume_budget(id.0)
    }

    /// Deliver an activity into an instance's inbox (in-process transport).
    pub fn deliver(&self, to: InstanceId, act: Activity) {
        self.inboxes[to.index()].lock().push(act);
    }

    /// Drain an instance's inbox (test/driver API).
    pub fn drain_inbox(&self, id: InstanceId) -> Vec<Activity> {
        std::mem::take(&mut *self.inboxes[id.index()].lock())
    }

    /// Number of queued inbox activities.
    pub fn inbox_len(&self, id: InstanceId) -> usize {
        self.inboxes[id.index()].lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_model::time::Epoch;
    use fediscope_worldgen::{Generator, WorldConfig};

    fn state() -> Arc<SimState> {
        let mut cfg = WorldConfig::tiny(21);
        cfg.n_instances = 12;
        cfg.n_users = 240;
        let world = Arc::new(Generator::generate_world(cfg));
        SimState::new(world, FaultPlan::default(), 1)
    }

    #[test]
    fn domain_resolution() {
        let s = state();
        for inst in &s.world.instances {
            assert_eq!(s.instance_by_domain(&inst.domain), Some(inst.id));
        }
        assert_eq!(s.instance_by_domain("nonexistent.example"), None);
    }

    #[test]
    fn is_up_tracks_clock() {
        let s = state();
        // find an instance with an outage
        let (idx, outage) = s
            .world
            .schedules
            .iter()
            .enumerate()
            .find_map(|(i, sched)| sched.outages().first().map(|o| (i, *o)))
            .expect("some outage exists");
        let id = InstanceId(idx as u32);
        s.clock.set(outage.start);
        assert!(!s.is_up(id));
        s.clock.set(Epoch(outage.end.0));
        // may still be down if next outage is adjacent; consult ground truth
        assert_eq!(s.is_up(id), s.world.schedules[idx].is_up(outage.end));
    }

    #[test]
    fn followers_index_matches_edges() {
        let s = state();
        let rev = s.followers_of();
        let total: usize = rev.iter().map(|v| v.len()).sum();
        assert_eq!(total, s.world.follows.len());
        for &(a, b) in s.world.follows.iter().take(50) {
            assert!(rev[b.index()].contains(&a.0));
        }
    }

    #[test]
    fn subscription_counts_match_federation_edges() {
        let s = state();
        let counts = s.subscription_counts();
        let total: u32 = counts.iter().sum();
        assert_eq!(total as usize, s.world.federation_edges().len());
    }

    #[test]
    fn inbox_delivery_and_drain() {
        let s = state();
        let id = InstanceId(0);
        assert_eq!(s.inbox_len(id), 0);
        s.deliver(
            id,
            Activity::Announce {
                id: "https://x/act/1".into(),
                actor: "https://x/users/u1".into(),
                object: "https://y/notes/9".into(),
            },
        );
        assert_eq!(s.inbox_len(id), 1);
        let drained = s.drain_inbox(id);
        assert_eq!(drained.len(), 1);
        assert_eq!(s.inbox_len(id), 0);
    }

    #[test]
    fn timeline_caching_is_stable() {
        let s = state();
        let id = s.world.instances.iter().find(|i| i.user_count > 0).unwrap().id;
        let a = s.timeline(id) as *const _;
        let b = s.timeline(id) as *const _;
        assert_eq!(a, b, "timeline index must be built once");
    }
}
