//! # fediscope-simnet
//!
//! The simulated fediverse: every generated instance served as a live HTTP
//! endpoint (Mastodon-compatible API + ActivityPub inbox) behind a single
//! loopback listener with `Host`-header virtual hosting.
//!
//! This is the stand-in for "the public fediverse of 2017–2018" that the
//! paper measured: the crawler and the monitoring service talk to it over
//! real sockets, exercising exactly the code paths a live deployment would
//! (timeouts, pagination, retries, failures).
//!
//! Components:
//! - [`clock::SimClock`]: virtual 5-minute-epoch time, manually advanced or
//!   driven by a compressing ticker,
//! - [`state::SimState`]: world + lazily built serving indexes,
//! - [`api`]: the HTTP API surface (§3's endpoints),
//! - [`timelines`]: deterministic pageable toot enumeration,
//! - [`fault`]: smoltcp-style fault injection (errors, delays, rate limits),
//! - [`fedsim`]: the deterministic federation delivery simulator (bounded
//!   inboxes, backpressure, redelivery, suspension, outage overlays),
//! - [`net`]: the loopback listener.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "net")]
pub mod api;
pub mod clock;
pub mod fault;
pub mod fedsim;
#[cfg(feature = "net")]
pub mod net;
pub mod state;
pub mod timelines;

pub use clock::SimClock;
pub use fault::{FaultDecision, FaultInjector, FaultPlan, InjectorState};
pub use fedsim::{DeliveryReport, FanoutArena, FedSim, FedSimConfig, OverlaySpec, SimRun};
#[cfg(feature = "net")]
pub use net::{launch, SimNetHandle};
pub use state::SimState;
pub use timelines::TimelineIndex;
