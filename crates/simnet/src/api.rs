//! The Mastodon-compatible HTTP API served by every simulated instance.
//!
//! Endpoints (the subset the study's measurement used, §3):
//! - `GET /api/v1/instance` — the metadata mnm.social polled every 5 min,
//! - `GET /api/v1/timelines/public?local=true&max_id=&limit=` — the paged
//!   timeline the toot crawler walks,
//! - `GET /users/:name/followers?page=` — the follower lists the graph
//!   scraper walks,
//! - `GET /users/:name` — ActivityPub actor document,
//! - `GET /.well-known/webfinger?resource=acct:…` — account resolution,
//! - `POST /users/:name/inbox` — ActivityPub delivery (Follow is answered
//!   with an in-process Accept back to the origin instance).
//!
//! Cross-cutting behaviour: unknown `Host` → 404; instance down at the
//! current virtual epoch → 503; fault injection may turn any request into a
//! delayed response or a transient 500; per-epoch rate limits yield 429;
//! instances that block crawling answer 403 on the timeline endpoint.
//!
//! Simplification (documented): the `local=false` federated view pages the
//! same local sequence; the *remote replica volume* that the real federated
//! timeline would add is exposed as `fediscope_remote_toots` in the instance
//! metadata (Fig. 14 consumes aggregate counts, not individual replicas).

use crate::fault::FaultDecision;
use crate::state::SimState;
use fediscope_activitypub::actor::{parse_actor_id, Actor};
use fediscope_activitypub::webfinger::{parse_resource, WebFingerDoc};
use fediscope_activitypub::Activity;
use fediscope_httpwire::{Method, Request, Response, StatusCode};
use fediscope_model::ids::InstanceId;
use serde_json::json;
use std::sync::Arc;

/// Default and maximum page sizes (Mastodon uses 20/40; we allow more for
/// faster tests).
const DEFAULT_LIMIT: usize = 40;
const MAX_LIMIT: usize = 200;
/// Follower-list page size (the HTML pages the paper scraped held 40).
const FOLLOWER_PAGE: usize = 40;

/// Handle one request against the simulated fediverse.
pub async fn handle(state: Arc<SimState>, req: Request) -> Response {
    // Virtual-host resolution.
    let Some(host) = req.host().map(str::to_string) else {
        return Response::status(StatusCode::BAD_REQUEST);
    };
    let Some(instance) = state.instance_by_domain(&host) else {
        return Response::status(StatusCode::NOT_FOUND);
    };

    // Fault injection runs *before* the availability check: the network
    // path (load balancer, rate limiter, dying box) fails you before the
    // application gets a say. A dead instance resets even while its
    // schedule says "up".
    match state.faults.decide_for(instance.0) {
        FaultDecision::Pass => {}
        FaultDecision::Delay(d) => tokio::time::sleep(d).await,
        FaultDecision::ServerError => {
            return Response::status(StatusCode::INTERNAL_SERVER_ERROR)
        }
        FaultDecision::RateLimited => return rate_limited(),
        FaultDecision::Reset => return Response::hangup(),
    }
    if !state.consume_budget(instance) {
        return rate_limited();
    }

    // Availability at virtual time.
    if !state.is_up(instance) {
        return Response::status(StatusCode::SERVICE_UNAVAILABLE);
    }

    route(state, instance, &host, req).await
}

/// A 429 carrying the `retry-after` hint real Mastodon rate limiters send.
fn rate_limited() -> Response {
    Response::status(StatusCode::TOO_MANY_REQUESTS).with_header("retry-after", "1")
}

async fn route(
    state: Arc<SimState>,
    instance: InstanceId,
    host: &str,
    req: Request,
) -> Response {
    let path = req.path.trim_end_matches('/');
    match (req.method, path) {
        (Method::Get, "/api/v1/instance") => instance_info(&state, instance, host),
        (Method::Get, "/api/v1/timelines/public") => timeline(&state, instance, &req),
        (Method::Get, "/.well-known/webfinger") => webfinger(&state, instance, host, &req),
        (Method::Get, p) => {
            let segs: Vec<&str> = p.split('/').filter(|s| !s.is_empty()).collect();
            match segs.as_slice() {
                ["users", name] => actor_doc(&state, instance, host, name),
                ["users", name, "followers"] => followers(&state, instance, host, name, &req),
                _ => Response::status(StatusCode::NOT_FOUND),
            }
        }
        (Method::Post, p) => {
            let segs: Vec<&str> = p.split('/').filter(|s| !s.is_empty()).collect();
            match segs.as_slice() {
                ["users", name, "inbox"] => inbox(&state, instance, name, &req),
                _ => Response::status(StatusCode::NOT_FOUND),
            }
        }
        _ => Response::status(StatusCode::NOT_FOUND),
    }
}

/// Resolve a local handle (`u<id>`) to a user index on this instance.
fn resolve_user(state: &SimState, instance: InstanceId, name: &str) -> Option<usize> {
    let idx: usize = name.strip_prefix('u')?.parse().ok()?;
    let user = state.world.users.get(idx)?;
    (user.instance == instance).then_some(idx)
}

fn instance_info(state: &SimState, instance: InstanceId, host: &str) -> Response {
    let inst = &state.world.instances[instance.index()];
    let subs = state.subscription_counts()[instance.index()];
    let remote = state.remote_toot_counts()[instance.index()];
    // expected weekly logins from member propensities
    let logins: f64 = state
        .world
        .users
        .iter()
        .filter(|u| u.instance == instance)
        .map(|u| u.weekly_login_prob as f64)
        .sum();
    let body = json!({
        "uri": host,
        "title": host,
        "version": inst.software.version_string(),
        "registrations": inst.is_open(),
        "stats": {
            "user_count": inst.user_count,
            "status_count": inst.toot_count,
            "domain_count": subs,
        },
        "logins_week": logins.round() as u64,
        "fediscope_remote_toots": remote,
        "fediscope_boosted_toots": inst.boosted_toots,
    });
    Response::json(body.to_string())
}

fn timeline(state: &SimState, instance: InstanceId, req: &Request) -> Response {
    let inst = &state.world.instances[instance.index()];
    if !inst.crawl_allowed {
        return Response::status(StatusCode::FORBIDDEN);
    }
    let limit = req
        .query_param("limit")
        .and_then(|l| l.parse::<usize>().ok())
        .unwrap_or(DEFAULT_LIMIT)
        .clamp(1, MAX_LIMIT);
    let max_id = req
        .query_param("max_id")
        .and_then(|m| m.parse::<u64>().ok())
        .unwrap_or(u64::MAX);
    let tl = state.timeline(instance);
    let toots: Vec<serde_json::Value> = tl
        .page(max_id, limit)
        .into_iter()
        .map(|id| {
            let author = tl.author_of(id).expect("page ids are valid");
            json!({
                "id": id.to_string(),
                "account": {
                    "username": format!("u{author}"),
                    "acct": format!("u{author}"), // local author: bare handle
                },
                "content": "<p>…</p>", // content withheld (ethics, §3)
                "favourites_count": 0,
                "reblog": null,
            })
        })
        .collect();
    Response::json(serde_json::Value::Array(toots).to_string())
}

fn webfinger(state: &SimState, instance: InstanceId, host: &str, req: &Request) -> Response {
    let Some(resource) = req.query_param("resource") else {
        return Response::status(StatusCode::BAD_REQUEST);
    };
    let Some((handle, domain)) = parse_resource(resource) else {
        return Response::status(StatusCode::BAD_REQUEST);
    };
    if domain != host || resolve_user(state, instance, &handle).is_none() {
        return Response::status(StatusCode::NOT_FOUND);
    }
    let doc = WebFingerDoc::for_account(&handle, host);
    Response::json(serde_json::to_string(&doc).expect("webfinger serialises"))
}

fn actor_doc(state: &SimState, instance: InstanceId, host: &str, name: &str) -> Response {
    if resolve_user(state, instance, name).is_none() {
        return Response::status(StatusCode::NOT_FOUND);
    }
    let actor = Actor::person(name, host);
    Response::json(serde_json::to_string(&actor).expect("actor serialises"))
}

fn followers(
    state: &SimState,
    instance: InstanceId,
    host: &str,
    name: &str,
    req: &Request,
) -> Response {
    let Some(user_idx) = resolve_user(state, instance, name) else {
        return Response::status(StatusCode::NOT_FOUND);
    };
    let page: usize = req
        .query_param("page")
        .and_then(|p| p.parse().ok())
        .unwrap_or(1)
        .max(1);
    let all = &state.followers_of()[user_idx];
    let start = (page - 1) * FOLLOWER_PAGE;
    let items: Vec<String> = all
        .iter()
        .skip(start)
        .take(FOLLOWER_PAGE)
        .map(|&f| {
            let finst = state.world.users[f as usize].instance;
            if finst == instance {
                format!("u{f}")
            } else {
                format!("u{f}@{}", state.world.instances[finst.index()].domain)
            }
        })
        .collect();
    let next = (start + FOLLOWER_PAGE < all.len()).then_some(page + 1);
    let body = json!({
        "partOf": format!("https://{host}/users/{name}/followers"),
        "totalItems": all.len(),
        "items": items,
        "next": next,
    });
    Response::json(body.to_string())
}

fn inbox(state: &SimState, instance: InstanceId, name: &str, req: &Request) -> Response {
    if resolve_user(state, instance, name).is_none() {
        return Response::status(StatusCode::NOT_FOUND);
    }
    let Ok(value) = serde_json::from_slice::<serde_json::Value>(&req.body) else {
        return Response::status(StatusCode::BAD_REQUEST);
    };
    let Ok(activity) = Activity::from_json(&value) else {
        return Response::status(StatusCode::BAD_REQUEST);
    };
    // Record receipt.
    state.deliver(instance, activity.clone());
    // Follow requests are auto-accepted back to the origin instance.
    if let Activity::Follow { id, actor, object } = &activity {
        if let Some((_, origin_domain)) = parse_actor_id(actor) {
            if let Some(origin) = state.instance_by_domain(&origin_domain) {
                state.deliver(
                    origin,
                    Activity::Accept {
                        id: format!("{object}#accept-{}", id.len()),
                        actor: object.clone(),
                        object: id.clone(),
                    },
                );
            }
        }
    }
    Response {
        status: StatusCode(202),
        headers: vec![("content-type".into(), "application/json".into())],
        body: bytes::Bytes::from_static(b"{}"),
        hangup: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultPlan;
    use fediscope_worldgen::{Generator, WorldConfig};
    use std::sync::Arc;

    fn state() -> Arc<SimState> {
        let mut cfg = WorldConfig::tiny(33);
        cfg.n_instances = 12;
        cfg.n_users = 300;
        // make everything reliably up for routing tests
        cfg.churn_frac = 0.0;
        let mut world = Generator::generate_world(cfg);
        for s in &mut world.schedules {
            *s = fediscope_model::schedule::AvailabilitySchedule::always_up();
        }
        SimState::new(Arc::new(world), FaultPlan::default(), 7)
    }

    fn get(state: &Arc<SimState>, host: &str, path: &str) -> Response {
        let rt = tokio::runtime::Builder::new_current_thread()
            .enable_time()
            .build()
            .unwrap();
        rt.block_on(handle(state.clone(), Request::get(host, path)))
    }

    #[test]
    fn unknown_host_404() {
        let s = state();
        let resp = get(&s, "nope.example", "/api/v1/instance");
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn instance_info_payload() {
        let s = state();
        let inst = &s.world.instances[0];
        let resp = get(&s, &inst.domain, "/api/v1/instance");
        assert_eq!(resp.status, StatusCode::OK);
        let v: serde_json::Value = serde_json::from_str(&resp.text()).unwrap();
        assert_eq!(v["uri"].as_str().unwrap(), inst.domain);
        assert_eq!(v["stats"]["user_count"].as_u64().unwrap(), inst.user_count as u64);
        assert_eq!(v["stats"]["status_count"].as_u64().unwrap(), inst.toot_count);
        assert_eq!(v["registrations"].as_bool().unwrap(), inst.is_open());
    }

    #[test]
    fn down_instance_returns_503() {
        let s = state();
        // inject an outage manually through a bespoke state
        let mut cfg = WorldConfig::tiny(34);
        cfg.n_instances = 4;
        cfg.n_users = 40;
        let mut world = Generator::generate_world(cfg);
        for sch in &mut world.schedules {
            *sch = fediscope_model::schedule::AvailabilitySchedule::always_up();
        }
        world.schedules[0].add_outage(
            fediscope_model::time::Epoch(0),
            fediscope_model::time::Epoch(10),
            fediscope_model::schedule::OutageCause::Organic,
        );
        let domain = world.instances[0].domain.clone();
        let s2 = SimState::new(Arc::new(world), FaultPlan::default(), 1);
        let resp = get(&s2, &domain, "/api/v1/instance");
        assert_eq!(resp.status, StatusCode::SERVICE_UNAVAILABLE);
        s2.clock.set(fediscope_model::time::Epoch(10));
        let resp = get(&s2, &domain, "/api/v1/instance");
        assert_eq!(resp.status, StatusCode::OK);
        drop(s);
    }

    #[test]
    fn timeline_pages_and_dedupes() {
        let s = state();
        let inst = s
            .world
            .instances
            .iter()
            .find(|i| i.crawl_allowed && s.timeline(i.id).total_public > 10)
            .expect("crawlable instance");
        let mut seen = std::collections::HashSet::new();
        let mut max_id = u64::MAX;
        loop {
            let path = if max_id == u64::MAX {
                "/api/v1/timelines/public?local=true&limit=7".to_string()
            } else {
                format!("/api/v1/timelines/public?local=true&limit=7&max_id={max_id}")
            };
            let resp = get(&s, &inst.domain, &path);
            assert_eq!(resp.status, StatusCode::OK);
            let toots: Vec<serde_json::Value> = serde_json::from_str(&resp.text()).unwrap();
            if toots.is_empty() {
                break;
            }
            for t in &toots {
                let id: u64 = t["id"].as_str().unwrap().parse().unwrap();
                assert!(seen.insert(id), "duplicate toot id {id}");
                max_id = id;
            }
        }
        assert_eq!(seen.len() as u64, s.timeline(inst.id).total_public);
    }

    #[test]
    fn blocked_instance_forbids_crawl() {
        let s = state();
        if let Some(inst) = s.world.instances.iter().find(|i| !i.crawl_allowed) {
            let resp = get(&s, &inst.domain, "/api/v1/timelines/public");
            assert_eq!(resp.status, StatusCode::FORBIDDEN);
            // but the instance API still answers
            let resp = get(&s, &inst.domain, "/api/v1/instance");
            assert_eq!(resp.status, StatusCode::OK);
        }
    }

    #[test]
    fn followers_paging_complete() {
        let s = state();
        let rev = s.followers_of();
        let (uidx, total) = rev
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| v.len())
            .map(|(i, v)| (i, v.len()))
            .unwrap();
        assert!(total > 0);
        let inst = s.world.users[uidx].instance;
        let domain = s.world.instances[inst.index()].domain.clone();
        let mut got = Vec::new();
        let mut page = 1usize;
        loop {
            let resp = get(&s, &domain, &format!("/users/u{uidx}/followers?page={page}"));
            assert_eq!(resp.status, StatusCode::OK);
            let v: serde_json::Value = serde_json::from_str(&resp.text()).unwrap();
            assert_eq!(v["totalItems"].as_u64().unwrap() as usize, total);
            for item in v["items"].as_array().unwrap() {
                got.push(item.as_str().unwrap().to_string());
            }
            match v["next"].as_u64() {
                Some(n) => page = n as usize,
                None => break,
            }
        }
        assert_eq!(got.len(), total);
    }

    #[test]
    fn webfinger_resolves_local_accounts() {
        let s = state();
        let u = &s.world.users[0];
        let domain = s.world.instances[u.instance.index()].domain.clone();
        let resp = get(
            &s,
            &domain,
            &format!("/.well-known/webfinger?resource=acct:u0@{domain}"),
        );
        assert_eq!(resp.status, StatusCode::OK);
        let doc: fediscope_activitypub::WebFingerDoc =
            serde_json::from_str(&resp.text()).unwrap();
        assert_eq!(doc.actor_url().unwrap(), format!("https://{domain}/users/u0"));
        // wrong domain → 404
        let other = s
            .world
            .instances
            .iter()
            .find(|i| i.id != u.instance)
            .unwrap();
        let resp = get(
            &s,
            &other.domain,
            &format!("/.well-known/webfinger?resource=acct:u0@{domain}"),
        );
        assert_eq!(resp.status, StatusCode::NOT_FOUND);
    }

    #[test]
    fn follow_inbox_round_trip() {
        let s = state();
        // pick a cross-instance follow edge
        let &(a, b) = s
            .world
            .follows
            .iter()
            .find(|&&(a, b)| s.world.instance_of(a) != s.world.instance_of(b))
            .expect("cross-instance edge");
        let a_dom = s.world.instances[s.world.instance_of(a).index()].domain.clone();
        let b_dom = s.world.instances[s.world.instance_of(b).index()].domain.clone();
        let follow = Activity::Follow {
            id: format!("https://{a_dom}/act/1"),
            actor: format!("https://{a_dom}/users/u{}", a.0),
            object: format!("https://{b_dom}/users/u{}", b.0),
        };
        let rt = tokio::runtime::Builder::new_current_thread()
            .enable_time()
            .build()
            .unwrap();
        let mut req = Request::get(&b_dom, &format!("/users/u{}/inbox", b.0));
        req.method = Method::Post;
        req.body = bytes::Bytes::from(follow.to_json().to_string());
        let resp = rt.block_on(handle(s.clone(), req));
        assert_eq!(resp.status.0, 202);
        // followee's instance recorded the Follow
        let b_inst = s.world.instance_of(b);
        let received = s.drain_inbox(b_inst);
        assert!(matches!(received[0], Activity::Follow { .. }));
        // origin instance got the Accept
        let a_inst = s.world.instance_of(a);
        let accepts = s.drain_inbox(a_inst);
        assert!(accepts.iter().any(|x| matches!(x, Activity::Accept { .. })));
    }

    #[test]
    fn unknown_user_paths_404() {
        let s = state();
        let domain = s.world.instances[0].domain.clone();
        assert_eq!(
            get(&s, &domain, "/users/u999999").status,
            StatusCode::NOT_FOUND
        );
        assert_eq!(
            get(&s, &domain, "/users/notahandle/followers").status,
            StatusCode::NOT_FOUND
        );
    }
}
