//! Outage overlays: §4 schedules and §5 removal orders rebased onto the
//! simulation clock.
//!
//! An overlay is an [`OutageArena`] over simulation ticks (every instance
//! alive from tick 0, outages per [`super::OverlaySpec`]). Overlays are
//! built through [`OutageArena::from_unsorted`] — the counting-sort ingest
//! path — since interval order here falls out of AS grouping, not of
//! instance order.

use fediscope_model::schedule::{OutageArena, OutageCause};
use fediscope_model::time::Epoch;
use fediscope_model::Instance;
use fediscope_replication::scenario::{self, ScenarioWorld};

use super::OverlaySpec;

/// Compile `spec` into a sim-clock outage arena over `instances`
/// (`total_ticks` = toot horizon + drain budget).
pub fn build(spec: &OverlaySpec, instances: &[Instance], total_ticks: u32) -> OutageArena {
    let lifetimes: Vec<(Epoch, Epoch)> =
        vec![(Epoch(0), Epoch(total_ticks)); instances.len()];
    let intervals: Vec<(u32, Epoch, Epoch, OutageCause)> = match *spec {
        OverlaySpec::Baseline => Vec::new(),
        OverlaySpec::TopAsOutage(n_ases, start, end) => {
            assert!(start <= end && end <= total_ticks, "outage window out of range");
            let targets = top_ases_by_users(instances, n_ases as usize);
            instances
                .iter()
                .enumerate()
                .filter(|(_, inst)| targets.contains(&inst.asn.0))
                .map(|(i, _)| (i as u32, Epoch(start), Epoch(end), OutageCause::AsFailure))
                .collect()
        }
        OverlaySpec::TopInstanceRemoval(n, start) => {
            assert!(start <= total_ticks, "removal tick out of range");
            top_instances_by_toots(instances, n as usize)
                .into_iter()
                .map(|i| (i, Epoch(start), Epoch(total_ticks), OutageCause::Organic))
                .collect()
        }
        OverlaySpec::Scenario(ref spec, start, step_ticks) => {
            assert!(start <= total_ticks, "scenario start out of range");
            // Compiled against the instance table alone: shared-fate,
            // region, and cert-cascade scenarios are fully determined by
            // it; churn scenarios need availability schedules and compile
            // to an empty plan here (use the batch sweep for those).
            let sw = ScenarioWorld::from_instances(instances);
            let compiled = scenario::compile(spec, &sw);
            let mut intervals = Vec::new();
            for (k, members) in compiled.groups.iter().enumerate() {
                let at = start.saturating_add((k as u32).saturating_mul(step_ticks));
                if at >= total_ticks {
                    break;
                }
                for &i in members {
                    intervals.push((i, Epoch(at), Epoch(total_ticks), compiled.cause));
                }
            }
            intervals
        }
    };
    OutageArena::from_unsorted(&lifetimes, intervals)
}

/// The `n` ASes hosting the most users (ties: lower AS id wins) — the
/// paper's Table 1 ranking.
pub fn top_ases_by_users(instances: &[Instance], n: usize) -> Vec<u32> {
    let mut users_by_as: Vec<(u32, u64)> = Vec::new();
    let max_as = instances.iter().map(|i| i.asn.0).max().unwrap_or(0);
    let mut acc = vec![0u64; max_as as usize + 1];
    for inst in instances {
        acc[inst.asn.0 as usize] += inst.user_count as u64;
    }
    for (asid, &users) in acc.iter().enumerate() {
        if users > 0 {
            users_by_as.push((asid as u32, users));
        }
    }
    users_by_as.sort_by_key(|&(asid, users)| (std::cmp::Reverse(users), asid));
    users_by_as.truncate(n);
    users_by_as.into_iter().map(|(asid, _)| asid).collect()
}

/// The `n` instances with the most toots (ties: lower id wins) — the §5
/// removal order.
pub fn top_instances_by_toots(instances: &[Instance], n: usize) -> Vec<u32> {
    let mut ranked: Vec<(u32, u64)> = instances
        .iter()
        .enumerate()
        .map(|(i, inst)| (i as u32, inst.toot_count))
        .collect();
    ranked.sort_by_key(|&(i, toots)| (std::cmp::Reverse(toots), i));
    ranked.truncate(n);
    ranked.into_iter().map(|(i, _)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_worldgen::{Generator, WorldConfig};

    #[test]
    fn top_as_outage_covers_the_right_instances() {
        let w = Generator::generate_world(WorldConfig::tiny(21));
        let arena = build(&OverlaySpec::TopAsOutage(2, 10, 20), &w.instances, 100);
        let targets = top_ases_by_users(&w.instances, 2);
        assert_eq!(targets.len(), 2);
        let mut hit = 0;
        for (i, inst) in w.instances.iter().enumerate() {
            let v = arena.view(i);
            if targets.contains(&inst.asn.0) {
                assert!(!v.is_up(Epoch(15)));
                assert!(v.is_up(Epoch(25)));
                hit += 1;
            } else {
                assert!(v.is_up(Epoch(15)));
            }
        }
        assert!(hit > 0, "top ASes host at least one instance");
    }

    #[test]
    fn removal_is_permanent() {
        let w = Generator::generate_world(WorldConfig::tiny(22));
        let arena = build(&OverlaySpec::TopInstanceRemoval(3, 50), &w.instances, 100);
        let removed = top_instances_by_toots(&w.instances, 3);
        for &i in &removed {
            let v = arena.view(i as usize);
            assert!(v.is_up(Epoch(49)));
            assert!(!v.is_up(Epoch(50)));
            assert!(!v.is_up(Epoch(99)));
        }
    }

    #[test]
    fn scenario_overlay_steps_groups_onto_the_sim_clock() {
        use fediscope_model::schedule::OutageCause;
        use fediscope_replication::scenario::{compile, ScenarioSpec};
        let w = Generator::generate_world(WorldConfig::tiny(24));
        let spec = ScenarioSpec::AsSharedFate(3);
        let arena = build(&OverlaySpec::Scenario(spec, 10, 5), &w.instances, 100);
        let compiled = compile(&spec, &ScenarioWorld::from_instances(&w.instances));
        let mut dark = 0;
        for (k, members) in compiled.groups.iter().enumerate() {
            let at = 10 + k as u32 * 5;
            for &i in members {
                let v = arena.view(i as usize);
                assert!(v.is_up(Epoch(at - 1)), "up until its step");
                assert!(!v.is_up(Epoch(at)), "dark from its step");
                assert!(!v.is_up(Epoch(99)), "removal is permanent");
                assert_eq!(v.outage(0).cause, OutageCause::SharedFate);
                dark += 1;
            }
        }
        assert!(dark > 0, "top ASes host instances");
        // cert cascades carry their own provenance tag
        let cascade = build(
            &OverlaySpec::Scenario(ScenarioSpec::CertCascade(4), 0, 1),
            &w.instances,
            100,
        );
        for v in cascade.views() {
            for k in 0..v.outage_count() {
                assert_eq!(v.outage(k).cause, OutageCause::CertLapseCascade);
            }
        }
    }

    #[test]
    fn scenario_steps_past_the_horizon_are_dropped() {
        let w = Generator::generate_world(WorldConfig::tiny(25));
        let spec = scenario::ScenarioSpec::AsSharedFate(8);
        // step 0 lands at tick 90, step 1 would land at 190 > 100
        let arena = build(&OverlaySpec::Scenario(spec, 90, 100), &w.instances, 100);
        let compiled = scenario::compile(&spec, &ScenarioWorld::from_instances(&w.instances));
        let expected: usize = compiled.groups.first().map_or(0, |g| g.len());
        assert_eq!(arena.n_outages(), expected);
    }

    #[test]
    fn baseline_is_all_up() {
        let w = Generator::generate_world(WorldConfig::tiny(23));
        let arena = build(&OverlaySpec::Baseline, &w.instances, 10);
        assert_eq!(arena.n_outages(), 0);
    }
}
