//! Push fan-out topology: author → distinct remote follower instances.
//!
//! ActivityPub delivery is per *instance pair*, not per follower: a toot
//! travels once from the author's home instance to each instance hosting
//! at least one follower (Mastodon's sidekiq `push` queue dedups shared
//! inboxes). [`FanoutArena`] precompiles that dedup into a user-indexed
//! CSR so the simulator's hot loop is a flat slice walk.

/// User-indexed CSR: `dsts(u)` is the ascending, deduplicated list of
/// remote instances that host at least one follower of `u` (the home
/// instance is excluded — local delivery is not federation traffic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FanoutArena {
    n_instances: usize,
    /// User `u`'s home instance, `home[u]`.
    home: Vec<u32>,
    /// `n_users + 1` offsets into `dsts`.
    offsets: Vec<u32>,
    /// Destination instance ids, ascending within each user.
    dsts: Vec<u32>,
}

impl FanoutArena {
    /// Build from the follower edge list (`(a, b)` = user `a` follows user
    /// `b`, so a toot by `b` is pushed toward `a`'s instance).
    ///
    /// Two stable counting sorts (edges by followee, then per-followee
    /// dedup of sorted instance lists) — no hash maps, so the build is
    /// deterministic and `O(users + edges)`.
    pub fn from_follows(n_instances: usize, home: Vec<u32>, follows: &[(u32, u32)]) -> Self {
        let n_users = home.len();
        for &h in &home {
            assert!((h as usize) < n_instances, "home instance {h} out of range");
        }
        // Counting sort edges by followee: counts → offsets → scatter the
        // follower's *instance* into the followee's slot range.
        let mut counts = vec![0u32; n_users];
        for &(follower, followee) in follows {
            assert!((follower as usize) < n_users && (followee as usize) < n_users);
            counts[followee as usize] += 1;
        }
        let mut raw_off = vec![0u32; n_users + 1];
        let mut acc = 0u32;
        for u in 0..n_users {
            raw_off[u] = acc;
            acc += counts[u];
        }
        raw_off[n_users] = acc;
        let mut raw = vec![0u32; acc as usize];
        let mut cursor = raw_off.clone();
        for &(follower, followee) in follows {
            let at = &mut cursor[followee as usize];
            raw[*at as usize] = home[follower as usize];
            *at += 1;
        }
        // Per-user: sort, dedup, drop the home instance.
        let mut offsets = vec![0u32; n_users + 1];
        let mut dsts = Vec::with_capacity(raw.len());
        for u in 0..n_users {
            offsets[u] = dsts.len() as u32;
            let slice = &mut raw[raw_off[u] as usize..raw_off[u + 1] as usize];
            slice.sort_unstable();
            let mut prev = u32::MAX;
            for &inst in slice.iter() {
                if inst != prev && inst != home[u] {
                    dsts.push(inst);
                }
                prev = inst;
            }
        }
        offsets[n_users] = dsts.len() as u32;
        dsts.shrink_to_fit();
        FanoutArena { n_instances, home, offsets, dsts }
    }

    /// Number of instances in the topology.
    pub fn n_instances(&self) -> usize {
        self.n_instances
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.home.len()
    }

    /// User `u`'s home instance.
    pub fn home(&self, u: u32) -> u32 {
        self.home[u as usize]
    }

    /// Distinct remote follower instances of user `u`, ascending.
    pub fn dsts(&self, u: u32) -> &[u32] {
        &self.dsts[self.offsets[u as usize] as usize..self.offsets[u as usize + 1] as usize]
    }

    /// Total (user → instance) delivery pairs.
    pub fn n_pairs(&self) -> usize {
        self.dsts.len()
    }

    /// Build straight from a generated world's follower graph.
    pub fn from_world(world: &fediscope_model::World) -> Self {
        let home: Vec<u32> = world.users.iter().map(|u| u.instance.0).collect();
        let follows: Vec<(u32, u32)> =
            world.follows.iter().map(|&(a, b)| (a.0, b.0)).collect();
        Self::from_follows(world.instances.len(), home, &follows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_and_drops_home() {
        // users 0,1 on instance 0; user 2 on instance 1; user 3 on 2.
        let home = vec![0, 0, 1, 2];
        // followers of user 0: 1 (inst 0 = home, dropped), 2 and 3; plus a
        // duplicate instance via both 2 and another user on inst 1.
        let follows = vec![(1, 0), (2, 0), (3, 0), (0, 2), (2, 3), (3, 2)];
        let f = FanoutArena::from_follows(3, home, &follows);
        assert_eq!(f.dsts(0), &[1, 2]); // dedup + home dropped
        assert_eq!(f.dsts(1), &[] as &[u32]);
        assert_eq!(f.dsts(2), &[0, 2]);
        assert_eq!(f.dsts(3), &[1]);
        assert_eq!(f.n_pairs(), 5);
        assert_eq!(f.home(2), 1);
    }

    #[test]
    fn edge_order_does_not_matter() {
        let home = vec![0, 1, 2];
        let a = FanoutArena::from_follows(3, home.clone(), &[(1, 0), (2, 0)]);
        let b = FanoutArena::from_follows(3, home, &[(2, 0), (1, 0)]);
        assert_eq!(a, b);
    }
}
