//! Destination side: bounded inbox queues with fixed service rates.
//!
//! Each instance's inbox is a FIFO with a hard capacity (the bounded
//! sidekiq queue): an attempt arriving at a full inbox is rejected with
//! sender-visible backpressure ([`Verdict::RejectedFull`]), never silently
//! dropped. Service drains up to `service_rate` messages per tick —
//! capacity and rate both scale with the instance's local user count, so
//! the §3 concentration shows up as big instances having both the most
//! load *and* the most workers.

use std::collections::VecDeque;

use super::events::{EventDigest, Msg, Verdict};

/// Mutable per-destination-instance state (sharded by instance in phase D).
#[derive(Debug, Clone)]
pub struct DestState {
    /// FIFO inbox.
    pub inbox: VecDeque<Msg>,
    /// Hard inbox bound.
    pub capacity: u32,
    /// Messages serviced (delivered) per tick.
    pub service_rate: u32,
    /// Deepest the inbox ever got.
    pub peak_depth: u32,
    /// First tick an attempt bounced off a full inbox, if any.
    pub first_saturated: Option<u32>,
    /// Messages delivered on their creation tick, first attempt.
    pub delivered_prompt: u64,
    /// Messages delivered late (queued and/or retried).
    pub delivered_delayed: u64,
    /// Sum of delivery latencies in ticks (mean = sum / delivered).
    pub latency_sum: u64,
    /// Transcript digest of every admission verdict and delivery.
    pub digest: EventDigest,
}

impl DestState {
    /// State for an instance hosting `users` accounts: `service_rate =
    /// max(min_service, users × per_kuser / 1000)`, `capacity = rate ×
    /// backlog_ticks`.
    pub fn new(users: u32, per_kuser: u32, min_service: u32, backlog_ticks: u32) -> Self {
        let service_rate = ((users as u64 * per_kuser as u64) / 1000)
            .max(min_service as u64)
            .min(u32::MAX as u64) as u32;
        DestState {
            inbox: VecDeque::new(),
            capacity: service_rate.saturating_mul(backlog_ticks).max(1),
            service_rate,
            peak_depth: 0,
            first_saturated: None,
            delivered_prompt: 0,
            delivered_delayed: 0,
            latency_sum: 0,
            digest: EventDigest::default(),
        }
    }

    /// Admit one attempt at `tick`. `down` is the outage overlay's verdict
    /// for this instance at this tick; probes are capacity-checked but
    /// never enqueued.
    pub fn admit(&mut self, tick: u32, msg: Msg, probe: bool, down: bool) -> Verdict {
        let verdict = if down {
            Verdict::RejectedDown
        } else if (self.inbox.len() as u32) < self.capacity {
            if !probe {
                self.inbox.push_back(msg);
                self.peak_depth = self.peak_depth.max(self.inbox.len() as u32);
            }
            Verdict::Accepted
        } else {
            if self.first_saturated.is_none() {
                self.first_saturated = Some(tick);
            }
            Verdict::RejectedFull
        };
        self.digest.fold_all(&[
            tick as u64,
            msg.seq as u64,
            msg.attempts as u64,
            probe as u64,
            verdict.code(),
        ]);
        verdict
    }

    /// Service up to `service_rate` queued messages; returns `(delivered,
    /// prompt)` counts for this tick.
    pub fn service(&mut self, tick: u32) -> (u32, u32) {
        let n = (self.service_rate as usize).min(self.inbox.len());
        let mut prompt = 0u32;
        for _ in 0..n {
            let msg = self.inbox.pop_front().expect("len checked");
            let latency = (tick - msg.created) as u64;
            self.latency_sum += latency;
            if latency == 0 && msg.attempts == 0 {
                self.delivered_prompt += 1;
                prompt += 1;
            } else {
                self.delivered_delayed += 1;
            }
            self.digest.fold_all(&[u64::MAX, tick as u64, msg.seq as u64, latency]);
        }
        (n as u32, prompt)
    }

    /// Messages still queued.
    pub fn backlog(&self) -> usize {
        self.inbox.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(seq: u32, created: u32) -> Msg {
        Msg { seq, dst: 0, created, attempts: 0 }
    }

    #[test]
    fn bounded_inbox_backpressures() {
        let mut d = DestState::new(0, 100, 2, 1); // rate 2, capacity 2
        assert_eq!(d.admit(0, msg(0, 0), false, false), Verdict::Accepted);
        assert_eq!(d.admit(0, msg(1, 0), false, false), Verdict::Accepted);
        assert_eq!(d.admit(0, msg(2, 0), false, false), Verdict::RejectedFull);
        assert_eq!(d.first_saturated, Some(0));
        assert_eq!(d.peak_depth, 2);
        let (delivered, prompt) = d.service(0);
        assert_eq!((delivered, prompt), (2, 2));
        assert_eq!(d.backlog(), 0);
    }

    #[test]
    fn down_rejects_everything_and_probes_take_no_space() {
        let mut d = DestState::new(1000, 100, 1, 4); // rate 100, cap 400
        assert_eq!(d.admit(3, msg(0, 3), false, true), Verdict::RejectedDown);
        assert_eq!(d.backlog(), 0);
        assert_eq!(d.admit(4, msg(1, 4), true, false), Verdict::Accepted);
        assert_eq!(d.backlog(), 0, "probe must not enqueue");
    }

    #[test]
    fn delayed_delivery_accounting() {
        let mut d = DestState::new(0, 100, 1, 8); // rate 1
        d.admit(0, msg(0, 0), false, false);
        d.admit(0, msg(1, 0), false, false);
        assert_eq!(d.service(0), (1, 1)); // first is prompt
        assert_eq!(d.service(1), (1, 0)); // second waited a tick
        assert_eq!(d.delivered_prompt, 1);
        assert_eq!(d.delivered_delayed, 1);
        assert_eq!(d.latency_sum, 1);
    }
}
