//! Checkpoint/resume for the federation simulator.
//!
//! [`FedSimState`] is the serialized form of everything
//! [`FedSim`](super::FedSim) mutates: per-tick counters, the accumulated
//! series, and for every instance the sender side (retry heap as a
//! sorted list, suspension table with parked mail, breaker counts,
//! transcript digest) and the receiver side (inbox FIFO, saturation and
//! latency accounting, digest). Derived values — inbox capacities,
//! service rates, the horizon — are *not* stored; resume recomputes them
//! from the config, so a snapshot can never disagree with its config.
//!
//! The recover traits plug the simulator into
//! [`fediscope_recover::run_checkpointed`]: `Steppable` exposes the tick
//! loop, `Snapshot` captures state, and [`resume_or_restart`] is the
//! read side — take the newest good snapshot from a store (skipping torn
//! ones) or honestly restart from scratch when nothing survived.
//!
//! **Resume identity** (proptested in `tests/recover.rs`, CI-gated via
//! `bench_recover`): crash at any tick, resume from any checkpoint ≤ the
//! crash, and the finished run — report, series, per-instance loads,
//! `event_hash` — is bit-identical to the run that never crashed.

use std::collections::{BTreeMap, VecDeque};

use fediscope_model::schedule::OutageArena;
use fediscope_model::TootArena;
use fediscope_recover::{recover_latest, Snapshot, SnapshotStore, Steppable};
use serde::{Deserialize, Serialize};

use super::engine::FedSim;
use super::events::Msg;
use super::fanout::FanoutArena;
use super::metrics::TickStat;
use super::FedSimConfig;

/// Frame kind tag for fedsim snapshots.
pub const FEDSIM_KIND: &str = "fedsim";

/// Schema version of [`FedSimState`]. Bump on any shape change.
pub const FEDSIM_STATE_VERSION: u32 = 1;

/// One suspended destination: its parked mail and next probe tick.
///
/// The per-instance snaps below ([`SuspensionSnap`], [`SourceSnap`],
/// [`DestSnap`]) serialize as compact positional arrays, not field-named
/// objects, and message queues pack into single byte columns
/// ([`Msg::write_le`] records inside `Value::Bytes`): a checkpoint
/// carries two snaps per instance plus every in-flight [`Msg`], and at
/// paper scale per-node tree overhead dominated both frame size and
/// encode time. Field and record order are part of the frame format —
/// append-only, and bump [`FEDSIM_STATE_VERSION`] on any change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuspensionSnap {
    /// Held-back messages in park order.
    pub parked: VecDeque<Msg>,
    /// Next reachability probe tick — must *not* reset on resume.
    pub probe_due: u32,
}

/// A message queue as one packed byte column of LE records.
fn msg_column<'a>(msgs: impl ExactSizeIterator<Item = &'a Msg>) -> serde::Value {
    let mut out = Vec::with_capacity(msgs.len() * Msg::LE_LEN);
    for m in msgs {
        m.write_le(&mut out);
    }
    serde::Value::Bytes(out)
}

fn msg_column_back(v: &serde::Value, what: &'static str) -> Result<Vec<Msg>, serde::Error> {
    let b = v
        .as_bytes()
        .ok_or_else(|| serde::Error::custom(format!("{what}: expected packed msg bytes")))?;
    if b.len() % Msg::LE_LEN != 0 {
        return Err(serde::Error::custom(format!("{what}: ragged msg column")));
    }
    Ok(b.chunks_exact(Msg::LE_LEN).map(Msg::read_le).collect())
}

impl Serialize for SuspensionSnap {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::Array(vec![msg_column(self.parked.iter()), self.probe_due.to_json_value()])
    }
}

impl Deserialize for SuspensionSnap {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let a = v
            .as_array()
            .filter(|a| a.len() == 2)
            .ok_or_else(|| serde::Error::custom("SuspensionSnap: expected [parked,probe_due]"))?;
        Ok(SuspensionSnap {
            parked: msg_column_back(&a[0], "SuspensionSnap.parked")?.into(),
            probe_due: u32::from_json_value(&a[1])?,
        })
    }
}

/// Sender-side state of one instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceSnap {
    /// Retry schedule in pop order (`RetryQueue::entries`); backoff
    /// deadlines survive the crash untouched.
    pub retry: Vec<(u32, Msg)>,
    /// Suspended destinations keyed by instance id.
    pub suspended: BTreeMap<u32, SuspensionSnap>,
    /// Consecutive-failure breaker counts per destination.
    pub breaker: BTreeMap<u32, u32>,
    /// Messages abandoned after the retry budget.
    pub dropped: u64,
    /// Redelivery attempts emitted.
    pub redelivery_attempts: u64,
    /// Suspensions ever entered.
    pub suspensions: u64,
    /// Suspensions lifted by probes.
    pub recovered: u64,
    /// Transcript digest accumulator.
    pub digest: u64,
}

/// A `BTreeMap<u32, V>` as a compact `[[k, v], …]` pair list (the derive
/// form would stringify every key).
fn pairs<V: Serialize>(m: &BTreeMap<u32, V>) -> serde::Value {
    serde::Value::Array(
        m.iter()
            .map(|(k, v)| serde::Value::Array(vec![k.to_json_value(), v.to_json_value()]))
            .collect(),
    )
}

/// The retry schedule as 20-byte records: due tick (u32 LE) + msg.
fn retry_column(entries: &[(u32, Msg)]) -> serde::Value {
    let mut out = Vec::with_capacity(entries.len() * (4 + Msg::LE_LEN));
    for (due, m) in entries {
        out.extend_from_slice(&due.to_le_bytes());
        m.write_le(&mut out);
    }
    serde::Value::Bytes(out)
}

fn retry_column_back(v: &serde::Value) -> Result<Vec<(u32, Msg)>, serde::Error> {
    let b = v
        .as_bytes()
        .ok_or_else(|| serde::Error::custom("SourceSnap.retry: expected packed bytes"))?;
    const REC: usize = 4 + Msg::LE_LEN;
    if b.len() % REC != 0 {
        return Err(serde::Error::custom("SourceSnap.retry: ragged retry column"));
    }
    Ok(b.chunks_exact(REC)
        .map(|r| (u32::from_le_bytes(r[..4].try_into().unwrap()), Msg::read_le(&r[4..])))
        .collect())
}

impl Serialize for SourceSnap {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::Array(vec![
            retry_column(&self.retry),
            pairs(&self.suspended),
            pairs(&self.breaker),
            self.dropped.to_json_value(),
            self.redelivery_attempts.to_json_value(),
            self.suspensions.to_json_value(),
            self.recovered.to_json_value(),
            self.digest.to_json_value(),
        ])
    }
}

impl Deserialize for SourceSnap {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let a = v
            .as_array()
            .filter(|a| a.len() == 8)
            .ok_or_else(|| serde::Error::custom("SourceSnap: expected 8-element array"))?;
        Ok(SourceSnap {
            retry: retry_column_back(&a[0])?,
            suspended: Vec::<(u32, SuspensionSnap)>::from_json_value(&a[1])?
                .into_iter()
                .collect(),
            breaker: Vec::<(u32, u32)>::from_json_value(&a[2])?.into_iter().collect(),
            dropped: u64::from_json_value(&a[3])?,
            redelivery_attempts: u64::from_json_value(&a[4])?,
            suspensions: u64::from_json_value(&a[5])?,
            recovered: u64::from_json_value(&a[6])?,
            digest: u64::from_json_value(&a[7])?,
        })
    }
}

/// Receiver-side state of one instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DestSnap {
    /// Queued inbox messages in FIFO order.
    pub inbox: VecDeque<Msg>,
    /// Deepest the inbox ever got.
    pub peak_depth: u32,
    /// First saturation tick, if any.
    pub first_saturated: Option<u32>,
    /// Prompt deliveries so far.
    pub delivered_prompt: u64,
    /// Delayed deliveries so far.
    pub delivered_delayed: u64,
    /// Latency accumulator.
    pub latency_sum: u64,
    /// Transcript digest accumulator.
    pub digest: u64,
}

impl Serialize for DestSnap {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::Array(vec![
            msg_column(self.inbox.iter()),
            self.peak_depth.to_json_value(),
            self.first_saturated.to_json_value(),
            self.delivered_prompt.to_json_value(),
            self.delivered_delayed.to_json_value(),
            self.latency_sum.to_json_value(),
            self.digest.to_json_value(),
        ])
    }
}

impl Deserialize for DestSnap {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let a = v
            .as_array()
            .filter(|a| a.len() == 7)
            .ok_or_else(|| serde::Error::custom("DestSnap: expected 7-element array"))?;
        Ok(DestSnap {
            inbox: msg_column_back(&a[0], "DestSnap.inbox")?.into(),
            peak_depth: u32::from_json_value(&a[1])?,
            first_saturated: Option::from_json_value(&a[2])?,
            delivered_prompt: u64::from_json_value(&a[3])?,
            delivered_delayed: u64::from_json_value(&a[4])?,
            latency_sum: u64::from_json_value(&a[5])?,
            digest: u64::from_json_value(&a[6])?,
        })
    }
}

/// The complete resumable state of a [`FedSim`] between two ticks.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FedSimState {
    /// Ticks completed.
    pub tick: u32,
    /// Next fan-out sequence number (the message-identity RNG counter).
    pub next_seq: u32,
    /// Messages created by fan-out so far.
    pub fanned_out: u64,
    /// Messages serviced out of inboxes so far.
    pub delivered_total: u64,
    /// Messages abandoned so far.
    pub dropped_total: u64,
    /// Probes sent so far.
    pub probes_total: u64,
    /// Delivery attempts sent so far.
    pub attempts_total: u64,
    /// Backpressure rejections so far.
    pub rejected_full_total: u64,
    /// Down rejections so far.
    pub rejected_down_total: u64,
    /// Per-tick series accumulated so far.
    pub series: Vec<TickStat>,
    /// Sender-side state, one per instance.
    pub sources: Vec<SourceSnap>,
    /// Receiver-side state, one per instance.
    pub dests: Vec<DestSnap>,
}

impl Steppable for FedSim<'_> {
    fn tick(&self) -> u64 {
        FedSim::tick(self) as u64
    }

    fn is_done(&self) -> bool {
        FedSim::is_done(self)
    }

    fn step(&mut self) {
        self.step_tick();
    }
}

impl Snapshot for FedSim<'_> {
    const KIND: &'static str = FEDSIM_KIND;
    const STATE_VERSION: u32 = FEDSIM_STATE_VERSION;

    fn virtual_tick(&self) -> u64 {
        FedSim::tick(self) as u64
    }

    fn snapshot_state(&self) -> serde::Value {
        self.capture().to_json_value()
    }
}

/// What recovery found in the checkpoint store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryInfo {
    /// Tick of the snapshot resumed from; `None` means every snapshot was
    /// torn (or none existed) and the run restarted from scratch — the
    /// honest degradation, reported rather than hidden.
    pub resumed_from: Option<u64>,
    /// Snapshots skipped as torn/corrupt during the scan.
    pub torn_skipped: u32,
}

/// Rebuild a simulator from the newest good snapshot in `store`, or from
/// scratch when no snapshot survives. Never panics on torn frames — they
/// are skipped and counted in the returned [`RecoveryInfo`].
pub fn resume_or_restart<'a, S: SnapshotStore>(
    store: &S,
    cfg: FedSimConfig,
    fanout: &'a FanoutArena,
    toots: &'a TootArena,
    dest_users: &[u32],
    outages: OutageArena,
) -> (FedSim<'a>, RecoveryInfo) {
    let rec = recover_latest(store, FEDSIM_KIND, FEDSIM_STATE_VERSION);
    let info = RecoveryInfo {
        resumed_from: rec.good.as_ref().map(|(meta, _)| meta.tick),
        torn_skipped: rec.torn_skipped,
    };
    let sim = match &rec.good {
        Some((_, value)) => {
            let state = FedSimState::from_json_value(value)
                .expect("checksummed snapshot failed to decode");
            FedSim::resume(cfg, fanout, toots, dest_users, outages, &state)
        }
        None => FedSim::new(cfg, fanout, toots, dest_users, outages),
    };
    (sim, info)
}
