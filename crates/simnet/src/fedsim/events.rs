//! Event vocabulary of the delivery simulator.
//!
//! A toot fan-out produces one [`Msg`] per (home instance → follower
//! instance) pair; every send of a message is an [`Attempt`], every
//! attempt resolves to an [`Outcome`] carrying a [`Verdict`]. Each message
//! has a globally unique `seq` assigned in canonical fan-out order, which
//! gives every collection of in-flight messages a total order — the
//! property all the deterministic queues downstream lean on.
//!
//! [`EventDigest`] is the transcript witness: a running FNV-1a fold over
//! every event's fields, accumulated per sharded state and combined in
//! state order, so two runs produce the same digest iff they produced the
//! same events in the same order — at any shard count.

/// `seq` value reserved for synthetic probe attempts (probes are
/// zero-footprint reachability checks, not queued messages).
pub const PROBE_SEQ: u32 = u32::MAX;

/// One federation message: a toot notification bound for one remote
/// instance's inbox. In-flight messages are part of the checkpoint state
/// (`fedsim::snapshot`) — and since a checkpoint can hold tens of
/// thousands of them, whole queues serialize as one packed byte column
/// ([`Msg::write_le`] records), not one value-tree node per field:
/// checkpoint encode time scales with node count, and queued mail
/// dominates the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Msg {
    /// Globally unique fan-out sequence number (canonical creation order).
    pub seq: u32,
    /// Destination instance.
    pub dst: u32,
    /// Tick the toot was posted.
    pub created: u32,
    /// Failed delivery attempts so far.
    pub attempts: u32,
}

impl Msg {
    /// Size of one little-endian checkpoint record.
    pub const LE_LEN: usize = 16;

    /// Append this message as a fixed 16-byte little-endian record
    /// (`seq, dst, created, attempts`, 4 bytes each).
    pub fn write_le(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.dst.to_le_bytes());
        out.extend_from_slice(&self.created.to_le_bytes());
        out.extend_from_slice(&self.attempts.to_le_bytes());
    }

    /// Read one record back; `b` must be exactly [`Msg::LE_LEN`] bytes.
    pub fn read_le(b: &[u8]) -> Msg {
        let word = |i: usize| u32::from_le_bytes(b[4 * i..4 * i + 4].try_into().unwrap());
        Msg { seq: word(0), dst: word(1), created: word(2), attempts: word(3) }
    }
}

/// One send of a message (or a synthetic probe) from a source instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attempt {
    /// Sending (home) instance.
    pub src: u32,
    /// The message being sent; probes carry `seq == PROBE_SEQ`.
    pub msg: Msg,
    /// True for circuit-breaker reachability probes.
    pub probe: bool,
}

/// The receiving side's verdict on one attempt — what the sender observes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Enqueued into the destination inbox (probes: would have been).
    Accepted,
    /// Bounded inbox full: backpressure, sender must retry.
    RejectedFull,
    /// Destination instance is down (outage overlay says so).
    RejectedDown,
}

impl Verdict {
    /// Stable small code for digests.
    pub fn code(self) -> u64 {
        match self {
            Verdict::Accepted => 1,
            Verdict::RejectedFull => 2,
            Verdict::RejectedDown => 3,
        }
    }
}

/// An attempt plus its verdict, routed back to the sender.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    /// The attempt as sent.
    pub attempt: Attempt,
    /// What the destination said.
    pub verdict: Verdict,
}

/// SplitMix64 — the repo's standard cheap deterministic mixer (same
/// finalizer as `simnet::fault`); used for retry jitter.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Running FNV-1a fold over 64-bit words: the per-state transcript hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventDigest(u64);

impl Default for EventDigest {
    fn default() -> Self {
        EventDigest(0xCBF2_9CE4_8422_2325) // FNV-1a offset basis
    }
}

impl EventDigest {
    /// Fold one word into the digest.
    pub fn fold(&mut self, word: u64) {
        self.0 = (self.0 ^ word).wrapping_mul(0x0000_0100_0000_01B3);
    }

    /// Fold a batch of words.
    pub fn fold_all(&mut self, words: &[u64]) {
        for &w in words {
            self.fold(w);
        }
    }

    /// The current value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Rebuild a digest from a previously captured [`value`](Self::value)
    /// — the accumulator state is the value, so folds continue exactly
    /// where the captured digest left off (checkpoint/resume).
    pub fn restore(value: u64) -> Self {
        EventDigest(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_order_sensitive() {
        let mut a = EventDigest::default();
        let mut b = EventDigest::default();
        a.fold_all(&[1, 2]);
        b.fold_all(&[2, 1]);
        assert_ne!(a.value(), b.value());
        let mut c = EventDigest::default();
        c.fold(1);
        c.fold(2);
        assert_eq!(a, c);
    }

    #[test]
    fn msg_order_is_total_by_seq_first() {
        let a = Msg { seq: 1, dst: 9, created: 0, attempts: 5 };
        let b = Msg { seq: 2, dst: 0, created: 0, attempts: 0 };
        assert!(a < b);
    }

    #[test]
    fn mix64_spreads() {
        assert_ne!(mix64(0), mix64(1));
        assert_eq!(mix64(42), mix64(42));
    }
}
