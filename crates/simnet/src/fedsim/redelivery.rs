//! Sender side: the redelivery queue with capped exponential backoff.
//!
//! Mastodon's sidekiq retries failed deliveries on an exponential
//! schedule. [`RetryQueue`] is the deterministic equivalent: a min-heap
//! keyed by `(due_tick, msg)` — `Msg`'s total order (unique `seq`) breaks
//! every tie, so pop order is independent of insertion history.
//! [`backoff_delay`] derives the retry delay from the attempt count plus
//! deterministic jitter mixed from the seed and the message identity
//! (counter-derived, like every RNG stream in this repo).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use super::events::{mix64, Msg};

/// Deterministic retry schedule: messages pop in `(due, msg)` order.
#[derive(Debug, Clone, Default)]
pub struct RetryQueue {
    heap: BinaryHeap<Reverse<(u32, Msg)>>,
}

impl RetryQueue {
    /// Schedule `msg` for redelivery at `due`.
    pub fn push(&mut self, due: u32, msg: Msg) {
        self.heap.push(Reverse((due, msg)));
    }

    /// Pop the next message due at or before `tick`, lowest `(due, msg)`
    /// first.
    pub fn pop_due(&mut self, tick: u32) -> Option<Msg> {
        match self.heap.peek() {
            Some(&Reverse((due, _))) if due <= tick => {
                let Reverse((_, msg)) = self.heap.pop().expect("peeked");
                Some(msg)
            }
            _ => None,
        }
    }

    /// Messages still scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Every scheduled entry in pop order (ascending `(due, msg)`), for
    /// checkpoints. The heap's pop order is total — `Msg`'s unique `seq`
    /// breaks all ties — so this sorted list fully determines future
    /// behaviour.
    pub fn entries(&self) -> Vec<(u32, Msg)> {
        let mut v: Vec<(u32, Msg)> =
            self.heap.iter().map(|std::cmp::Reverse(e)| *e).collect();
        v.sort_unstable();
        v
    }

    /// Rebuild a queue from captured [`entries`](Self::entries); the
    /// restored queue pops the identical sequence the original would have.
    pub fn from_entries(entries: impl IntoIterator<Item = (u32, Msg)>) -> Self {
        RetryQueue {
            heap: entries.into_iter().map(Reverse).collect(),
        }
    }
}

/// Retry delay in ticks after a message's `attempts`-th failure:
/// `min(base × 2^(attempts-1), cap)` plus jitter in `0..=jitter` mixed
/// from `(seed, seq, attempts)` — same message, same attempt, same seed ⇒
/// same delay, on any shard.
pub fn backoff_delay(base: u32, cap: u32, jitter: u32, seed: u64, msg: Msg) -> u32 {
    let exp = base
        .saturating_mul(1u32.checked_shl(msg.attempts.saturating_sub(1)).unwrap_or(u32::MAX))
        .min(cap)
        .max(1);
    let j = if jitter == 0 {
        0
    } else {
        (mix64(seed ^ ((msg.seq as u64) << 32) ^ msg.attempts as u64) % (jitter as u64 + 1)) as u32
    };
    exp + j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(seq: u32, attempts: u32) -> Msg {
        Msg { seq, dst: 0, created: 0, attempts }
    }

    #[test]
    fn pops_in_due_then_seq_order() {
        let mut q = RetryQueue::default();
        q.push(5, msg(2, 1));
        q.push(3, msg(9, 1));
        q.push(5, msg(1, 1));
        assert_eq!(q.pop_due(10).unwrap().seq, 9);
        assert_eq!(q.pop_due(10).unwrap().seq, 1);
        assert_eq!(q.pop_due(10).unwrap().seq, 2);
        assert!(q.pop_due(10).is_none());
    }

    #[test]
    fn respects_due_time() {
        let mut q = RetryQueue::default();
        q.push(7, msg(0, 1));
        assert!(q.pop_due(6).is_none());
        assert!(q.pop_due(7).is_some());
    }

    #[test]
    fn backoff_grows_and_caps() {
        let d1 = backoff_delay(2, 64, 0, 1, msg(0, 1));
        let d3 = backoff_delay(2, 64, 0, 1, msg(0, 3));
        let d9 = backoff_delay(2, 64, 0, 1, msg(0, 9));
        assert_eq!(d1, 2);
        assert_eq!(d3, 8);
        assert_eq!(d9, 64, "capped");
        // jitter is deterministic and bounded
        let j = backoff_delay(2, 64, 3, 42, msg(7, 2));
        assert_eq!(j, backoff_delay(2, 64, 3, 42, msg(7, 2)));
        assert!((4..=7).contains(&j));
    }
}
