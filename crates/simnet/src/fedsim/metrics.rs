//! Delivery accounting: per-tick series and the end-of-run report.
//!
//! Conservation is the backbone: every fanned-out message ends in exactly
//! one of delivered (prompt or delayed), dropped (retry budget exhausted),
//! or undeliverable (still queued, scheduled, or parked behind a
//! suspension when the simulation ends). [`DeliveryReport::conserved`]
//! checks the identity; the bench gate and the proptests both lean on it.

use serde::{Deserialize, Serialize};

use super::OverlaySpec;

/// One tick of aggregate activity (the degradation time series).
/// Serializable: the series accumulated so far rides along in checkpoints,
/// one compact array per tick (`[fanned, attempts, …, backlog]` in field
/// order — a checkpoint carries hundreds of these, so no field names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TickStat {
    /// New messages fanned out this tick.
    pub fanned: u32,
    /// Delivery attempts sent (excluding probes).
    pub attempts: u32,
    /// Probes sent.
    pub probes: u32,
    /// Attempts accepted into an inbox.
    pub accepted: u32,
    /// Attempts bounced off a full inbox.
    pub rejected_full: u32,
    /// Attempts refused because the destination was down.
    pub rejected_down: u32,
    /// Messages serviced out of inboxes.
    pub delivered: u32,
    /// Messages abandoned (attempt budget exhausted).
    pub dropped: u32,
    /// Messages in flight after this tick (inboxes + retry + parked).
    pub backlog: u64,
}

impl Serialize for TickStat {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::Array(vec![
            self.fanned.to_json_value(),
            self.attempts.to_json_value(),
            self.probes.to_json_value(),
            self.accepted.to_json_value(),
            self.rejected_full.to_json_value(),
            self.rejected_down.to_json_value(),
            self.delivered.to_json_value(),
            self.dropped.to_json_value(),
            self.backlog.to_json_value(),
        ])
    }
}

impl Deserialize for TickStat {
    fn from_json_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let a = v
            .as_array()
            .filter(|a| a.len() == 9)
            .ok_or_else(|| serde::Error::custom("TickStat: expected 9-element array"))?;
        Ok(TickStat {
            fanned: u32::from_json_value(&a[0])?,
            attempts: u32::from_json_value(&a[1])?,
            probes: u32::from_json_value(&a[2])?,
            accepted: u32::from_json_value(&a[3])?,
            rejected_full: u32::from_json_value(&a[4])?,
            rejected_down: u32::from_json_value(&a[5])?,
            delivered: u32::from_json_value(&a[6])?,
            dropped: u32::from_json_value(&a[7])?,
            backlog: u64::from_json_value(&a[8])?,
        })
    }
}

/// End-of-run summary; serializable into `BENCH_fedsim.json` records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeliveryReport {
    /// The outage overlay the run was driven under.
    pub overlay: OverlaySpec,
    /// Messages created by fan-out.
    pub fanned_out: u64,
    /// Delivered on the creation tick, first attempt.
    pub delivered_prompt: u64,
    /// Delivered late (queued and/or redelivered).
    pub delivered_delayed: u64,
    /// Abandoned after the full retry budget.
    pub dropped: u64,
    /// Still in flight when the simulation ended (inbox + retry + parked).
    pub undeliverable: u64,
    /// Of `undeliverable`, messages parked behind suspended destinations.
    pub suspended_undeliverable: u64,
    /// Delivery attempts sent (excluding probes).
    pub attempts: u64,
    /// Redelivery (non-first) attempts among them.
    pub redelivery_attempts: u64,
    /// Probes sent.
    pub probes: u64,
    /// Attempts rejected by backpressure.
    pub rejected_full: u64,
    /// Attempts rejected because the destination was down.
    pub rejected_down: u64,
    /// Suspensions entered.
    pub suspensions: u64,
    /// Suspensions lifted by a successful probe.
    pub recovered_suspensions: u64,
    /// Deepest inbox observed anywhere.
    pub peak_inbox_depth: u32,
    /// Instance that hit that depth (lowest id on ties).
    pub peak_inbox_instance: u32,
    /// Instances that ever rejected with backpressure.
    pub saturated_instances: u32,
    /// First tick any inbox saturated (-1: never).
    pub first_saturation_tick: i64,
    /// Instance that saturated first (-1: never; lowest id on ties).
    pub first_saturation_instance: i64,
    /// Peak-inbox-depth distribution across instances: p50/p90/p99/max.
    pub depth_p50: u32,
    /// 90th percentile of per-instance peak depth.
    pub depth_p90: u32,
    /// 99th percentile of per-instance peak depth.
    pub depth_p99: u32,
    /// Mean delivery latency in ticks over all delivered messages.
    pub mean_latency: f64,
    /// attempts / fanned_out: redelivery amplification factor.
    pub amplification: f64,
    /// Tick the simulation stopped at.
    pub end_tick: u32,
    /// Ticks past the toot horizon until all queues emptied (-1: the
    /// drain budget expired first).
    pub time_to_drain: i64,
    /// True when every queue emptied before the drain budget expired.
    pub drained: bool,
    /// Transcript witness: FNV fold over every event in canonical order.
    pub event_hash: u64,
}

impl DeliveryReport {
    /// Total delivered.
    pub fn delivered(&self) -> u64 {
        self.delivered_prompt + self.delivered_delayed
    }

    /// The conservation identity: every fanned-out message is delivered,
    /// dropped, or still accounted for as undeliverable.
    pub fn conserved(&self) -> bool {
        self.fanned_out == self.delivered() + self.dropped + self.undeliverable
    }
}

/// Everything a finished simulation yields: the summary report, the
/// per-tick degradation series, and per-instance delivered-load counts
/// (the §3 concentration data).
#[derive(Debug, Clone, PartialEq)]
pub struct SimRun {
    /// End-of-run summary.
    pub report: DeliveryReport,
    /// One entry per simulated tick.
    pub series: Vec<TickStat>,
    /// Messages delivered *to* each instance (prompt + delayed).
    pub delivered_per_instance: Vec<u64>,
}

/// p-th percentile (nearest-rank) of a **sorted ascending** slice.
pub(crate) fn percentile(sorted: &[u32], p: f64) -> u32 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let v = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&v, 50.0), 5);
        assert_eq!(percentile(&v, 90.0), 9);
        assert_eq!(percentile(&v, 99.0), 10);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }

    #[test]
    fn conservation_identity() {
        let mut r = DeliveryReport {
            overlay: OverlaySpec::Baseline,
            fanned_out: 10,
            delivered_prompt: 5,
            delivered_delayed: 2,
            dropped: 1,
            undeliverable: 2,
            suspended_undeliverable: 1,
            attempts: 12,
            redelivery_attempts: 2,
            probes: 0,
            rejected_full: 3,
            rejected_down: 1,
            suspensions: 1,
            recovered_suspensions: 0,
            peak_inbox_depth: 4,
            peak_inbox_instance: 0,
            saturated_instances: 1,
            first_saturation_tick: 2,
            first_saturation_instance: 0,
            depth_p50: 1,
            depth_p90: 3,
            depth_p99: 4,
            mean_latency: 0.5,
            amplification: 1.2,
            end_tick: 20,
            time_to_drain: 4,
            drained: true,
            event_hash: 1,
        };
        assert!(r.conserved());
        assert_eq!(r.delivered(), 7);
        r.dropped = 0;
        assert!(!r.conserved());
    }

    #[test]
    fn report_round_trips_through_serde() {
        let r = DeliveryReport {
            overlay: OverlaySpec::TopAsOutage(5, 72, 144),
            fanned_out: 1,
            delivered_prompt: 1,
            delivered_delayed: 0,
            dropped: 0,
            undeliverable: 0,
            suspended_undeliverable: 0,
            attempts: 1,
            redelivery_attempts: 0,
            probes: 0,
            rejected_full: 0,
            rejected_down: 0,
            suspensions: 0,
            recovered_suspensions: 0,
            peak_inbox_depth: 1,
            peak_inbox_instance: 3,
            saturated_instances: 0,
            first_saturation_tick: -1,
            first_saturation_instance: -1,
            depth_p50: 0,
            depth_p90: 1,
            depth_p99: 1,
            mean_latency: 0.0,
            amplification: 1.0,
            end_tick: 288,
            time_to_drain: 0,
            drained: true,
            event_hash: 99,
        };
        let v = serde::Serialize::to_json_value(&r);
        let back: DeliveryReport = serde::Deserialize::from_json_value(&v).unwrap();
        assert_eq!(back, r);
    }
}
