//! The deterministic discrete-event core: a tick-synchronous BSP loop.
//!
//! Each tick runs four phases, every one either serial or sharded over
//! *disjoint* per-instance state with outputs re-concatenated in instance
//! order — so the transcript is bit-identical at any shard count:
//!
//! 1. **Fan-out** (serial): toots posted this tick become messages, one
//!    per (home → follower-instance) pair, `seq` assigned in canonical
//!    author order.
//! 2. **Phase S** (sharded by source): each live source emits attempts in
//!    fixed order — redelivery due, then probes (ascending destination),
//!    then new messages; anything aimed at a suspended destination parks.
//! 3. **Phase D** (sharded by destination): the outage overlay and the
//!    bounded inbox judge every attempt (stable-grouped by destination);
//!    live inboxes then service up to their rate.
//! 4. **Phase R** (sharded by source): verdicts (stable-grouped back by
//!    source) drive the retry/backoff/suspension state machines.
//!
//! Between phases, stable counting sorts regroup events; within a group
//! events keep the order the previous phase emitted them in.

use fediscope_model::schedule::OutageArena;
use fediscope_model::time::Epoch;
use fediscope_model::TootArena;

use super::events::{Attempt, EventDigest, Msg, Outcome, Verdict, PROBE_SEQ};
use super::fanout::FanoutArena;
use super::metrics::{percentile, DeliveryReport, SimRun, TickStat};
use super::queues::DestState;
use super::redelivery::{backoff_delay, RetryQueue};
use super::snapshot::{DestSnap, FedSimState, SourceSnap, SuspensionSnap};
use super::suspension::{SourceState, Suspension};
use super::FedSimConfig;

/// Run `f` over every state, split into `shards` contiguous chunks on
/// scoped threads; results come back in state order for *any* shard
/// count (chunks are contiguous and outputs are stitched chunk-major).
fn shard_map<S, R, F>(shards: usize, states: &mut [S], f: F) -> Vec<R>
where
    S: Send,
    R: Send,
    F: Fn(usize, &mut S) -> R + Sync,
{
    let n = states.len();
    if shards <= 1 || n <= 1 {
        return states.iter_mut().enumerate().map(|(i, s)| f(i, s)).collect();
    }
    let chunk = n.div_ceil(shards.min(n));
    let mut per_chunk: Vec<Vec<R>> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = states
            .chunks_mut(chunk)
            .enumerate()
            .map(|(c, slice)| {
                scope.spawn(move || {
                    slice
                        .iter_mut()
                        .enumerate()
                        .map(|(i, s)| f(c * chunk + i, s))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    });
    let mut flat = Vec::with_capacity(n);
    for v in &mut per_chunk {
        flat.append(v);
    }
    flat
}

/// Stable counting sort of `items` into a CSR grouped by `key` (< `n`):
/// returns `(offsets, grouped)` with `offsets.len() == n + 1`; within a
/// group, items keep their input order.
fn csr_group<T: Copy, K: Fn(&T) -> u32>(n: usize, items: &[T], key: K) -> (Vec<u32>, Vec<T>) {
    let mut counts = vec![0u32; n];
    for it in items {
        counts[key(it) as usize] += 1;
    }
    let mut offsets = vec![0u32; n + 1];
    let mut acc = 0u32;
    for i in 0..n {
        offsets[i] = acc;
        acc += counts[i];
    }
    offsets[n] = acc;
    let Some(&first) = items.first() else {
        return (offsets, Vec::new());
    };
    // Scatter without uninitialised memory: fill with a copy of the first
    // item, then overwrite every slot via the cursor walk.
    let mut grouped = vec![first; items.len()];
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    for &it in items {
        let at = &mut cursor[key(&it) as usize];
        grouped[*at as usize] = it;
        *at += 1;
    }
    (offsets, grouped)
}

/// The federation delivery simulator. Construct with [`FedSim::new`],
/// consume with [`FedSim::run`].
pub struct FedSim<'a> {
    cfg: FedSimConfig,
    fanout: &'a FanoutArena,
    toots: &'a TootArena,
    outages: OutageArena,
    sources: Vec<SourceState>,
    dests: Vec<DestState>,
    tick: u32,
    horizon: u32,
    total_ticks: u32,
    next_seq: u32,
    fanned_out: u64,
    delivered_total: u64,
    dropped_total: u64,
    probes_total: u64,
    attempts_total: u64,
    rejected_full_total: u64,
    rejected_down_total: u64,
    series: Vec<TickStat>,
}

impl<'a> FedSim<'a> {
    /// Assemble a simulator over a fan-out topology, a toot arena, the
    /// per-instance local user counts (scales inbox service rates), and
    /// an outage overlay on the simulation clock (see
    /// [`super::overlay::build`]).
    pub fn new(
        cfg: FedSimConfig,
        fanout: &'a FanoutArena,
        toots: &'a TootArena,
        dest_users: &[u32],
        outages: OutageArena,
    ) -> Self {
        let n = fanout.n_instances();
        assert_eq!(dest_users.len(), n, "one user count per instance");
        assert_eq!(outages.len(), n, "overlay must cover every instance");
        let horizon = toots.horizon();
        let total_ticks = horizon + cfg.drain_epochs;
        let dests = dest_users
            .iter()
            .map(|&u| DestState::new(u, cfg.service_per_kuser, cfg.min_service, cfg.backlog_ticks))
            .collect();
        FedSim {
            sources: (0..n).map(|_| SourceState::default()).collect(),
            dests,
            tick: 0,
            horizon,
            total_ticks,
            next_seq: 0,
            fanned_out: 0,
            delivered_total: 0,
            dropped_total: 0,
            probes_total: 0,
            attempts_total: 0,
            rejected_full_total: 0,
            rejected_down_total: 0,
            series: Vec::with_capacity(total_ticks as usize),
            cfg,
            fanout,
            toots,
            outages,
        }
    }

    /// Messages in flight (created but not yet delivered or dropped).
    fn backlog(&self) -> u64 {
        self.fanned_out - self.delivered_total - self.dropped_total
    }

    /// Ticks completed so far (the simulator's virtual clock).
    pub fn tick(&self) -> u32 {
        self.tick
    }

    /// True when [`run`](Self::run) would stop: the total tick budget is
    /// spent, or the toot horizon has passed and every queue is empty.
    pub fn is_done(&self) -> bool {
        self.tick >= self.total_ticks || (self.tick >= self.horizon && self.backlog() == 0)
    }

    /// Advance exactly one tick — the checkpointing driver's entry point.
    /// `run` is `step_tick` until `is_done`, then [`finish`](Self::finish);
    /// interleaving snapshots between steps cannot change the stream.
    pub fn step_tick(&mut self) {
        self.step();
    }

    /// Advance one tick through all four phases.
    fn step(&mut self) {
        let t = self.tick;
        let n = self.fanout.n_instances();
        let shards = (self.cfg.shards as usize).max(1);
        let mut stat = TickStat::default();

        // Phase 1 — fan-out (serial; seq numbers are globally ordered).
        let mut fresh: Vec<(u32, Msg)> = Vec::new();
        for &author in self.toots.authors_at(t) {
            let src = self.fanout.home(author);
            if !self.outages.view(src as usize).is_up(Epoch(t)) {
                continue; // the author's instance is down: nothing is posted
            }
            for &dst in self.fanout.dsts(author) {
                fresh.push((src, Msg { seq: self.next_seq, dst, created: t, attempts: 0 }));
                self.next_seq += 1;
            }
        }
        stat.fanned = fresh.len() as u32;
        self.fanned_out += fresh.len() as u64;
        let (new_off, new_by_src) = csr_group(n, &fresh, |&(src, _)| src);

        // Phase S — sharded by source: emit attempts in canonical order.
        let outages = &self.outages;
        let cfg = &self.cfg;
        let emitted: Vec<Vec<Attempt>> = shard_map(shards, &mut self.sources, |i, s| {
            let mut out: Vec<Attempt> = Vec::new();
            if !outages.view(i).is_up(Epoch(t)) {
                return out; // a down instance's delivery workers are paused
            }
            while let Some(msg) = s.retry.pop_due(t) {
                if s.is_suspended(msg.dst) {
                    s.park(msg);
                } else {
                    s.redelivery_attempts += 1;
                    out.push(Attempt { src: i as u32, msg, probe: false });
                }
            }
            for (&dst, susp) in s.suspended.iter_mut() {
                if susp.probe_due <= t {
                    susp.probe_due = t + cfg.probe_interval;
                    let msg = Msg { seq: PROBE_SEQ, dst, created: t, attempts: 0 };
                    out.push(Attempt { src: i as u32, msg, probe: true });
                }
            }
            for &(_, msg) in
                &new_by_src[new_off[i] as usize..new_off[i + 1] as usize]
            {
                if s.is_suspended(msg.dst) {
                    s.park(msg);
                } else {
                    out.push(Attempt { src: i as u32, msg, probe: false });
                }
            }
            out
        });
        let attempts: Vec<Attempt> = emitted.into_iter().flatten().collect();
        let probes = attempts.iter().filter(|a| a.probe).count() as u32;
        stat.probes = probes;
        stat.attempts = attempts.len() as u32 - probes;
        self.probes_total += probes as u64;
        self.attempts_total += stat.attempts as u64;

        // Phase D — sharded by destination: admit + service.
        let (att_off, att_by_dst) = csr_group(n, &attempts, |a| a.msg.dst);
        let dest_out: Vec<(Vec<Outcome>, u32)> =
            shard_map(shards, &mut self.dests, |j, d| {
                let down = !outages.view(j).is_up(Epoch(t));
                let slice = &att_by_dst[att_off[j] as usize..att_off[j + 1] as usize];
                let mut outs = Vec::with_capacity(slice.len());
                for &attempt in slice {
                    let verdict = d.admit(t, attempt.msg, attempt.probe, down);
                    outs.push(Outcome { attempt, verdict });
                }
                let (delivered, _) = if down { (0, 0) } else { d.service(t) };
                (outs, delivered)
            });
        let mut outcomes: Vec<Outcome> = Vec::with_capacity(attempts.len());
        for (outs, delivered) in dest_out {
            stat.delivered += delivered;
            outcomes.extend(outs);
        }
        self.delivered_total += stat.delivered as u64;
        for o in &outcomes {
            match o.verdict {
                Verdict::Accepted => stat.accepted += 1,
                Verdict::RejectedFull => stat.rejected_full += 1,
                Verdict::RejectedDown => stat.rejected_down += 1,
            }
        }
        self.rejected_full_total += stat.rejected_full as u64;
        self.rejected_down_total += stat.rejected_down as u64;

        // Phase R — sharded by source: verdicts drive retry/suspension.
        let (out_off, out_by_src) = csr_group(n, &outcomes, |o| o.attempt.src);
        let dropped: Vec<u32> = shard_map(shards, &mut self.sources, |i, s| {
            let slice = &out_by_src[out_off[i] as usize..out_off[i + 1] as usize];
            let mut dropped_now = 0u32;
            for &Outcome { attempt, verdict } in slice {
                let dst = attempt.msg.dst;
                s.digest.fold_all(&[
                    t as u64,
                    dst as u64,
                    attempt.msg.seq as u64,
                    attempt.msg.attempts as u64,
                    attempt.probe as u64,
                    verdict.code(),
                ]);
                if attempt.probe {
                    if verdict == Verdict::Accepted {
                        // Reachable again: catch-up burst next tick.
                        s.unsuspend(dst, t + 1);
                    }
                    continue; // failed probe: the next one is already scheduled
                }
                match verdict {
                    Verdict::Accepted => s.breaker_reset(dst),
                    Verdict::RejectedFull | Verdict::RejectedDown => {
                        let mut msg = attempt.msg;
                        msg.attempts += 1;
                        if msg.attempts >= cfg.max_attempts {
                            s.dropped += 1;
                            dropped_now += 1;
                        } else if s.is_suspended(dst) {
                            // an earlier outcome this tick tripped the breaker
                            s.park(msg);
                        } else if s.breaker_trip(dst) >= cfg.suspend_after {
                            s.suspend(dst, msg, t + cfg.probe_interval);
                        } else {
                            let delay = backoff_delay(
                                cfg.backoff_base,
                                cfg.backoff_cap,
                                cfg.jitter,
                                cfg.seed,
                                msg,
                            );
                            s.retry.push(t + delay, msg);
                        }
                    }
                }
            }
            dropped_now
        });
        stat.dropped = dropped.iter().sum();
        self.dropped_total += stat.dropped as u64;
        stat.backlog = self.backlog();
        self.series.push(stat);
        self.tick += 1;
    }

    /// Run to completion: through the toot horizon, then drain until all
    /// queues empty or the drain budget expires.
    pub fn run(mut self) -> SimRun {
        while !self.is_done() {
            self.step();
        }
        self.finish()
    }

    /// Capture the full resumable state: every counter, queue, breaker,
    /// suspension, digest accumulator, and the series so far. A simulator
    /// rebuilt via [`resume`](Self::resume) from this state steps
    /// bit-identically to one that never stopped.
    pub fn capture(&self) -> FedSimState {
        FedSimState {
            tick: self.tick,
            next_seq: self.next_seq,
            fanned_out: self.fanned_out,
            delivered_total: self.delivered_total,
            dropped_total: self.dropped_total,
            probes_total: self.probes_total,
            attempts_total: self.attempts_total,
            rejected_full_total: self.rejected_full_total,
            rejected_down_total: self.rejected_down_total,
            series: self.series.clone(),
            sources: self
                .sources
                .iter()
                .map(|s| SourceSnap {
                    retry: s.retry.entries(),
                    suspended: s
                        .suspended
                        .iter()
                        .map(|(&dst, susp)| {
                            (dst, SuspensionSnap {
                                parked: susp.parked.clone(),
                                probe_due: susp.probe_due,
                            })
                        })
                        .collect(),
                    breaker: s.breaker.iter().map(|(&d, &c)| (d, c)).collect(),
                    dropped: s.dropped,
                    redelivery_attempts: s.redelivery_attempts,
                    suspensions: s.suspensions,
                    recovered: s.recovered,
                    digest: s.digest.value(),
                })
                .collect(),
            dests: self
                .dests
                .iter()
                .map(|d| DestSnap {
                    inbox: d.inbox.clone(),
                    peak_depth: d.peak_depth,
                    first_saturated: d.first_saturated,
                    delivered_prompt: d.delivered_prompt,
                    delivered_delayed: d.delivered_delayed,
                    latency_sum: d.latency_sum,
                    digest: d.digest.value(),
                })
                .collect(),
        }
    }

    /// Rebuild a mid-run simulator from a captured [`FedSimState`] on a
    /// fresh process/executor. Takes the same immutable context `new`
    /// does (config, topology, toots, user counts, and the outage overlay
    /// — all deterministically reconstructible from the config) plus the
    /// snapshot; derived fields (inbox capacity/service rates, horizon)
    /// are recomputed, so the snapshot carries only true state.
    pub fn resume(
        cfg: FedSimConfig,
        fanout: &'a FanoutArena,
        toots: &'a TootArena,
        dest_users: &[u32],
        outages: OutageArena,
        state: &FedSimState,
    ) -> Self {
        let mut sim = FedSim::new(cfg, fanout, toots, dest_users, outages);
        let n = sim.fanout.n_instances();
        assert_eq!(state.sources.len(), n, "snapshot is for a different world");
        assert_eq!(state.dests.len(), n, "snapshot is for a different world");
        assert!(state.tick <= sim.total_ticks, "snapshot past the tick budget");

        sim.tick = state.tick;
        sim.next_seq = state.next_seq;
        sim.fanned_out = state.fanned_out;
        sim.delivered_total = state.delivered_total;
        sim.dropped_total = state.dropped_total;
        sim.probes_total = state.probes_total;
        sim.attempts_total = state.attempts_total;
        sim.rejected_full_total = state.rejected_full_total;
        sim.rejected_down_total = state.rejected_down_total;
        sim.series = state.series.clone();
        for (s, snap) in sim.sources.iter_mut().zip(&state.sources) {
            s.retry = RetryQueue::from_entries(snap.retry.iter().copied());
            s.suspended = snap
                .suspended
                .iter()
                .map(|(&dst, ss)| {
                    (dst, Suspension { parked: ss.parked.clone(), probe_due: ss.probe_due })
                })
                .collect();
            s.breaker = snap.breaker.iter().map(|(&d, &c)| (d, c)).collect();
            s.dropped = snap.dropped;
            s.redelivery_attempts = snap.redelivery_attempts;
            s.suspensions = snap.suspensions;
            s.recovered = snap.recovered;
            s.digest = EventDigest::restore(snap.digest);
        }
        for (d, snap) in sim.dests.iter_mut().zip(&state.dests) {
            d.inbox = snap.inbox.clone();
            d.peak_depth = snap.peak_depth;
            d.first_saturated = snap.first_saturated;
            d.delivered_prompt = snap.delivered_prompt;
            d.delivered_delayed = snap.delivered_delayed;
            d.latency_sum = snap.latency_sum;
            d.digest = EventDigest::restore(snap.digest);
        }
        sim
    }

    /// Finalize into the report + series (the tail of [`run`](Self::run);
    /// public so a checkpoint-driven run can finish the same way).
    pub fn finish(self) -> SimRun {
        let drained = self.backlog() == 0;
        let time_to_drain = if drained {
            (self.tick.max(self.horizon) - self.horizon) as i64
        } else {
            -1
        };

        let mut undeliverable = 0u64;
        let mut suspended_undeliverable = 0u64;
        let mut dropped = 0u64;
        let mut redelivery_attempts = 0u64;
        let mut suspensions = 0u64;
        let mut recovered = 0u64;
        let mut hash = super::events::EventDigest::default();
        for s in &self.sources {
            undeliverable += s.backlog() as u64;
            suspended_undeliverable += s.parked_len() as u64;
            dropped += s.dropped;
            redelivery_attempts += s.redelivery_attempts;
            suspensions += s.suspensions;
            recovered += s.recovered;
            hash.fold(s.digest.value());
        }

        let mut delivered_prompt = 0u64;
        let mut delivered_delayed = 0u64;
        let mut latency_sum = 0u64;
        let mut peak_depth = 0u32;
        let mut peak_instance = 0u32;
        let mut saturated = 0u32;
        let mut first_sat: Option<(u32, u32)> = None;
        let mut depths: Vec<u32> = Vec::with_capacity(self.dests.len());
        let mut delivered_per_instance: Vec<u64> = Vec::with_capacity(self.dests.len());
        for (j, d) in self.dests.iter().enumerate() {
            undeliverable += d.backlog() as u64;
            delivered_prompt += d.delivered_prompt;
            delivered_delayed += d.delivered_delayed;
            latency_sum += d.latency_sum;
            delivered_per_instance.push(d.delivered_prompt + d.delivered_delayed);
            depths.push(d.peak_depth);
            if d.peak_depth > peak_depth {
                peak_depth = d.peak_depth;
                peak_instance = j as u32;
            }
            if let Some(t0) = d.first_saturated {
                saturated += 1;
                if first_sat.is_none_or(|(bt, _)| t0 < bt) {
                    first_sat = Some((t0, j as u32));
                }
            }
            hash.fold(d.digest.value());
        }
        depths.sort_unstable();
        let delivered = delivered_prompt + delivered_delayed;

        let report = DeliveryReport {
            overlay: self.cfg.overlay.clone(),
            fanned_out: self.fanned_out,
            delivered_prompt,
            delivered_delayed,
            dropped,
            undeliverable,
            suspended_undeliverable,
            attempts: self.attempts_total,
            redelivery_attempts,
            probes: self.probes_total,
            rejected_full: self.rejected_full_total,
            rejected_down: self.rejected_down_total,
            suspensions,
            recovered_suspensions: recovered,
            peak_inbox_depth: peak_depth,
            peak_inbox_instance: peak_instance,
            saturated_instances: saturated,
            first_saturation_tick: first_sat.map_or(-1, |(t, _)| t as i64),
            first_saturation_instance: first_sat.map_or(-1, |(_, j)| j as i64),
            depth_p50: percentile(&depths, 50.0),
            depth_p90: percentile(&depths, 90.0),
            depth_p99: percentile(&depths, 99.0),
            mean_latency: if delivered == 0 {
                0.0
            } else {
                latency_sum as f64 / delivered as f64
            },
            amplification: if self.fanned_out == 0 {
                0.0
            } else {
                self.attempts_total as f64 / self.fanned_out as f64
            },
            end_tick: self.tick,
            time_to_drain,
            drained,
            event_hash: hash.value(),
        };
        debug_assert!(report.conserved(), "conservation violated: {report:?}");
        SimRun { report, series: self.series, delivered_per_instance }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fedsim::OverlaySpec;

    /// Tiny hand-built topology: 3 instances, user u on instance u, user 0
    /// followed by users 1 and 2.
    fn tiny() -> (FanoutArena, TootArena) {
        let fanout = FanoutArena::from_follows(3, vec![0, 1, 2], &[(1, 0), (2, 0)]);
        // user 0 toots at ticks 0 and 1
        let toots = TootArena::from_events(4, [(0, 0), (1, 0)]);
        (fanout, toots)
    }

    fn arena_all_up(n: usize, total: u32) -> OutageArena {
        OutageArena::from_unsorted(&vec![(Epoch(0), Epoch(total)); n], [])
    }

    #[test]
    fn clean_run_delivers_everything_promptly() {
        let cfg = FedSimConfig::new(1);
        let (fanout, toots) = tiny();
        let total = toots.horizon() + cfg.drain_epochs;
        let sim = FedSim::new(cfg, &fanout, &toots, &[10, 10, 10], arena_all_up(3, total));
        let SimRun { report, series, delivered_per_instance } = sim.run();
        assert_eq!(report.fanned_out, 4); // 2 toots × 2 follower instances
        assert_eq!(report.delivered_prompt, 4);
        assert_eq!(report.dropped, 0);
        assert_eq!(report.undeliverable, 0);
        assert!(report.conserved());
        assert!(report.drained);
        assert_eq!(report.amplification, 1.0);
        assert_eq!(series[0].fanned, 2);
        assert_eq!(delivered_per_instance, vec![0, 2, 2]);
    }

    #[test]
    fn outage_triggers_retries_then_recovery() {
        let mut cfg = FedSimConfig::new(2);
        cfg.jitter = 0;
        cfg.overlay = OverlaySpec::Baseline; // overlay arena built by hand below
        let fanout = FanoutArena::from_follows(2, vec![0, 1], &[(1, 0)]);
        let toots = TootArena::from_events(8, [(0, 0)]);
        let total = toots.horizon() + cfg.drain_epochs;
        // instance 1 down for ticks [0, 3)
        let arena = OutageArena::from_unsorted(
            &[(Epoch(0), Epoch(total)); 2],
            [(1u32, Epoch(0), Epoch(3), fediscope_model::OutageCause::AsFailure)],
        );
        let sim = FedSim::new(cfg, &fanout, &toots, &[5, 5], arena);
        let report = sim.run().report;
        assert_eq!(report.fanned_out, 1);
        assert_eq!(report.delivered_prompt, 0);
        assert_eq!(report.delivered_delayed, 1, "recovered via redelivery");
        assert!(report.redelivery_attempts >= 1);
        assert!(report.rejected_down >= 1);
        assert!(report.conserved());
        assert!(report.drained);
    }

    #[test]
    fn permanent_outage_suspends_and_accounts_parked() {
        let mut cfg = FedSimConfig::new(3);
        cfg.suspend_after = 2;
        cfg.max_attempts = 100; // force the suspension path, not drops
        cfg.drain_epochs = 32;
        let fanout = FanoutArena::from_follows(2, vec![0, 1], &[(1, 0)]);
        let toots = TootArena::from_events(8, [(0, 0), (1, 0), (2, 0), (3, 0)]);
        let total = toots.horizon() + cfg.drain_epochs;
        let arena = OutageArena::from_unsorted(
            &[(Epoch(0), Epoch(total)); 2],
            [(1u32, Epoch(0), Epoch(total), fediscope_model::OutageCause::Organic)],
        );
        let sim = FedSim::new(cfg, &fanout, &toots, &[5, 5], arena);
        let report = sim.run().report;
        assert_eq!(report.suspensions, 1);
        assert_eq!(report.recovered_suspensions, 0);
        assert!(report.suspended_undeliverable >= 1, "parked mail stays accounted");
        assert_eq!(report.delivered_prompt + report.delivered_delayed, 0);
        assert!(report.conserved());
        assert!(!report.drained);
        assert!(report.probes > 0, "probes keep checking");
    }

    #[test]
    fn backpressure_delays_but_conserves() {
        let mut cfg = FedSimConfig::new(4);
        cfg.min_service = 1;
        cfg.backlog_ticks = 1; // capacity 1: the second same-tick message bounces
        cfg.jitter = 0;
        let fanout = FanoutArena::from_follows(3, vec![0, 1, 2], &[(2, 0), (2, 1)]);
        // both user 0 and user 1 toot at tick 0 → two msgs to instance 2
        let toots = TootArena::from_events(4, [(0, 0), (0, 1)]);
        let total = toots.horizon() + cfg.drain_epochs;
        let sim = FedSim::new(cfg, &fanout, &toots, &[1, 1, 1], arena_all_up(3, total));
        let report = sim.run().report;
        assert_eq!(report.fanned_out, 2);
        assert!(report.rejected_full >= 1, "bounded inbox pushed back");
        assert_eq!(report.delivered(), 2, "retry drains the spillover");
        assert!(report.conserved());
        assert!(report.amplification > 1.0);
    }

    #[test]
    fn shard_counts_are_bit_identical() {
        let (fanout, toots) = tiny();
        let base = {
            let cfg = FedSimConfig::new(7);
            let total = toots.horizon() + cfg.drain_epochs;
            FedSim::new(cfg, &fanout, &toots, &[10, 10, 10], arena_all_up(3, total)).run()
        };
        for shards in [2u32, 3, 8] {
            let mut cfg = FedSimConfig::new(7);
            cfg.shards = shards;
            let total = toots.horizon() + cfg.drain_epochs;
            let run =
                FedSim::new(cfg, &fanout, &toots, &[10, 10, 10], arena_all_up(3, total)).run();
            assert_eq!(run, base, "run differs at {shards} shards");
        }
    }

    #[test]
    fn csr_group_is_stable() {
        let items = [(2u32, 'a'), (0, 'b'), (2, 'c'), (1, 'd')];
        let (off, grouped) = csr_group(3, &items, |&(k, _)| k);
        assert_eq!(off, vec![0, 1, 2, 4]);
        assert_eq!(grouped, vec![(0, 'b'), (1, 'd'), (2, 'a'), (2, 'c')]);
        let (off_e, grouped_e) = csr_group::<(u32, char), _>(3, &[], |&(k, _)| k);
        assert_eq!(off_e, vec![0, 0, 0, 0]);
        assert!(grouped_e.is_empty());
    }
}
