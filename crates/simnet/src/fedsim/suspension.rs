//! Federation-level circuit breaker: unreachable-instance suspension.
//!
//! After `suspend_after` consecutive failures toward one destination, a
//! source stops attempting deliveries to it (Mastodon marks the instance
//! unreachable): messages *park* instead of burning retry attempts, and a
//! periodic zero-footprint probe checks for recovery. A successful probe
//! flushes everything parked into the redelivery queue as a catch-up
//! burst.
//!
//! [`SourceState`] bundles the whole sender side for one instance —
//! retry queue, suspension table, failure breaker, drop accounting — and
//! is the unit of sharding for phases S and R.

use std::collections::{BTreeMap, HashMap, VecDeque};

use super::events::{EventDigest, Msg};
use super::redelivery::RetryQueue;

/// One suspended destination, as seen from one source.
#[derive(Debug, Clone)]
pub struct Suspension {
    /// Messages held back while the destination is unreachable, in park
    /// order.
    pub parked: VecDeque<Msg>,
    /// Next tick to send a reachability probe.
    pub probe_due: u32,
}

/// Mutable per-source-instance state (sharded by instance in phases S/R).
#[derive(Debug, Clone, Default)]
pub struct SourceState {
    /// Redelivery schedule for failed (non-suspended) messages.
    pub retry: RetryQueue,
    /// Suspended destinations, keyed by instance id (BTreeMap: probes are
    /// emitted in ascending-destination order, deterministically).
    pub suspended: BTreeMap<u32, Suspension>,
    /// Consecutive-failure counts per destination (lookup only — never
    /// iterated, so the hash map cannot leak nondeterminism).
    pub breaker: HashMap<u32, u32>,
    /// Messages abandoned after exhausting their delivery attempts.
    pub dropped: u64,
    /// Non-first delivery attempts emitted (redelivery traffic).
    pub redelivery_attempts: u64,
    /// Suspensions ever entered.
    pub suspensions: u64,
    /// Suspensions lifted by a successful probe.
    pub recovered: u64,
    /// Transcript digest of every outcome this source processed.
    pub digest: EventDigest,
}

impl SourceState {
    /// Is `dst` currently suspended?
    pub fn is_suspended(&self, dst: u32) -> bool {
        self.suspended.contains_key(&dst)
    }

    /// Park `msg` behind its suspended destination. Panics if the
    /// destination is not suspended (callers must check first).
    pub fn park(&mut self, msg: Msg) {
        self.suspended
            .get_mut(&msg.dst)
            .expect("park requires an active suspension")
            .parked
            .push_back(msg);
    }

    /// Enter suspension for `dst` with `msg` as the first parked message.
    pub fn suspend(&mut self, dst: u32, msg: Msg, probe_due: u32) {
        let prev = self.suspended.insert(
            dst,
            Suspension { parked: VecDeque::from([msg]), probe_due },
        );
        debug_assert!(prev.is_none(), "double suspension for dst {dst}");
        self.suspensions += 1;
    }

    /// Lift the suspension of `dst` (a probe succeeded): flush every
    /// parked message into the retry queue due `resume_tick` — the
    /// catch-up burst — and reset the breaker.
    pub fn unsuspend(&mut self, dst: u32, resume_tick: u32) {
        let susp = self.suspended.remove(&dst).expect("unsuspend requires suspension");
        for msg in susp.parked {
            self.retry.push(resume_tick, msg);
        }
        self.breaker.insert(dst, 0);
        self.recovered += 1;
    }

    /// Record one failure toward `dst`; returns the new consecutive count.
    pub fn breaker_trip(&mut self, dst: u32) -> u32 {
        let c = self.breaker.entry(dst).or_insert(0);
        *c += 1;
        *c
    }

    /// Record a success toward `dst` (resets the consecutive count).
    pub fn breaker_reset(&mut self, dst: u32) {
        self.breaker.insert(dst, 0);
    }

    /// Messages currently parked behind suspended destinations.
    pub fn parked_len(&self) -> usize {
        self.suspended.values().map(|s| s.parked.len()).sum()
    }

    /// All sender-held messages (retry + parked).
    pub fn backlog(&self) -> usize {
        self.retry.len() + self.parked_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(seq: u32, dst: u32) -> Msg {
        Msg { seq, dst, created: 0, attempts: 1 }
    }

    #[test]
    fn suspend_park_unsuspend_cycle() {
        let mut s = SourceState::default();
        assert!(!s.is_suspended(3));
        s.suspend(3, msg(0, 3), 10);
        assert!(s.is_suspended(3));
        s.park(msg(1, 3));
        s.park(msg(2, 3));
        assert_eq!(s.parked_len(), 3);
        s.unsuspend(3, 21);
        assert!(!s.is_suspended(3));
        assert_eq!(s.parked_len(), 0);
        assert_eq!(s.retry.len(), 3, "catch-up burst lands in retry");
        // burst pops in seq order at the resume tick
        assert_eq!(s.retry.pop_due(21).unwrap().seq, 0);
        assert_eq!(s.retry.pop_due(21).unwrap().seq, 1);
        assert_eq!((s.suspensions, s.recovered), (1, 1));
    }

    #[test]
    fn breaker_counts_consecutive_failures() {
        let mut s = SourceState::default();
        assert_eq!(s.breaker_trip(5), 1);
        assert_eq!(s.breaker_trip(5), 2);
        s.breaker_reset(5);
        assert_eq!(s.breaker_trip(5), 1);
        assert_eq!(s.breaker_trip(6), 1, "independent per destination");
    }
}
