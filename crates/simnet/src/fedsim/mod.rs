//! `fedsim` — the deterministic federation delivery simulator.
//!
//! Reproduces the paper's §3 load-concentration finding *dynamically*:
//! the tier's users' toot streams are pushed through ActivityPub-style
//! fan-out (toot → home instance → each follower's instance, deduplicated
//! per instance pair) into bounded per-instance inboxes with service
//! rates, sender-visible backpressure, sidekiq-style redelivery with
//! capped exponential backoff, and a federation-level circuit breaker
//! (suspension + probes + catch-up bursts). The §4 outage schedules and
//! §5 removal orders overlay onto the live system via
//! [`overlay`], answering the robustness question the static analyses
//! can't: does a top-5-AS outage merely *delay* the federation, or melt
//! it?
//!
//! Module map — see `crates/simnet/README.md` for the state machines:
//! - [`events`]: messages, attempts, verdicts, the transcript digest,
//! - [`fanout`]: the precompiled author → follower-instances CSR,
//! - [`queues`]: bounded destination inboxes + service,
//! - [`redelivery`]: the deterministic retry heap + backoff schedule,
//! - [`suspension`]: the circuit breaker and parked mail,
//! - [`metrics`]: per-tick series and the conservation-checked report,
//! - [`overlay`]: §4/§5 schedules rebased onto the simulation clock,
//! - [`engine`]: the tick-synchronous sharded BSP loop,
//! - [`snapshot`]: checkpoint/resume state (see `crates/recover`) with
//!   the crash-then-resume ≡ uninterrupted bit-identity guarantee.
//!
//! **Determinism contract**: same seed, same world, same config ⇒
//! bit-identical per-tick series, report, and `event_hash` at any shard
//! or thread count. Enforced by `tests/fedsim.rs` proptests and the
//! `bench_fedsim` `identical_output` gate.

pub mod engine;
pub mod events;
pub mod fanout;
pub mod metrics;
pub mod overlay;
pub mod queues;
pub mod redelivery;
pub mod snapshot;
pub mod suspension;

pub use engine::FedSim;
pub use events::{Attempt, EventDigest, Msg, Outcome, Verdict, PROBE_SEQ};
pub use fanout::FanoutArena;
pub use metrics::{DeliveryReport, SimRun, TickStat};
pub use queues::DestState;
pub use redelivery::{backoff_delay, RetryQueue};
pub use snapshot::{resume_or_restart, FedSimState, RecoveryInfo};
pub use suspension::{SourceState, Suspension};

use fediscope_model::ScaleTier;
pub use fediscope_replication::scenario::ScenarioSpec;
use serde::{Deserialize, Serialize};

/// Which outage overlay drives a run (serialized into bench records; the
/// tuple variants exercise the vendored serde derive's tuple support).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OverlaySpec {
    /// No failures: the clean load-concentration run.
    Baseline,
    /// `(n_ases, start_tick, end_tick)`: the §4 Table-1 scenario — the
    /// top-`n` user-hosting ASes go dark for the window.
    TopAsOutage(u32, u32, u32),
    /// `(n_instances, start_tick)`: the §5 removal order — the top-`n`
    /// toot-hosting instances die permanently at `start_tick`.
    TopInstanceRemoval(u32, u32),
    /// `(spec, start_tick, step_ticks)`: a compiled correlated-failure
    /// scenario from the batch sweep's vocabulary — step `k` of the
    /// scenario's removal plan goes (permanently) dark at
    /// `start_tick + k * step_ticks`, with intervals tagged by the
    /// scenario's [`OutageCause`](fediscope_model::schedule::OutageCause).
    Scenario(ScenarioSpec, u32, u32),
}

/// Simulator knobs. Everything that shapes behaviour is here and
/// serializable, so a bench record fully identifies its run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FedSimConfig {
    /// Master seed (drives retry jitter; world/toot RNG is upstream).
    pub seed: u64,
    /// State shards per phase (1 = serial). Output is identical at any
    /// value.
    pub shards: u32,
    /// Ticks past the toot horizon the simulator may keep draining.
    pub drain_epochs: u32,
    /// Inbox service rate per 1000 local users, per tick.
    pub service_per_kuser: u32,
    /// Service-rate floor for tiny instances.
    pub min_service: u32,
    /// Inbox capacity = service rate × this many ticks of backlog.
    pub backlog_ticks: u32,
    /// Delivery attempts per message before it is dropped.
    pub max_attempts: u32,
    /// First retry delay in ticks.
    pub backoff_base: u32,
    /// Retry-delay cap in ticks.
    pub backoff_cap: u32,
    /// Max deterministic jitter added to each retry delay.
    pub jitter: u32,
    /// Consecutive failures to one destination before suspension.
    pub suspend_after: u32,
    /// Ticks between reachability probes of a suspended destination.
    pub probe_interval: u32,
    /// The outage overlay.
    pub overlay: OverlaySpec,
}

impl FedSimConfig {
    /// Defaults calibrated for the repo's tiers: service rates that keep a
    /// healthy federation prompt, with enough headroom pressure that
    /// outage overlays visibly queue and retry.
    pub fn new(seed: u64) -> Self {
        FedSimConfig {
            seed,
            shards: 1,
            drain_epochs: 2 * fediscope_model::EPOCHS_PER_DAY,
            service_per_kuser: 100,
            min_service: 6,
            backlog_ticks: 8,
            max_attempts: 8,
            backoff_base: 1,
            backoff_cap: 64,
            jitter: 2,
            suspend_after: 4,
            probe_interval: 8,
            overlay: OverlaySpec::Baseline,
        }
    }

    /// Tier-shaped config (drain budget from the tier's knobs).
    pub fn for_tier(tier: ScaleTier, seed: u64) -> Self {
        let mut cfg = Self::new(seed);
        cfg.drain_epochs = tier.fedsim_drain_epochs();
        cfg
    }

    /// Overlay this config with the tier's headline degradation scenario:
    /// the top-`fedsim_outage_ases` ASes down for the tier's window.
    pub fn with_top_as_outage(mut self, tier: ScaleTier) -> Self {
        let (start, end) = tier.fedsim_outage_window();
        self.overlay = OverlaySpec::TopAsOutage(tier.fedsim_outage_ases() as u32, start, end);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlay_spec_round_trips_tuple_variants() {
        for spec in [
            OverlaySpec::Baseline,
            OverlaySpec::TopAsOutage(5, 72, 144),
            OverlaySpec::TopInstanceRemoval(10, 100),
            OverlaySpec::Scenario(ScenarioSpec::AsSharedFate(10), 72, 12),
            OverlaySpec::Scenario(ScenarioSpec::CertCascade(8), 0, 36),
            OverlaySpec::Scenario(ScenarioSpec::ChurnRebirth(16), 144, 6),
        ] {
            let v = serde::Serialize::to_json_value(&spec);
            let back: OverlaySpec = serde::Deserialize::from_json_value(&v).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn config_round_trips_and_tier_shapes_it() {
        let cfg = FedSimConfig::for_tier(ScaleTier::Mid, 9).with_top_as_outage(ScaleTier::Mid);
        let v = serde::Serialize::to_json_value(&cfg);
        let back: FedSimConfig = serde::Deserialize::from_json_value(&v).unwrap();
        assert_eq!(back, cfg);
        assert_eq!(back.overlay, OverlaySpec::TopAsOutage(5, 72, 144));
    }
}
