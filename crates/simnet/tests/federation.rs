//! Socket-level federation tests: WebFinger discovery, actor fetch, and a
//! Follow→Accept exchange over real TCP — the §2 subscription flow.

use fediscope_activitypub::actor::actor_id;
use fediscope_activitypub::{Activity, WebFingerDoc};
use fediscope_httpwire::{Client, Method, Request};
use fediscope_model::schedule::AvailabilitySchedule;
use fediscope_simnet::{launch, FaultPlan};
use fediscope_worldgen::{Generator, WorldConfig};
use std::sync::Arc;

async fn boot() -> (Arc<fediscope_model::world::World>, fediscope_simnet::SimNetHandle) {
    let mut cfg = WorldConfig::tiny(606);
    cfg.n_instances = 6;
    cfg.n_users = 120;
    let mut world = Generator::generate_world(cfg);
    for s in &mut world.schedules {
        *s = AvailabilitySchedule::always_up();
    }
    let world = Arc::new(world);
    let net = launch(world.clone(), FaultPlan::default(), 2).await.unwrap();
    (world, net)
}

#[tokio::test]
async fn webfinger_then_actor_then_follow() {
    let (world, net) = boot().await;
    let client = Client::default();

    // pick a cross-instance pair (a follows b in ground truth)
    let &(a, b) = world
        .follows
        .iter()
        .find(|&&(x, y)| world.instance_of(x) != world.instance_of(y))
        .expect("cross-instance follow");
    let a_dom = world.instances[world.instance_of(a).index()].domain.clone();
    let b_dom = world.instances[world.instance_of(b).index()].domain.clone();

    // 1. WebFinger: a's instance resolves b's account.
    let resp = client
        .get(
            net.addr(),
            &b_dom,
            &format!("/.well-known/webfinger?resource=acct:u{}@{}", b.0, b_dom),
        )
        .await
        .unwrap();
    assert!(resp.status.is_success());
    let doc: WebFingerDoc = serde_json::from_str(&resp.text()).unwrap();
    let actor_url = doc.actor_url().unwrap().to_string();
    assert_eq!(actor_url, actor_id(&format!("u{}", b.0), &b_dom));

    // 2. Actor fetch: the document advertises the inbox.
    let resp = client
        .get(net.addr(), &b_dom, &format!("/users/u{}", b.0))
        .await
        .unwrap();
    assert!(resp.status.is_success());
    let actor: fediscope_activitypub::Actor = serde_json::from_str(&resp.text()).unwrap();
    assert!(actor.inbox.ends_with("/inbox"));

    // 3. Follow delivery over the wire.
    let follow = Activity::Follow {
        id: format!("https://{a_dom}/activities/1"),
        actor: actor_id(&format!("u{}", a.0), &a_dom),
        object: actor_url,
    };
    let mut req = Request::get(&b_dom, &format!("/users/u{}/inbox", b.0));
    req.method = Method::Post;
    req.headers
        .push(("content-type".into(), "application/activity+json".into()));
    req.body = bytes::Bytes::from(follow.to_json().to_string());
    let resp = client.request(net.addr(), req).await.unwrap();
    assert_eq!(resp.status.0, 202);

    // 4. The followee's instance recorded the Follow; the follower's
    //    instance got an Accept back (in-process federation transport).
    let received = net.state.drain_inbox(world.instance_of(b));
    assert!(matches!(received[0], Activity::Follow { .. }));
    let accepts = net.state.drain_inbox(world.instance_of(a));
    assert!(
        accepts.iter().any(|x| matches!(x, Activity::Accept { .. })),
        "origin instance must receive the Accept"
    );
    net.shutdown().await;
}

#[tokio::test]
async fn malformed_activity_rejected() {
    let (world, net) = boot().await;
    let client = Client::default();
    let u = &world.users[0];
    let dom = world.instances[u.instance.index()].domain.clone();
    let mut req = Request::get(&dom, &format!("/users/u{}/inbox", u.id.0));
    req.method = Method::Post;
    req.body = bytes::Bytes::from_static(b"{\"type\": \"Dance\"}");
    let resp = client.request(net.addr(), req).await.unwrap();
    assert_eq!(resp.status.0, 400);
    net.shutdown().await;
}

#[tokio::test]
async fn inbox_of_unknown_user_404s() {
    let (world, net) = boot().await;
    let client = Client::default();
    let dom = world.instances[0].domain.clone();
    let mut req = Request::get(&dom, "/users/u999999/inbox");
    req.method = Method::Post;
    req.body = bytes::Bytes::from_static(b"{}");
    let resp = client.request(net.addr(), req).await.unwrap();
    assert_eq!(resp.status.0, 404);
    net.shutdown().await;
}
