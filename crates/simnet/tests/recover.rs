//! Crash-then-resume ≡ uninterrupted, bit for bit — the ISSUE-9 contract.
//!
//! Random worlds × overlays × seeds × crash ticks × checkpoint intervals:
//! a fedsim run killed by a deterministic [`CrashPlan`] and resumed from
//! its newest good snapshot (on a fresh simulator — nothing shared with
//! the dead one) finishes with a report, per-tick series, per-instance
//! loads, and `event_hash` bit-identical to the run that never crashed.
//! Torn final checkpoints fall back to the previous good snapshot; a
//! fully torn store degrades to an honest restart — never a panic, never
//! silently different output.

use std::sync::OnceLock;

use fediscope_model::schedule::OutageArena;
use fediscope_model::{TootArena, World};
use fediscope_recover::{
    recover_latest, run_checkpointed, CrashPlan, MemStore, RunOutcome, SnapshotStore,
};
use fediscope_simnet::fedsim::snapshot::{FEDSIM_KIND, FEDSIM_STATE_VERSION};
use fediscope_simnet::fedsim::{
    overlay, resume_or_restart, FanoutArena, FedSim, FedSimConfig, OverlaySpec, SimRun,
};
use fediscope_worldgen::{toots, Generator, WorldConfig};
use proptest::prelude::*;
use serde::Deserialize as _;

const HORIZON: u32 = 32;

struct Fixture {
    world: World,
    fanout: FanoutArena,
    toots: TootArena,
    dest_users: Vec<u32>,
}

fn fixtures() -> &'static Vec<Fixture> {
    static FIXTURES: OnceLock<Vec<Fixture>> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        [404u64, 505]
            .into_iter()
            .map(|seed| {
                let cfg = WorldConfig::tiny(seed);
                let world = Generator::generate_world(cfg.clone());
                let fanout = FanoutArena::from_world(&world);
                let toot_arena = toots::generate(&cfg, &world.users, HORIZON, 8.0);
                let dest_users: Vec<u32> =
                    world.instances.iter().map(|i| i.user_count).collect();
                Fixture { world, fanout, toots: toot_arena, dest_users }
            })
            .collect()
    })
}

fn overlay_for(code: usize) -> OverlaySpec {
    match code {
        0 => OverlaySpec::Baseline,
        1 => OverlaySpec::TopAsOutage(2, 8, 24),
        _ => OverlaySpec::TopInstanceRemoval(4, 12),
    }
}

fn config(sim_seed: u64, spec: OverlaySpec, tight: bool) -> FedSimConfig {
    let mut cfg = FedSimConfig::new(sim_seed);
    cfg.drain_epochs = 96;
    cfg.suspend_after = 3;
    cfg.probe_interval = 5;
    cfg.overlay = spec;
    if tight {
        cfg.service_per_kuser = 1;
        cfg.min_service = 1;
        cfg.backlog_ticks = 2;
        cfg.max_attempts = 4;
    }
    cfg
}

fn build_arena(fx: &Fixture, cfg: &FedSimConfig) -> OutageArena {
    overlay::build(&cfg.overlay, &fx.world.instances, HORIZON + cfg.drain_epochs)
}

fn fresh_sim<'a>(fx: &'a Fixture, cfg: &FedSimConfig) -> FedSim<'a> {
    FedSim::new(cfg.clone(), &fx.fanout, &fx.toots, &fx.dest_users, build_arena(fx, cfg))
}

/// Kill a run per `plan` with checkpoints every `interval` ticks, then
/// resume whatever the store holds on a fresh simulator and finish it.
fn crash_then_resume(
    fx: &Fixture,
    cfg: &FedSimConfig,
    interval: u64,
    plan: CrashPlan,
) -> (SimRun, RunOutcome, fediscope_simnet::fedsim::RecoveryInfo) {
    let mut store = MemStore::new();
    let mut sim = fresh_sim(fx, cfg);
    let outcome = run_checkpointed(&mut sim, &mut store, interval, Some(plan)).unwrap();
    drop(sim); // the process died: nothing in-memory survives

    let (resumed, info) = resume_or_restart(
        &store,
        cfg.clone(),
        &fx.fanout,
        &fx.toots,
        &fx.dest_users,
        build_arena(fx, cfg),
    );
    let mut resumed = resumed;
    let out = run_checkpointed(&mut resumed, &mut store, interval, None).unwrap();
    assert_eq!(out, RunOutcome::Completed);
    (resumed.finish(), outcome, info)
}

proptest! {
    /// The headline guarantee: crash anywhere, checkpoint at any cadence,
    /// resume on a fresh simulator — and the finished run is bit-identical.
    #[test]
    fn crash_then_resume_is_bit_identical(
        widx in 0usize..2,
        sim_seed in 0u64..1_000,
        code in 0usize..3,
        tight in any::<bool>(),
        crash_counter in 0u64..1_000,
        interval in 1u64..24,
    ) {
        let fx = &fixtures()[widx];
        let cfg = config(sim_seed, overlay_for(code), tight);
        let baseline = fresh_sim(fx, &cfg).run();

        let horizon = baseline.report.end_tick.max(1) as u64;
        let plan = CrashPlan::drawn(sim_seed, crash_counter, horizon);
        // (a drawn crash tick at the natural end may complete without
        // firing — the "resume" is then a resume of a finished store)
        let (resumed, _outcome, info) = crash_then_resume(fx, &cfg, interval, plan);
        prop_assert_eq!(&resumed, &baseline,
            "diverged: plan {:?} interval {} info {:?}", plan, interval, info);
    }

    /// Checkpointing itself is pure observation: a run driven through the
    /// checkpointing loop (no crash) equals a plain `run()`.
    #[test]
    fn checkpointing_does_not_perturb_the_run(
        widx in 0usize..2,
        sim_seed in 0u64..1_000,
        code in 0usize..3,
        interval in 1u64..16,
    ) {
        let fx = &fixtures()[widx];
        let cfg = config(sim_seed, overlay_for(code), false);
        let baseline = fresh_sim(fx, &cfg).run();

        let mut store = MemStore::new();
        let mut sim = fresh_sim(fx, &cfg);
        let out = run_checkpointed(&mut sim, &mut store, interval, None).unwrap();
        prop_assert_eq!(out, RunOutcome::Completed);
        prop_assert_eq!(&sim.finish(), &baseline);
    }

    /// Torn-checkpoint corpus: truncate or bit-flip the newest snapshots.
    /// Recovery must skip them (counted, no panic), fall back to the
    /// newest surviving snapshot, and still finish bit-identical. When
    /// *everything* is torn it restarts from scratch — honestly reported
    /// via `resumed_from: None` — and still converges to the same run.
    #[test]
    fn torn_snapshots_fall_back_and_stay_identical(
        widx in 0usize..2,
        sim_seed in 0u64..500,
        crash_counter in 0u64..500,
        interval in 2u64..12,
        tear_all in any::<bool>(),
        flip_not_truncate in any::<bool>(),
        corruption in any::<u64>(),
    ) {
        let fx = &fixtures()[widx];
        let cfg = config(sim_seed, overlay_for(1), true);
        let baseline = fresh_sim(fx, &cfg).run();
        let horizon = baseline.report.end_tick.max(1) as u64;
        let plan = CrashPlan::drawn(sim_seed, crash_counter, horizon);

        let mut store = MemStore::new();
        let mut sim = fresh_sim(fx, &cfg);
        run_checkpointed(&mut sim, &mut store, interval, Some(plan)).unwrap();
        drop(sim);

        // corrupt the store: all snapshots, or just the newest
        let ticks = store.ticks();
        let victims: Vec<u64> = if tear_all {
            ticks.clone()
        } else {
            ticks.iter().rev().take(1).copied().collect()
        };
        for (i, &t) in victims.iter().enumerate() {
            let len = store.get(t).map(|b| b.len()).unwrap_or(0);
            if flip_not_truncate && len > 0 {
                store.tear_bitflip(t, (corruption as usize).wrapping_add(i * 7) % len,
                                   ((corruption >> 8) as u8).wrapping_add(i as u8));
            } else {
                store.tear_truncate(t, (corruption as usize) % len.max(1));
            }
        }

        let expected_torn = victims.len() as u32;
        let (resumed, info) = resume_or_restart(
            &store, cfg.clone(), &fx.fanout, &fx.toots, &fx.dest_users,
            build_arena(fx, &cfg),
        );
        prop_assert_eq!(info.torn_skipped, expected_torn);
        if tear_all {
            prop_assert!(info.resumed_from.is_none(), "all torn must restart");
        }
        let mut resumed = resumed;
        while !resumed.is_done() {
            resumed.step_tick();
        }
        prop_assert_eq!(&resumed.finish(), &baseline,
            "diverged after tearing {:?} (info {:?})", victims, info);
    }
}

/// A `CrashPlan` with `torn_final` leaves a half-written frame at the
/// crash tick; recovery must land on the previous good checkpoint.
#[test]
fn torn_final_checkpoint_falls_back_to_previous_good() {
    let fx = &fixtures()[0];
    let cfg = config(7, overlay_for(1), true);
    let baseline = fresh_sim(fx, &cfg).run();

    let plan = CrashPlan { crash_tick: 20, torn_final: true };
    let (resumed, outcome, info) = crash_then_resume(fx, &cfg, 5, plan);
    assert_eq!(outcome, RunOutcome::Crashed { at_tick: 20, torn_final: true });
    assert_eq!(info.torn_skipped, 1, "the in-flight frame is torn");
    assert_eq!(info.resumed_from, Some(15), "fell back to the previous good");
    assert_eq!(resumed, baseline);
}

/// Satellite pin: sender-side timers must survive a snapshot→restore
/// round trip untouched — backoff deadlines in the retry queue, probe
/// schedules of suspensions, and breaker failure counts must not reset.
#[test]
fn timers_and_counters_do_not_reset_on_resume() {
    let fx = &fixtures()[0];
    // tight + outage: guarantees retries, breakers, and suspensions exist
    let cfg = config(11, overlay_for(1), true);
    let mut sim = fresh_sim(fx, &cfg);
    for _ in 0..16 {
        sim.step_tick();
    }
    let state = sim.capture();
    let n_retry: usize = state.sources.iter().map(|s| s.retry.len()).sum();
    let n_breaker: usize = state.sources.iter().map(|s| s.breaker.len()).sum();
    assert!(n_retry > 0, "fixture must exercise the retry queue");
    assert!(n_breaker > 0, "fixture must exercise the breaker");

    let resumed = FedSim::resume(
        cfg.clone(), &fx.fanout, &fx.toots, &fx.dest_users, build_arena(fx, &cfg), &state,
    );
    let state2 = resumed.capture();
    // capture(resume(capture(x))) == capture(x): every deadline, count,
    // parked message, and digest word identical — nothing reset
    assert_eq!(state2, state);
    for (a, b) in state.sources.iter().zip(&state2.sources) {
        assert_eq!(a.retry, b.retry, "backoff deadlines must not reset");
        assert_eq!(
            a.suspended.iter().map(|(d, s)| (*d, s.probe_due)).collect::<Vec<_>>(),
            b.suspended.iter().map(|(d, s)| (*d, s.probe_due)).collect::<Vec<_>>(),
            "probe schedules must not reset"
        );
        assert_eq!(a.breaker, b.breaker, "breaker counts must not reset");
    }
}

/// The snapshot round-trips byte-for-byte through the framed wire format
/// (encode → decode → encode is a fixpoint), and a recovery scan over a
/// real store honors kind/version tags.
#[test]
fn fedsim_state_round_trips_through_the_frame() {
    let fx = &fixtures()[1];
    let cfg = config(3, overlay_for(2), false);
    let mut sim = fresh_sim(fx, &cfg);
    for _ in 0..10 {
        sim.step_tick();
    }
    let state = sim.capture();
    let bytes = fediscope_recover::snapshot_frame(&sim);
    let mut store = MemStore::new();
    store.put(10, &bytes).unwrap();
    let rec = recover_latest(&store, FEDSIM_KIND, FEDSIM_STATE_VERSION);
    let (meta, value) = rec.good.expect("good frame");
    assert_eq!(meta.tick, 10);
    let back = fediscope_simnet::fedsim::FedSimState::from_json_value(&value).unwrap();
    assert_eq!(back, state);
    // wrong schema version is refused, not misread
    let rec = recover_latest(&store, FEDSIM_KIND, FEDSIM_STATE_VERSION + 1);
    assert!(rec.must_restart());
    assert_eq!(rec.torn_skipped, 1);
}
