//! Differential determinism + conservation proptests for `fedsim`.
//!
//! The ISSUE-7 contract: random worlds × outage overlays × seeds × shard
//! counts replay to bit-identical transcripts and metrics on fresh
//! simulators, and every fanned-out message ends in exactly one of
//! delivered / dropped / still-accounted (undeliverable) — no silent loss
//! under backpressure, retries, suspension, or mid-run outages.

use std::sync::OnceLock;

use fediscope_model::schedule::OutageArena;
use fediscope_model::{TootArena, World};
use fediscope_simnet::fedsim::{overlay, FanoutArena, FedSim, FedSimConfig, OverlaySpec};
use fediscope_worldgen::{toots, Generator, WorldConfig};
use proptest::prelude::*;

const HORIZON: u32 = 32;

struct Fixture {
    world: World,
    fanout: FanoutArena,
    toots: TootArena,
    dest_users: Vec<u32>,
}

/// Three tiny worlds, built once: proptest cases draw (world, overlay,
/// seed, shards) combinations against them.
fn fixtures() -> &'static Vec<Fixture> {
    static FIXTURES: OnceLock<Vec<Fixture>> = OnceLock::new();
    FIXTURES.get_or_init(|| {
        [101u64, 202, 303]
            .into_iter()
            .map(|seed| {
                let cfg = WorldConfig::tiny(seed);
                let world = Generator::generate_world(cfg.clone());
                let fanout = FanoutArena::from_world(&world);
                let toot_arena = toots::generate(&cfg, &world.users, HORIZON, 8.0);
                let dest_users: Vec<u32> =
                    world.instances.iter().map(|i| i.user_count).collect();
                Fixture { world, fanout, toots: toot_arena, dest_users }
            })
            .collect()
    })
}

fn overlay_for(code: usize) -> OverlaySpec {
    match code {
        0 => OverlaySpec::Baseline,
        1 => OverlaySpec::TopAsOutage(2, 8, 24),
        _ => OverlaySpec::TopInstanceRemoval(4, 12),
    }
}

fn config(sim_seed: u64, spec: OverlaySpec, tight: bool) -> FedSimConfig {
    let mut cfg = FedSimConfig::new(sim_seed);
    cfg.drain_epochs = 96;
    cfg.suspend_after = 3;
    cfg.probe_interval = 5;
    cfg.overlay = spec;
    if tight {
        // Starve the queues so backpressure and drops actually fire.
        cfg.service_per_kuser = 1;
        cfg.min_service = 1;
        cfg.backlog_ticks = 2;
        cfg.max_attempts = 4;
    }
    cfg
}

fn build_arena(fx: &Fixture, cfg: &FedSimConfig) -> OutageArena {
    overlay::build(&cfg.overlay, &fx.world.instances, HORIZON + cfg.drain_epochs)
}

proptest! {
    /// Same inputs on a fresh simulator at shard count 1 vs `k` (and a
    /// fresh replay at `k`): reports, per-tick series, and the event hash
    /// are bit-identical.
    #[test]
    fn shard_replay_is_bit_identical(
        widx in 0usize..3,
        shards in 2u32..6,
        sim_seed in 0u64..1_000,
        code in 0usize..3,
        tight in any::<bool>(),
    ) {
        let fx = &fixtures()[widx];
        let serial_cfg = config(sim_seed, overlay_for(code), tight);
        let serial = FedSim::new(
            serial_cfg.clone(), &fx.fanout, &fx.toots, &fx.dest_users,
            build_arena(fx, &serial_cfg),
        ).run();
        let mut sharded_cfg = serial_cfg.clone();
        sharded_cfg.shards = shards;
        for _ in 0..2 {
            let run = FedSim::new(
                sharded_cfg.clone(), &fx.fanout, &fx.toots, &fx.dest_users,
                build_arena(fx, &sharded_cfg),
            ).run();
            // Reports only differ in the recorded shard-independent fields
            // (overlay is part of the report; shards is not).
            prop_assert_eq!(&run, &serial, "run diverged at {} shards", shards);
        }
    }

    /// Conservation: fanned_out == delivered + dropped + undeliverable,
    /// with the parked (suspended) mail separately accounted — under every
    /// overlay, including mid-run outages and permanent removals.
    #[test]
    fn every_message_is_accounted(
        widx in 0usize..3,
        sim_seed in 0u64..1_000,
        code in 0usize..3,
        tight in any::<bool>(),
    ) {
        let fx = &fixtures()[widx];
        let cfg = config(sim_seed, overlay_for(code), tight);
        let run = FedSim::new(
            cfg.clone(), &fx.fanout, &fx.toots, &fx.dest_users,
            build_arena(fx, &cfg),
        ).run();
        let (report, series) = (&run.report, &run.series);
        prop_assert!(report.conserved(),
            "fanned {} != delivered {} + dropped {} + undeliverable {}",
            report.fanned_out, report.delivered(), report.dropped, report.undeliverable);
        prop_assert!(report.suspended_undeliverable <= report.undeliverable);
        prop_assert!(report.fanned_out > 0, "fixtures must generate traffic");
        // the series' running backlog ends where the report says it does
        let last = series.last().unwrap();
        prop_assert_eq!(last.backlog, report.undeliverable);
        // per-instance delivered loads sum back to the report's total
        prop_assert_eq!(
            run.delivered_per_instance.iter().sum::<u64>(),
            report.delivered()
        );
        // attempts never exceed the retry budget's ceiling
        prop_assert!(report.attempts <= report.fanned_out * cfg.max_attempts as u64);
        if report.drained {
            prop_assert_eq!(report.undeliverable, 0);
        }
    }
}

/// The §4 overlay on a live tiny federation: messages delayed during the
/// outage recover through redelivery after it ends — the headline
/// "degrades, then heals" behaviour, deterministic end to end.
#[test]
fn outage_overlay_degrades_then_recovers() {
    let fx = &fixtures()[0];
    let clean_cfg = config(7, OverlaySpec::Baseline, false);
    let clean = FedSim::new(
        clean_cfg.clone(),
        &fx.fanout,
        &fx.toots,
        &fx.dest_users,
        build_arena(fx, &clean_cfg),
    )
    .run()
    .report;
    let out_cfg = config(7, OverlaySpec::TopAsOutage(3, 4, 20), false);
    let hit_run = FedSim::new(
        out_cfg.clone(),
        &fx.fanout,
        &fx.toots,
        &fx.dest_users,
        build_arena(fx, &out_cfg),
    )
    .run();
    let (hit, series) = (hit_run.report, hit_run.series);
    assert!(clean.conserved() && hit.conserved());
    assert_eq!(clean.rejected_down, 0);
    assert!(hit.rejected_down > 0, "outage must refuse deliveries");
    assert!(hit.redelivery_attempts > 0, "refused mail must retry");
    assert!(
        hit.delivered_delayed > clean.delivered_delayed,
        "outage turns prompt deliveries into delayed ones"
    );
    assert!(hit.amplification > clean.amplification);
    // during the outage window some ticks see down-rejections; after the
    // window the backlog eventually returns to zero (it heals)
    assert!(series[4..20].iter().any(|s| s.rejected_down > 0));
    assert!(hit.drained, "a bounded outage must not wedge the federation");
}
