//! `fediscope` — command-line interface to the toolkit.
//!
//! ```text
//! fediscope gen     [--seed N] [--scale tiny|small|paper] [--out world.json]
//! fediscope serve   [--seed N] [--scale tiny|small] [--ticks N] [--tick-ms N]
//! fediscope crawl   [--seed N] [--scale tiny|small]
//! fediscope analyze [--seed N] [--scale tiny|small|paper] [--fast]
//! ```
//!
//! `gen` prints (or writes) the generated world as JSON; `serve` boots the
//! simulated fediverse on loopback and advances the virtual clock; `crawl`
//! boots a simulation and runs the full measurement pipeline against it;
//! `analyze` runs the paper's analyses and verdicts (same as the `repro`
//! binary, abbreviated).

use fediscope_core::{report, verdicts, Observatory};
#[cfg(feature = "net")]
use fediscope_crawler::discovery::SeedList;
#[cfg(feature = "net")]
use fediscope_crawler::monitor::InstanceMonitor;
#[cfg(feature = "net")]
use fediscope_crawler::politeness::Politeness;
#[cfg(feature = "net")]
use fediscope_crawler::toots;
#[cfg(feature = "net")]
use fediscope_model::time::Epoch;
#[cfg(feature = "net")]
use fediscope_simnet::{launch, FaultPlan};
use fediscope_worldgen::{Generator, WorldConfig};
#[cfg(feature = "net")]
use std::sync::Arc;

#[cfg_attr(not(feature = "net"), allow(dead_code))]
struct Opts {
    seed: u64,
    scale: String,
    out: Option<String>,
    ticks: u32,
    tick_ms: u64,
    fast: bool,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        seed: 42,
        scale: "small".into(),
        out: None,
        ticks: 200,
        tick_ms: 10,
        fast: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => o.seed = it.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--scale" => o.scale = it.next().expect("--scale value").clone(),
            "--out" => o.out = Some(it.next().expect("--out path").clone()),
            "--ticks" => o.ticks = it.next().and_then(|v| v.parse().ok()).expect("--ticks N"),
            "--tick-ms" => {
                o.tick_ms = it.next().and_then(|v| v.parse().ok()).expect("--tick-ms N")
            }
            "--fast" => o.fast = true,
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }
    o
}

fn config_for(o: &Opts) -> WorldConfig {
    match o.scale.as_str() {
        "tiny" => WorldConfig::tiny(o.seed),
        "small" => WorldConfig::small(o.seed),
        "paper" => WorldConfig::paper_scaled(o.seed),
        other => {
            eprintln!("unknown scale {other}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("usage: fediscope <gen|serve|crawl|analyze> [options]");
        std::process::exit(2);
    };
    let opts = parse_opts(rest);
    match cmd.as_str() {
        "gen" => cmd_gen(&opts),
        "serve" => cmd_serve(&opts),
        "crawl" => cmd_crawl(&opts),
        "analyze" => cmd_analyze(&opts),
        other => {
            eprintln!("unknown command {other}");
            std::process::exit(2);
        }
    }
}

fn cmd_gen(o: &Opts) {
    let world = Generator::generate_world(config_for(o));
    let json = serde_json::to_string(&world).expect("world serialises");
    match &o.out {
        Some(path) => {
            std::fs::write(path, &json).expect("write world file");
            eprintln!(
                "wrote {} instances / {} users to {path}",
                world.instances.len(),
                world.users.len()
            );
        }
        None => println!("{json}"),
    }
}

#[cfg(not(feature = "net"))]
fn cmd_serve(_o: &Opts) {
    eprintln!(
        "`serve` needs the networked build: recompile with `--features net` \
         (requires the real tokio; see vendor/tokio)"
    );
    std::process::exit(2);
}

#[cfg(not(feature = "net"))]
fn cmd_crawl(_o: &Opts) {
    eprintln!(
        "`crawl` needs the networked build: recompile with `--features net` \
         (requires the real tokio; see vendor/tokio)"
    );
    std::process::exit(2);
}

#[cfg(feature = "net")]
fn cmd_serve(o: &Opts) {
    let rt = tokio::runtime::Runtime::new().expect("tokio runtime");
    rt.block_on(async {
        let world = Arc::new(Generator::generate_world(config_for(o)));
        let net = launch(world.clone(), FaultPlan::default(), o.seed)
            .await
            .expect("simnet boots");
        println!("fediscope simnet listening on {}", net.addr());
        println!(
            "{} instances behind one listener (Host-header routed); \
             advancing {} virtual epochs at {}ms each",
            world.instances.len(),
            o.ticks,
            o.tick_ms
        );
        println!(
            "try: curl -H 'Host: {}' http://{}/api/v1/instance",
            world.instances[0].domain,
            net.addr()
        );
        let ticker = net.state.clock.run_ticker(
            std::time::Duration::from_millis(o.tick_ms),
            Epoch(o.ticks),
        );
        let _ = ticker.await;
        println!("virtual clock reached epoch {}; shutting down", o.ticks);
        net.shutdown().await;
    });
}

#[cfg(feature = "net")]
fn cmd_crawl(o: &Opts) {
    let rt = tokio::runtime::Runtime::new().expect("tokio runtime");
    rt.block_on(async {
        let world = Arc::new(Generator::generate_world(config_for(o)));
        let net = launch(world.clone(), FaultPlan::default(), o.seed)
            .await
            .expect("simnet boots");
        let seeds = SeedList::for_simnet(&world, net.addr());
        let politeness = Politeness::fast();

        net.state.clock.set(Epoch(40_000));
        let mut monitor = InstanceMonitor::new(seeds.clone(), politeness.clone());
        monitor.poll_all(Epoch(40_000)).await;
        let up = monitor
            .dataset()
            .series
            .iter()
            .filter(|s| s.polls.last().is_some_and(|(_, r)| r.is_up()))
            .count();
        println!("monitor: {up}/{} instances up at epoch 40000", seeds.len());

        let dataset = toots::crawl_toots(
            &seeds,
            &politeness,
            &fediscope_httpwire::Client::default(),
        )
        .await;
        println!(
            "toot crawl: {} instances crawled, {} toots, {:.1}% coverage",
            dataset.crawled_instances(),
            dataset.total_home_toots(),
            dataset.coverage(world.total_toots()) * 100.0
        );
        net.shutdown().await;
    });
}

fn cmd_analyze(o: &Opts) {
    let world = Generator::generate_world(config_for(o));
    let obs = Observatory::new(world);
    let vs = verdicts::evaluate(&obs, o.fast);
    println!("{}", report::render_verdicts(&vs));
    let failed = verdicts::failed(&vs);
    println!("{} checks, {} failed", vs.len(), failed);
    if failed > 0 {
        std::process::exit(1);
    }
}
