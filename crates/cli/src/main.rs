//! `fediscope` — command-line interface to the toolkit.
//!
//! ```text
//! fediscope gen     [--seed N] [--scale tiny|small|paper] [--out world.json]
//! fediscope serve   [--seed N] [--scale tiny|small] [--ticks N] [--tick-ms N]
//! fediscope crawl   [--seed N] [--scale tiny|small] [--checkpoint-dir DIR] [--resume]
//! fediscope analyze [--seed N] [--scale tiny|small|paper] [--fast]
//! ```
//!
//! `gen` prints (or writes) the generated world as JSON; `serve` boots the
//! simulated fediverse on loopback and advances the virtual clock; `crawl`
//! boots a simulation and runs the full measurement pipeline against it;
//! `analyze` runs the paper's analyses and verdicts (same as the `repro`
//! binary, abbreviated).
//!
//! With `--checkpoint-dir`, `crawl` writes a framed snapshot (see
//! `crates/recover`) after every monitor sweep — the accumulated dataset,
//! circuit-breaker cooldowns, fault-injector state, and the virtual clock.
//! `--resume` restarts a killed crawl from the newest good snapshot (torn
//! frames are skipped and reported); the resumed crawl's output is
//! bit-identical to one that never died.

use fediscope_core::{report, verdicts, Observatory};
#[cfg(feature = "net")]
use fediscope_crawler::discovery::SeedList;
#[cfg(feature = "net")]
use fediscope_crawler::monitor::InstanceMonitor;
#[cfg(feature = "net")]
use fediscope_crawler::politeness::Politeness;
#[cfg(feature = "net")]
use fediscope_crawler::toots;
#[cfg(feature = "net")]
use fediscope_model::time::Epoch;
#[cfg(feature = "net")]
use fediscope_simnet::{launch, FaultPlan};
use fediscope_worldgen::{Generator, WorldConfig};
#[cfg(feature = "net")]
use std::sync::Arc;

#[cfg_attr(not(feature = "net"), allow(dead_code))]
struct Opts {
    seed: u64,
    scale: String,
    out: Option<String>,
    ticks: u32,
    tick_ms: u64,
    fast: bool,
    checkpoint_dir: Option<String>,
    resume: bool,
}

fn parse_opts(args: &[String]) -> Opts {
    let mut o = Opts {
        seed: 42,
        scale: "small".into(),
        out: None,
        ticks: 200,
        tick_ms: 10,
        fast: false,
        checkpoint_dir: None,
        resume: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => o.seed = it.next().and_then(|v| v.parse().ok()).expect("--seed N"),
            "--scale" => o.scale = it.next().expect("--scale value").clone(),
            "--out" => o.out = Some(it.next().expect("--out path").clone()),
            "--ticks" => o.ticks = it.next().and_then(|v| v.parse().ok()).expect("--ticks N"),
            "--tick-ms" => {
                o.tick_ms = it.next().and_then(|v| v.parse().ok()).expect("--tick-ms N")
            }
            "--fast" => o.fast = true,
            "--checkpoint-dir" => {
                o.checkpoint_dir = Some(it.next().expect("--checkpoint-dir path").clone())
            }
            "--resume" => o.resume = true,
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }
    if o.resume && o.checkpoint_dir.is_none() {
        eprintln!("--resume needs --checkpoint-dir");
        std::process::exit(2);
    }
    o
}

fn config_for(o: &Opts) -> WorldConfig {
    match o.scale.as_str() {
        "tiny" => WorldConfig::tiny(o.seed),
        "small" => WorldConfig::small(o.seed),
        "paper" => WorldConfig::paper_scaled(o.seed),
        other => {
            eprintln!("unknown scale {other}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("usage: fediscope <gen|serve|crawl|analyze> [options]");
        std::process::exit(2);
    };
    let opts = parse_opts(rest);
    match cmd.as_str() {
        "gen" => cmd_gen(&opts),
        "serve" => cmd_serve(&opts),
        "crawl" => cmd_crawl(&opts),
        "analyze" => cmd_analyze(&opts),
        other => {
            eprintln!("unknown command {other}");
            std::process::exit(2);
        }
    }
}

fn cmd_gen(o: &Opts) {
    let world = Generator::generate_world(config_for(o));
    let json = serde_json::to_string(&world).expect("world serialises");
    match &o.out {
        Some(path) => {
            std::fs::write(path, &json).expect("write world file");
            eprintln!(
                "wrote {} instances / {} users to {path}",
                world.instances.len(),
                world.users.len()
            );
        }
        None => println!("{json}"),
    }
}

#[cfg(not(feature = "net"))]
fn cmd_serve(_o: &Opts) {
    eprintln!(
        "`serve` needs the networked build: recompile with `--features net` \
         (requires the real tokio; see vendor/tokio)"
    );
    std::process::exit(2);
}

#[cfg(not(feature = "net"))]
fn cmd_crawl(_o: &Opts) {
    eprintln!(
        "`crawl` needs the networked build: recompile with `--features net` \
         (requires the real tokio; see vendor/tokio)"
    );
    std::process::exit(2);
}

#[cfg(feature = "net")]
fn cmd_serve(o: &Opts) {
    let rt = tokio::runtime::Runtime::new().expect("tokio runtime");
    rt.block_on(async {
        let world = Arc::new(Generator::generate_world(config_for(o)));
        let net = launch(world.clone(), FaultPlan::default(), o.seed)
            .await
            .expect("simnet boots");
        println!("fediscope simnet listening on {}", net.addr());
        println!(
            "{} instances behind one listener (Host-header routed); \
             advancing {} virtual epochs at {}ms each",
            world.instances.len(),
            o.ticks,
            o.tick_ms
        );
        println!(
            "try: curl -H 'Host: {}' http://{}/api/v1/instance",
            world.instances[0].domain,
            net.addr()
        );
        let ticker = net.state.clock.run_ticker(
            std::time::Duration::from_millis(o.tick_ms),
            Epoch(o.ticks),
        );
        let _ = ticker.await;
        println!("virtual clock reached epoch {}; shutting down", o.ticks);
        net.shutdown().await;
    });
}

/// Frame kind tag for `crawl --checkpoint-dir` snapshots.
#[cfg(feature = "net")]
const CRAWL_KIND: &str = "cli-crawl";

/// Schema version of [`CrawlCheckpoint`]. Bump on any shape change.
#[cfg(feature = "net")]
const CRAWL_STATE_VERSION: u32 = 1;

/// What `crawl --checkpoint-dir` persists after each monitor sweep:
/// enough to continue the campaign bit-identically on a fresh process.
#[cfg(feature = "net")]
#[derive(serde::Serialize, serde::Deserialize)]
struct CrawlCheckpoint {
    /// Monitor sweeps completed.
    sweeps_done: u32,
    /// Virtual clock at the checkpoint; the resumed runtime starts here.
    virtual_nanos: u64,
    /// Accumulated dataset + circuit-breaker rows.
    monitor: fediscope_crawler::monitor::MonitorState,
    /// Fault-injector counter / dead set / budget windows.
    injector: fediscope_simnet::InjectorState,
}

/// Epochs between monitor sweeps, and sweeps in the campaign.
#[cfg(feature = "net")]
const SWEEP_STRIDE: u32 = 96;
#[cfg(feature = "net")]
const SWEEPS: u32 = 18;
#[cfg(feature = "net")]
const BASE_EPOCH: u32 = 40_000;

#[cfg(feature = "net")]
fn cmd_crawl(o: &Opts) {
    use fediscope_recover::{encode_frame, recover_latest, DirStore, SnapshotStore};

    let mut store = o
        .checkpoint_dir
        .as_ref()
        .map(|d| DirStore::open(d).expect("open checkpoint dir"));
    let resumed: Option<CrawlCheckpoint> = if o.resume {
        let store = store.as_ref().expect("--resume needs --checkpoint-dir");
        let rec = recover_latest(store, CRAWL_KIND, CRAWL_STATE_VERSION);
        if rec.torn_skipped > 0 {
            eprintln!(
                "recovery: skipped {} torn/incompatible snapshot(s) at ticks {:?}",
                rec.torn_skipped, rec.skipped_ticks
            );
        }
        match &rec.good {
            Some((meta, value)) => {
                let c = serde::Deserialize::from_json_value(value)
                    .expect("checksummed snapshot decodes");
                eprintln!("recovery: resuming from sweep {}", meta.tick);
                Some(c)
            }
            None => {
                eprintln!("recovery: no usable snapshot; starting from scratch");
                None
            }
        }
    } else {
        None
    };

    // A resumed process continues the snapshot's virtual timeline.
    let rt = match &resumed {
        Some(c) => tokio::runtime::Runtime::starting_at(c.virtual_nanos),
        None => tokio::runtime::Runtime::new(),
    }
    .expect("tokio runtime");
    rt.block_on(async {
        let world = Arc::new(Generator::generate_world(config_for(o)));
        let net = launch(world.clone(), FaultPlan::default(), o.seed)
            .await
            .expect("simnet boots");
        let seeds = SeedList::for_simnet(&world, net.addr());
        let politeness = Politeness::fast();

        let (mut monitor, start_sweep) = match &resumed {
            Some(c) => {
                net.state.faults.restore_state(&c.injector);
                let m = InstanceMonitor::resume(seeds.clone(), politeness.clone(), &c.monitor);
                (m, c.sweeps_done)
            }
            None => (InstanceMonitor::new(seeds.clone(), politeness.clone()), 0),
        };
        for sweep in start_sweep..SWEEPS {
            let epoch = Epoch(BASE_EPOCH + sweep * SWEEP_STRIDE);
            net.state.clock.set(epoch);
            monitor.poll_all(epoch).await;
            if let Some(store) = store.as_mut() {
                let ckpt = CrawlCheckpoint {
                    sweeps_done: sweep + 1,
                    virtual_nanos: tokio::time::now_nanos(),
                    monitor: monitor.capture(),
                    injector: net.state.faults.export_state(),
                };
                let frame = encode_frame(
                    CRAWL_KIND,
                    CRAWL_STATE_VERSION,
                    (sweep + 1) as u64,
                    &serde::Serialize::to_json_value(&ckpt),
                );
                store.put((sweep + 1) as u64, &frame).expect("write checkpoint");
            }
        }
        // The loop leaves the world clock at the final sweep's epoch — but
        // a resume that lands past the last sweep skips the loop entirely,
        // so pin it explicitly or the toot crawl below would run against
        // the boot epoch's availability instead.
        net.state.clock.set(Epoch(BASE_EPOCH + (SWEEPS - 1) * SWEEP_STRIDE));
        let up = monitor
            .dataset()
            .series
            .iter()
            .filter(|s| s.polls.last().is_some_and(|(_, r)| r.is_up()))
            .count();
        println!(
            "monitor: {up}/{} instances up after {SWEEPS} sweeps",
            seeds.len()
        );

        let dataset = toots::crawl_toots(
            &seeds,
            &politeness,
            &fediscope_httpwire::Client::default(),
        )
        .await;
        println!(
            "toot crawl: {} instances crawled, {} toots, {:.1}% coverage",
            dataset.crawled_instances(),
            dataset.total_home_toots(),
            dataset.coverage(world.total_toots()) * 100.0
        );
        net.shutdown().await;
    });
}

fn cmd_analyze(o: &Opts) {
    let world = Generator::generate_world(config_for(o));
    let obs = Observatory::new(world);
    let vs = verdicts::evaluate(&obs, o.fast);
    println!("{}", report::render_verdicts(&vs));
    let failed = verdicts::failed(&vs);
    println!("{} checks, {} failed", vs.len(), failed);
    if failed > 0 {
        std::process::exit(1);
    }
}
