//! Correlated-failure scenario engine: shared-fate cascades × replication
//! strategies in one sharded sweep (ROADMAP item 4).
//!
//! The paper's §5 sweeps remove instances uniformly, randomly, or by AS
//! group — but its own warning is about *correlated* failure: hosting
//! concentration makes AS- and hoster-level shared fate the realistic
//! threat, and the Fig. 9 cert-expiry outages are cascades that take many
//! instances down on a calendar schedule. This module compiles declarative
//! [`ScenarioSpec`]s into the same [`RemovalPlan`] representation the §5
//! sweeps use, layers richer placement strategies ([`ScenarioStrategy`])
//! on top of the No-Rep/S-Rep/Random set, and evaluates the whole
//! strategy × scenario product in **one** sharded pass over the
//! [`ContentView`]'s resident arena — integer histograms per shard,
//! exact integer merges, so output is bit-identical at any shard or
//! thread count (differential proptests below pin this against the kept
//! naive per-scenario reference, [`naive_grid`]).
//!
//! The output is a "replication strategy frontier" [`Grid`]: per scenario
//! (rows) and strategy (columns), final availability vs storage cost.

use crate::content::ContentView;
use crate::eval::{instance_shards, user_stream_rng, RemovalPlan, NEVER};
use fediscope_graph::par;
use fediscope_recover::{Snapshot, Steppable};
use fediscope_model::certs::LapseBitset;
use fediscope_model::geo::Country;
use fediscope_model::instance::Instance;
use fediscope_model::time::{Day, WINDOW_DAYS};
use fediscope_model::schedule::OutageCause;
use fediscope_model::world::World;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Days an admin takes to fix a lapsed certificate (matches the worldgen
/// availability model's manual-renewal delay seed).
pub const LAPSE_FIX_DAYS: u32 = 3;

/// Resident rows per sweep shard (same budget as the §5 sweeps).
const SWEEP_CHUNK_ROWS: usize = 65_536;

// ---------------------------------------------------------------------------
// Scenario specifications
// ---------------------------------------------------------------------------

/// A declarative correlated-failure process. Compilation ([`compile`])
/// turns a spec plus a [`ScenarioWorld`] into a stepped [`RemovalPlan`]:
/// one shared-fate group (or cascade bucket, or churn cohort) per step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioSpec {
    /// Top-`n` hosting ASes (ranked by hosted users) fail one per step —
    /// the paper's §4 concentration warning taken literally.
    AsSharedFate(u32),
    /// Top-`n` hosting providers fail one per step. Finer-grained than
    /// [`ScenarioSpec::AsSharedFate`] when an AS hosts several providers.
    HosterSharedFate(u32),
    /// Cert-expiry cascade: the window's lapse calendar (Fig. 9b, indexed
    /// as per-instance [`LapseBitset`]s) is folded into `n` equal day
    /// buckets; bucket `k` removes every instance whose *first* lapse
    /// falls in it at step `k + 1`. Auto-renewing instances never lapse.
    CertCascade(u32),
    /// Geographic wave: the top-`n` hosting countries (ranked by hosted
    /// users) go dark one per step — a region-level outage sweep.
    RegionWave(u32),
    /// Churn with rebirth over `n` steps: instances that retired during
    /// the window are removed in retirement order, folded into `n` equal
    /// cohorts — except those with a rebirth day, which are spared (a
    /// reborn instance's content comes back, including the degenerate
    /// "rebirth before removal" case).
    ChurnRebirth(u32),
}

impl ScenarioSpec {
    /// Stable label used in frontier tables and bench records.
    pub fn label(&self) -> String {
        match *self {
            ScenarioSpec::AsSharedFate(n) => format!("as-fate({n})"),
            ScenarioSpec::HosterSharedFate(n) => format!("hoster-fate({n})"),
            ScenarioSpec::CertCascade(n) => format!("cert-cascade({n})"),
            ScenarioSpec::RegionWave(n) => format!("region-wave({n})"),
            ScenarioSpec::ChurnRebirth(n) => format!("churn({n})"),
        }
    }

    /// Outage provenance tag carried into overlay arenas compiled from
    /// this scenario.
    pub fn cause(&self) -> OutageCause {
        match self {
            ScenarioSpec::CertCascade(_) => OutageCause::CertLapseCascade,
            ScenarioSpec::ChurnRebirth(_) => OutageCause::Churn,
            _ => OutageCause::SharedFate,
        }
    }
}

// ---------------------------------------------------------------------------
// Scenario world: the failure-relevant slice of a generated world
// ---------------------------------------------------------------------------

/// Everything scenario compilation and strategy placement need to know
/// about a world, precomputed once: shared-fate groupings ranked by blast
/// radius, cert-lapse calendars, churn timelines, and locality/popularity
/// lookups.
#[derive(Debug, Clone)]
pub struct ScenarioWorld {
    /// Instance population (dense ids `0..n_instances`).
    pub n_instances: usize,
    /// Instances grouped by hosting AS, groups ranked descending by hosted
    /// users (ties: smaller AS number first), members ascending by id.
    pub as_groups: Vec<Vec<u32>>,
    /// Instances grouped by hosting provider, same ranking.
    pub hoster_groups: Vec<Vec<u32>>,
    /// Instances grouped by hosting country, same ranking.
    pub region_groups: Vec<Vec<u32>>,
    /// Per-instance cert-lapse calendar over the window (Fig. 9b bitsets).
    pub lapses: Vec<LapseBitset>,
    /// Day each instance permanently retired, if it did (from the world's
    /// availability schedules; all `None` when built from instances only).
    pub retired: Vec<Option<Day>>,
    /// Day each retired instance comes back, if it does (see
    /// [`ScenarioWorld::with_rebirth`]; default all `None`).
    pub rebirth: Vec<Option<Day>>,
    /// Hosting AS number per instance (for follower-locality placement).
    pub inst_as: Vec<u32>,
    /// Hosting country per instance.
    pub inst_country: Vec<Country>,
    /// Popularity decile per instance by local toots (0 = most popular),
    /// ties broken by id.
    pub pop_decile: Vec<u8>,
}

/// Group instances by `key`, rank groups descending by hosted users
/// (ties: ascending key), members ascending by id.
fn ranked_groups<K: Ord>(instances: &[Instance], key: impl Fn(&Instance) -> K) -> Vec<Vec<u32>> {
    let mut map: std::collections::BTreeMap<K, (u64, Vec<u32>)> = std::collections::BTreeMap::new();
    for inst in instances {
        let e = map.entry(key(inst)).or_default();
        e.0 += inst.user_count as u64;
        e.1.push(inst.id.0);
    }
    let mut groups: Vec<(u64, Vec<u32>)> = map.into_values().collect();
    // BTreeMap yields ascending keys; the stable sort keeps that order
    // within equal user totals.
    groups.sort_by_key(|g| std::cmp::Reverse(g.0));
    groups.into_iter().map(|(_, g)| g).collect()
}

impl ScenarioWorld {
    /// Build from the instance table alone. Churn timelines are empty
    /// (retirement lives in availability schedules — use
    /// [`ScenarioWorld::from_world`] when they are available), so
    /// [`ScenarioSpec::ChurnRebirth`] compiles to a plan that removes
    /// nothing.
    pub fn from_instances(instances: &[Instance]) -> Self {
        let n = instances.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| {
            instances[b as usize]
                .toot_count
                .cmp(&instances[a as usize].toot_count)
                .then(a.cmp(&b))
        });
        let mut pop_decile = vec![0u8; n];
        for (rank, &i) in order.iter().enumerate() {
            pop_decile[i as usize] = ((rank * 10) / n.max(1)).min(9) as u8;
        }
        ScenarioWorld {
            n_instances: n,
            as_groups: ranked_groups(instances, |i| i.asn.0),
            hoster_groups: ranked_groups(instances, |i| i.provider_index),
            region_groups: ranked_groups(instances, |i| i.country),
            lapses: instances
                .iter()
                .map(|i| i.certificate.lapse_bitset(LAPSE_FIX_DAYS, WINDOW_DAYS))
                .collect(),
            retired: vec![None; n],
            rebirth: vec![None; n],
            inst_as: instances.iter().map(|i| i.asn.0).collect(),
            inst_country: instances.iter().map(|i| i.country).collect(),
            pop_decile,
        }
    }

    /// Build from a full world: instance table plus retirement days from
    /// the availability schedules.
    pub fn from_world(world: &World) -> Self {
        let mut s = Self::from_instances(&world.instances);
        s.retired = world.schedules.iter().map(|sch| sch.retired).collect();
        s
    }

    /// Attach a rebirth stream (e.g. `fediscope_worldgen::streams::rebirth_days`).
    pub fn with_rebirth(mut self, rebirth: Vec<Option<Day>>) -> Self {
        assert_eq!(rebirth.len(), self.n_instances, "rebirth stream length");
        self.rebirth = rebirth;
        self
    }
}

// ---------------------------------------------------------------------------
// Compilation
// ---------------------------------------------------------------------------

/// A scenario compiled against one world: the stepped removal groups, the
/// [`RemovalPlan`] built from them, and display/provenance metadata.
#[derive(Debug, Clone)]
pub struct CompiledScenario {
    /// The spec this was compiled from.
    pub spec: ScenarioSpec,
    /// Display label (`spec.label()`).
    pub label: String,
    /// Outage provenance for overlay arenas built from this scenario.
    pub cause: OutageCause,
    /// Removal groups: `groups[k]` dies at step `k + 1`. Groups are
    /// disjoint by construction and may be empty (a cascade bucket with
    /// no lapses, a churn cohort beyond the churned population).
    pub groups: Vec<Vec<u32>>,
    /// The compiled plan (`from_groups` over `groups`).
    pub plan: RemovalPlan,
}

/// Compile a [`ScenarioSpec`] against a [`ScenarioWorld`].
pub fn compile(spec: &ScenarioSpec, world: &ScenarioWorld) -> CompiledScenario {
    let groups: Vec<Vec<u32>> = match *spec {
        ScenarioSpec::AsSharedFate(n) => {
            world.as_groups.iter().take(n as usize).cloned().collect()
        }
        ScenarioSpec::HosterSharedFate(n) => {
            world.hoster_groups.iter().take(n as usize).cloned().collect()
        }
        ScenarioSpec::RegionWave(n) => {
            world.region_groups.iter().take(n as usize).cloned().collect()
        }
        ScenarioSpec::CertCascade(buckets) => {
            let buckets = buckets.max(1);
            let span = WINDOW_DAYS.div_ceil(buckets);
            let mut groups = vec![Vec::new(); buckets as usize];
            for (i, bits) in world.lapses.iter().enumerate() {
                if let Some(first) = bits.first_set_at_or_after(Day(0)) {
                    groups[((first.0 / span).min(buckets - 1)) as usize].push(i as u32);
                }
            }
            groups
        }
        ScenarioSpec::ChurnRebirth(steps) => {
            let steps = steps.max(1) as usize;
            // Permanently lost = retired with no rebirth. Any rebirth day —
            // even one at or before the retirement day — spares the
            // instance: the availability model is monotone removal, and a
            // reborn instance's content is back by the end of the window.
            let mut lost: Vec<(u32, u32)> = (0..world.n_instances as u32)
                .filter_map(|i| match (world.retired[i as usize], world.rebirth[i as usize]) {
                    (Some(day), None) => Some((day.0, i)),
                    _ => None,
                })
                .collect();
            lost.sort_unstable();
            let per = lost.len().div_ceil(steps).max(1);
            let mut groups = vec![Vec::new(); steps];
            for (k, &(_, i)) in lost.iter().enumerate() {
                groups[(k / per).min(steps - 1)].push(i);
            }
            groups
        }
    };
    CompiledScenario {
        spec: *spec,
        label: spec.label(),
        cause: spec.cause(),
        plan: RemovalPlan::from_groups(world.n_instances, &groups),
        groups,
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A replica-placement strategy evaluated on the frontier. The first
/// three mirror the paper's §5.2 set; the rest extend it with erasure
/// thresholds, popularity weighting, and follower locality.
///
/// Placement is a deterministic function of `(strategy, seed, user)` —
/// randomized strategies draw from the same keyed per-user stream as the
/// Monte-Carlo evaluator ([`user_stream_rng`]), so the sweep and the
/// naive reference see identical replica sets by construction. Note the
/// random strategies here *sample* placements (one draw per author),
/// unlike the Fig. 16 evaluator's closed-form expectation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScenarioStrategy {
    /// A toot lives only on its author's instance.
    NoRep,
    /// Home plus every instance hosting a follower (Mastodon's implicit
    /// scheme, as in the paper's S-Rep).
    SRep,
    /// Home plus `n` distinct uniformly random other instances.
    Random(u32),
    /// `KOfN(k, n)`: `n` erasure-coded fragments on `n` distinct random
    /// instances (home not privileged); content survives while at least
    /// `k` fragments do. Storage cost is `n / k` of a full copy.
    KOfN(u32, u32),
    /// `PopWeighted(lo, hi)`: home plus `lo..=hi` random replicas, scaled
    /// by the *home instance's* popularity decile — the most popular
    /// decile gets `hi`, the least popular `lo` (popular instances are
    /// the correlated-failure jackpot, so they buy more copies).
    PopWeighted(u32, u32),
    /// Home plus up to `cap` follower instances chosen nearest-first:
    /// same AS, then same country, then anywhere (ascending id within
    /// each class). Cheap locality — but it concentrates replicas in
    /// exactly the blast radius shared-fate scenarios remove.
    FollowerLocal(u32),
}

impl ScenarioStrategy {
    /// Stable label used in frontier tables and bench records.
    pub fn label(&self) -> String {
        match *self {
            ScenarioStrategy::NoRep => "no-rep".into(),
            ScenarioStrategy::SRep => "s-rep".into(),
            ScenarioStrategy::Random(n) => format!("random({n})"),
            ScenarioStrategy::KOfN(k, n) => format!("k-of-n({k}/{n})"),
            ScenarioStrategy::PopWeighted(lo, hi) => format!("pop({lo}..{hi})"),
            ScenarioStrategy::FollowerLocal(cap) => format!("local({cap})"),
        }
    }

    /// Storage-cost denominator: a k-of-n fragment is `1/k` of a copy.
    fn cost_den(&self) -> u64 {
        match *self {
            ScenarioStrategy::KOfN(k, n) => k.clamp(1, n.max(1)) as u64,
            _ => 1,
        }
    }
}

/// Draw `n` instances distinct from each other *and* from anything
/// already in `out`, by rejection against the current contents.
fn draw_distinct(rng: &mut StdRng, n_instances: u32, n: u32, out: &mut Vec<u32>) {
    for _ in 0..n {
        loop {
            let cand = rng.gen_range(0..n_instances);
            if !out.contains(&cand) {
                out.push(cand);
                break;
            }
        }
    }
}

/// Compute the replica set of one author into `out`. `holders` is the
/// author's follower-instance list (sorted, deduplicated, may include the
/// home instance — S-Rep and locality placement skip the duplicate).
fn place(
    strategy: ScenarioStrategy,
    world: &ScenarioWorld,
    seed: u64,
    user: u32,
    home: u32,
    holders: &[u32],
    out: &mut Vec<u32>,
) {
    out.clear();
    let n_inst = world.n_instances as u32;
    match strategy {
        ScenarioStrategy::NoRep => out.push(home),
        ScenarioStrategy::SRep => {
            out.push(home);
            out.extend(holders.iter().copied().filter(|&h| h != home));
        }
        ScenarioStrategy::Random(n) => {
            out.push(home);
            let mut rng = user_stream_rng(seed, user as usize);
            draw_distinct(&mut rng, n_inst, n.min(n_inst.saturating_sub(1)), out);
        }
        ScenarioStrategy::KOfN(_, n) => {
            let mut rng = user_stream_rng(seed, user as usize);
            draw_distinct(&mut rng, n_inst, n.clamp(1, n_inst), out);
        }
        ScenarioStrategy::PopWeighted(lo, hi) => {
            out.push(home);
            let (lo, hi) = (lo.min(hi), lo.max(hi));
            let d = world.pop_decile[home as usize] as u32;
            let n = lo + (hi - lo) * (9 - d) / 9;
            let mut rng = user_stream_rng(seed, user as usize);
            draw_distinct(&mut rng, n_inst, n.min(n_inst.saturating_sub(1)), out);
        }
        ScenarioStrategy::FollowerLocal(cap) => {
            out.push(home);
            let cap = cap as usize;
            for class in 0u8..3 {
                for &h in holders {
                    if out.len() > cap {
                        return;
                    }
                    if h == home {
                        continue;
                    }
                    let c = if world.inst_as[h as usize] == world.inst_as[home as usize] {
                        0
                    } else if world.inst_country[h as usize] == world.inst_country[home as usize] {
                        1
                    } else {
                        2
                    };
                    if c == class && !out.contains(&h) {
                        out.push(h);
                    }
                }
            }
        }
    }
}

/// Death step of one replica set under a per-instance step table
/// (`NEVER` = survives the whole scenario).
fn death_of(strategy: ScenarioStrategy, copies: &[u32], steps: &[u32], buf: &mut Vec<u32>) -> u32 {
    match strategy {
        ScenarioStrategy::KOfN(k, _) => {
            buf.clear();
            buf.extend(copies.iter().map(|&c| steps[c as usize]));
            buf.sort_unstable();
            let n = copies.len() as u32;
            let k = k.clamp(1, n);
            // content dies when the (n - k + 1)-th fragment dies
            buf[(n - k) as usize]
        }
        _ => copies.iter().map(|&c| steps[c as usize]).max().unwrap_or(NEVER),
    }
}

// ---------------------------------------------------------------------------
// Frontier grid
// ---------------------------------------------------------------------------

/// A labelled 2-D result grid (rows × columns, row-major cells). Generic
/// so frontier cells, timing cells, and test payloads share one shape;
/// serialization derives through the generic parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid<T> {
    /// Row labels (scenarios, for the frontier).
    pub rows: Vec<String>,
    /// Column labels (strategies, for the frontier).
    pub cols: Vec<String>,
    /// Row-major cells, `rows.len() * cols.len()` of them.
    pub cells: Vec<T>,
}

impl<T> Grid<T> {
    /// Assemble a grid, checking the cell count.
    pub fn new(rows: Vec<String>, cols: Vec<String>, cells: Vec<T>) -> Self {
        assert_eq!(cells.len(), rows.len() * cols.len(), "grid cell count");
        Grid { rows, cols, cells }
    }

    /// Cell at `(row, col)`.
    pub fn get(&self, row: usize, col: usize) -> &T {
        assert!(row < self.rows.len() && col < self.cols.len());
        &self.cells[row * self.cols.len() + col]
    }
}

/// One frontier cell: how a strategy fares under a scenario, and what it
/// pays for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierCell {
    /// Toot-weighted availability after the scenario's final step.
    pub availability: f64,
    /// Mean stored copies per toot (fragments count as `1/k` of a copy).
    /// Scenario-independent; repeated per row for uniform cells.
    pub storage_cost: f64,
    /// Availability after step `0..=n_steps` (point 0 is always 1.0).
    pub curve: Vec<f64>,
}

/// Fold one integer death histogram (index = death step, `hist[0]`
/// unused) plus the integer cost accumulator into a [`FrontierCell`].
/// Shared by the sweep and the naive reference so both produce the exact
/// same float sequence.
fn fold_cell(hist: &[u64], total_toots: u64, cost_num: u128, cost_den: u64) -> FrontierCell {
    let total = total_toots.max(1) as f64;
    let mut curve = Vec::with_capacity(hist.len());
    curve.push(1.0);
    let mut lost = 0u64;
    for &h in &hist[1..] {
        lost += h;
        curve.push(1.0 - lost as f64 / total);
    }
    FrontierCell {
        availability: *curve.last().expect("curve has point 0"),
        storage_cost: cost_num as f64 / (cost_den as f64 * total),
        curve,
    }
}

// ---------------------------------------------------------------------------
// The fused sharded sweep
// ---------------------------------------------------------------------------

/// Fold one instance shard `[lo, hi)` of the resident arena into the
/// death histograms (`hist[sci * n_st + sti]`, index = death step) and
/// per-strategy integer cost accumulators. Shared by the parallel
/// [`evaluate_grid_chunked`] shards and the resumable [`GridSweep`]
/// steps, so both paths produce the exact same integers.
#[allow(clippy::too_many_arguments)]
fn fold_shard(
    view: &ContentView,
    world: &ScenarioWorld,
    strategies: &[ScenarioStrategy],
    step_tables: &[&[u32]],
    seed: u64,
    lo: usize,
    hi: usize,
    hist: &mut [Vec<u64>],
    cost: &mut [u128],
) {
    let n_st = strategies.len();
    let mut copies: Vec<u32> = Vec::new();
    let mut buf: Vec<u32> = Vec::new();
    for inst in lo..hi {
        let (row_lo, row_hi) = (
            view.res_bounds[inst] as usize,
            view.res_bounds[inst + 1] as usize,
        );
        for row in row_lo..row_hi {
            let user = view.res_users[row];
            let toots = view.res_toots[row];
            let holders = &view.res_holder_data[view.res_holder_offsets[row] as usize
                ..view.res_holder_offsets[row + 1] as usize];
            for (sti, &st) in strategies.iter().enumerate() {
                place(st, world, seed, user, inst as u32, holders, &mut copies);
                cost[sti] += toots as u128 * copies.len() as u128;
                for (sci, steps) in step_tables.iter().enumerate() {
                    let d = death_of(st, &copies, steps, &mut buf);
                    if d != NEVER {
                        hist[sci * n_st + sti][d as usize] += toots;
                    }
                }
            }
        }
    }
}

/// Evaluate the full strategy × scenario product in one sharded pass
/// over the resident arena. Returns the frontier grid: rows = scenarios,
/// columns = strategies.
///
/// Each author's replica set is placed **once per strategy** and then
/// scored against every scenario's step table; per-shard accumulators are
/// integer histograms merged in shard order, so the result is
/// bit-identical at any shard or thread count.
pub fn evaluate_grid(
    view: &ContentView,
    world: &ScenarioWorld,
    scenarios: &[CompiledScenario],
    strategies: &[ScenarioStrategy],
    seed: u64,
) -> Grid<FrontierCell> {
    evaluate_grid_chunked(view, world, scenarios, strategies, seed, SWEEP_CHUNK_ROWS)
}

/// [`evaluate_grid`] with an explicit shard-size target (rows per shard);
/// exposed for the shard-invariance proptests and the bench bin.
pub fn evaluate_grid_chunked(
    view: &ContentView,
    world: &ScenarioWorld,
    scenarios: &[CompiledScenario],
    strategies: &[ScenarioStrategy],
    seed: u64,
    chunk_rows: usize,
) -> Grid<FrontierCell> {
    assert_eq!(view.n_instances, world.n_instances, "view/world mismatch");
    let n_sc = scenarios.len();
    let n_st = strategies.len();
    let step_tables: Vec<&[u32]> = scenarios.iter().map(|s| s.plan.steps()).collect();
    let hist_lens: Vec<usize> = scenarios.iter().map(|s| s.plan.n_steps() + 1).collect();

    // Shard the full instance range at instance boundaries; the layout
    // depends only on the view and `chunk_rows`, never the thread count.
    let all: Vec<u32> = (0..view.n_instances as u32).collect();
    let shards = instance_shards(view, &all, chunk_rows.max(1));

    let partials: Vec<(Vec<Vec<u64>>, Vec<u128>)> = par::parallel_map(&shards, |&(lo, hi)| {
        let mut hist: Vec<Vec<u64>> = (0..n_sc * n_st)
            .map(|cell| vec![0u64; hist_lens[cell / n_st]])
            .collect();
        let mut cost = vec![0u128; n_st];
        fold_shard(view, world, strategies, &step_tables, seed, lo, hi, &mut hist, &mut cost);
        (hist, cost)
    });

    // Exact integer merge, in shard order.
    let mut hist: Vec<Vec<u64>> = (0..n_sc * n_st)
        .map(|cell| vec![0u64; hist_lens[cell / n_st]])
        .collect();
    let mut cost = vec![0u128; n_st];
    for (ph, pc) in &partials {
        for (acc, part) in hist.iter_mut().zip(ph) {
            for (a, &p) in acc.iter_mut().zip(part) {
                *a += p;
            }
        }
        for (a, &p) in cost.iter_mut().zip(pc) {
            *a += p;
        }
    }

    grid_from_accumulators(view, scenarios, strategies, &hist, &cost)
}

/// Fold finished accumulators into the labelled frontier grid. Shared by
/// [`evaluate_grid_chunked`] and [`GridSweep::finish`] so the resumable
/// sweep folds the exact same float sequence as the parallel one.
fn grid_from_accumulators(
    view: &ContentView,
    scenarios: &[CompiledScenario],
    strategies: &[ScenarioStrategy],
    hist: &[Vec<u64>],
    cost: &[u128],
) -> Grid<FrontierCell> {
    let n_st = strategies.len();
    let cells: Vec<FrontierCell> = (0..scenarios.len() * n_st)
        .map(|cell| {
            let sti = cell % n_st;
            fold_cell(
                &hist[cell],
                view.total_toots,
                cost[sti],
                strategies[sti].cost_den(),
            )
        })
        .collect();
    Grid::new(
        scenarios.iter().map(|s| s.label.clone()).collect(),
        strategies.iter().map(|s| s.label()).collect(),
        cells,
    )
}

// ---------------------------------------------------------------------------
// Resumable sweep (checkpoint / crash / resume; see crates/recover)
// ---------------------------------------------------------------------------

/// Frame kind tag for grid-sweep snapshots.
pub const GRID_SWEEP_KIND: &str = "grid-sweep";

/// Schema version of [`GridSweepState`]. Bump on any shape change.
pub const GRID_SWEEP_STATE_VERSION: u32 = 1;

/// Serialized accumulators of a [`GridSweep`] between two shards. Shard
/// layout, step tables, and labels are *not* stored — resume recomputes
/// them from the same inputs, so a snapshot can never disagree with its
/// configuration. The cost accumulators are `u128`, carried through the
/// snapshot format's 128-bit support.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridSweepState {
    /// Shards folded so far.
    pub shards_done: u64,
    /// Death histograms, one per scenario × strategy cell (row-major).
    pub hist: Vec<Vec<u64>>,
    /// Per-strategy integer cost accumulators.
    pub cost: Vec<u128>,
}

/// The frontier sweep as a resumable engine: each step folds one shard
/// (serially, in shard order — the same order the parallel merge uses),
/// so the virtual clock is the shard index and a snapshot between any two
/// shards captures the sweep exactly. [`GridSweep::finish`] on a
/// crashed-and-resumed sweep is bit-identical to [`evaluate_grid`] (and
/// hence to [`naive_grid`]); pinned by the crash-resume proptests below.
pub struct GridSweep<'a> {
    view: &'a ContentView,
    world: &'a ScenarioWorld,
    scenarios: &'a [CompiledScenario],
    strategies: &'a [ScenarioStrategy],
    seed: u64,
    step_tables: Vec<&'a [u32]>,
    shards: Vec<(usize, usize)>,
    shards_done: usize,
    hist: Vec<Vec<u64>>,
    cost: Vec<u128>,
}

impl<'a> GridSweep<'a> {
    /// Fresh sweep over the full grid with an explicit shard-size target
    /// (rows per shard, as in [`evaluate_grid_chunked`]).
    pub fn new(
        view: &'a ContentView,
        world: &'a ScenarioWorld,
        scenarios: &'a [CompiledScenario],
        strategies: &'a [ScenarioStrategy],
        seed: u64,
        chunk_rows: usize,
    ) -> Self {
        assert_eq!(view.n_instances, world.n_instances, "view/world mismatch");
        let n_st = strategies.len();
        let all: Vec<u32> = (0..view.n_instances as u32).collect();
        GridSweep {
            view,
            world,
            scenarios,
            strategies,
            seed,
            step_tables: scenarios.iter().map(|s| s.plan.steps()).collect(),
            shards: instance_shards(view, &all, chunk_rows.max(1)),
            shards_done: 0,
            hist: (0..scenarios.len() * n_st)
                .map(|cell| vec![0u64; scenarios[cell / n_st].plan.n_steps() + 1])
                .collect(),
            cost: vec![0u128; n_st],
        }
    }

    /// Rebuild a sweep from a checkpoint. The inputs must be the ones the
    /// snapshot was taken over (same view, scenarios, strategies, seed,
    /// `chunk_rows`); accumulator shapes are checked against them.
    pub fn resume(
        view: &'a ContentView,
        world: &'a ScenarioWorld,
        scenarios: &'a [CompiledScenario],
        strategies: &'a [ScenarioStrategy],
        seed: u64,
        chunk_rows: usize,
        state: &GridSweepState,
    ) -> Self {
        let mut sweep = Self::new(view, world, scenarios, strategies, seed, chunk_rows);
        assert!(
            state.shards_done as usize <= sweep.shards.len(),
            "snapshot is ahead of this sweep's shard layout"
        );
        assert_eq!(
            state.hist.iter().map(Vec::len).collect::<Vec<_>>(),
            sweep.hist.iter().map(Vec::len).collect::<Vec<_>>(),
            "snapshot was taken over different scenarios/strategies"
        );
        assert_eq!(state.cost.len(), sweep.cost.len());
        sweep.shards_done = state.shards_done as usize;
        sweep.hist = state.hist.clone();
        sweep.cost = state.cost.clone();
        sweep
    }

    /// Total shards in this sweep's layout (the virtual-clock horizon).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Snapshot the sweep's mutable state for a checkpoint.
    pub fn capture(&self) -> GridSweepState {
        GridSweepState {
            shards_done: self.shards_done as u64,
            hist: self.hist.clone(),
            cost: self.cost.clone(),
        }
    }

    /// Fold the finished accumulators into the frontier grid.
    pub fn finish(&self) -> Grid<FrontierCell> {
        assert!(self.is_done(), "sweep has shards left");
        grid_from_accumulators(self.view, self.scenarios, self.strategies, &self.hist, &self.cost)
    }
}

impl Steppable for GridSweep<'_> {
    fn tick(&self) -> u64 {
        self.shards_done as u64
    }

    fn is_done(&self) -> bool {
        self.shards_done >= self.shards.len()
    }

    fn step(&mut self) {
        let (lo, hi) = self.shards[self.shards_done];
        fold_shard(
            self.view,
            self.world,
            self.strategies,
            &self.step_tables,
            self.seed,
            lo,
            hi,
            &mut self.hist,
            &mut self.cost,
        );
        self.shards_done += 1;
    }
}

impl Snapshot for GridSweep<'_> {
    const KIND: &'static str = GRID_SWEEP_KIND;
    const STATE_VERSION: u32 = GRID_SWEEP_STATE_VERSION;

    fn virtual_tick(&self) -> u64 {
        self.shards_done as u64
    }

    fn snapshot_state(&self) -> serde::Value {
        self.capture().to_json_value()
    }
}

// ---------------------------------------------------------------------------
// Naive reference
// ---------------------------------------------------------------------------

/// The kept naive reference: one full pass over the user table per
/// scenario × strategy cell, with its own step-table computation from the
/// raw removal groups. Placement is the shared deterministic contract
/// ([`place`]); everything downstream — step lookup, death rule,
/// histogram, fold — is recomputed independently. Bit-identical to
/// [`evaluate_grid`] (pinned by the differential proptests).
pub fn naive_grid(
    view: &ContentView,
    world: &ScenarioWorld,
    scenarios: &[CompiledScenario],
    strategies: &[ScenarioStrategy],
    seed: u64,
) -> Grid<FrontierCell> {
    assert_eq!(view.n_instances, world.n_instances, "view/world mismatch");
    let mut cells = Vec::with_capacity(scenarios.len() * strategies.len());
    for sc in scenarios {
        // First listing wins, as in `RemovalPlan::from_groups`.
        let mut steps = vec![NEVER; world.n_instances];
        for (g, members) in sc.groups.iter().enumerate() {
            for &m in members {
                if steps[m as usize] == NEVER {
                    steps[m as usize] = g as u32 + 1;
                }
            }
        }
        for &st in strategies {
            let mut hist = vec![0u64; sc.groups.len() + 1];
            let mut cost_num = 0u128;
            let mut copies: Vec<u32> = Vec::new();
            for u in 0..view.n_users() {
                let toots = view.toots[u];
                if toots == 0 {
                    continue;
                }
                place(
                    st,
                    world,
                    seed,
                    u as u32,
                    view.home[u],
                    view.follower_instances(u),
                    &mut copies,
                );
                cost_num += toots as u128 * copies.len() as u128;
                let d = match st {
                    ScenarioStrategy::KOfN(k, _) => {
                        let mut ds: Vec<u32> =
                            copies.iter().map(|&c| steps[c as usize]).collect();
                        ds.sort_unstable();
                        let k = k.clamp(1, copies.len() as u32) as usize;
                        ds[copies.len() - k]
                    }
                    _ => copies
                        .iter()
                        .map(|&c| steps[c as usize])
                        .max()
                        .unwrap_or(NEVER),
                };
                if d != NEVER {
                    hist[d as usize] += toots;
                }
            }
            cells.push(fold_cell(&hist, view.total_toots, cost_num, st.cost_den()));
        }
    }
    Grid::new(
        scenarios.iter().map(|s| s.label.clone()).collect(),
        strategies.iter().map(|s| s.label()).collect(),
        cells,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_worldgen::{Generator, WorldConfig};

    fn tiny_world(seed: u64) -> World {
        let mut cfg = WorldConfig::tiny(seed);
        cfg.n_instances = 24;
        cfg.n_users = 300;
        Generator::generate_world(cfg)
    }

    const ALL_STRATEGIES: [ScenarioStrategy; 6] = [
        ScenarioStrategy::NoRep,
        ScenarioStrategy::SRep,
        ScenarioStrategy::Random(2),
        ScenarioStrategy::KOfN(2, 4),
        ScenarioStrategy::PopWeighted(1, 4),
        ScenarioStrategy::FollowerLocal(3),
    ];

    fn all_specs() -> Vec<ScenarioSpec> {
        vec![
            ScenarioSpec::AsSharedFate(3),
            ScenarioSpec::HosterSharedFate(3),
            ScenarioSpec::CertCascade(6),
            ScenarioSpec::RegionWave(2),
            ScenarioSpec::ChurnRebirth(4),
        ]
    }

    #[test]
    fn compiled_groups_are_disjoint_and_plans_step_per_group() {
        let world = tiny_world(7);
        let sw = ScenarioWorld::from_world(&world);
        for spec in all_specs() {
            let c = compile(&spec, &sw);
            assert_eq!(c.plan.n_steps(), c.groups.len(), "{}", c.label);
            let mut seen = std::collections::HashSet::new();
            for g in &c.groups {
                for &m in g {
                    assert!(seen.insert(m), "{}: instance {m} in two groups", c.label);
                }
            }
            assert_eq!(c.cause, spec.cause());
        }
    }

    #[test]
    fn shared_fate_groups_ranked_by_users() {
        let world = tiny_world(11);
        let sw = ScenarioWorld::from_world(&world);
        let users_of = |g: &Vec<u32>| -> u64 {
            g.iter()
                .map(|&i| world.instances[i as usize].user_count as u64)
                .sum()
        };
        for groups in [&sw.as_groups, &sw.hoster_groups, &sw.region_groups] {
            for pair in groups.windows(2) {
                assert!(users_of(&pair[0]) >= users_of(&pair[1]));
            }
        }
    }

    #[test]
    fn cert_cascade_buckets_by_first_lapse() {
        let world = tiny_world(13);
        let sw = ScenarioWorld::from_world(&world);
        let buckets = 6u32;
        let c = compile(&ScenarioSpec::CertCascade(buckets), &sw);
        let span = WINDOW_DAYS.div_ceil(buckets);
        for (k, g) in c.groups.iter().enumerate() {
            for &i in g {
                let first = sw.lapses[i as usize]
                    .first_set_at_or_after(Day(0))
                    .expect("grouped instance has a lapse");
                assert_eq!(((first.0 / span).min(buckets - 1)) as usize, k);
            }
        }
        // every lapsing instance is scheduled, every auto-renewing one spared
        let scheduled: usize = c.groups.iter().map(|g| g.len()).sum();
        let lapsing = sw.lapses.iter().filter(|b| !b.is_empty()).count();
        assert_eq!(scheduled, lapsing);
    }

    #[test]
    fn empty_cascade_removes_nothing_and_keeps_availability_at_one() {
        let mut world = tiny_world(17);
        for inst in &mut world.instances {
            inst.certificate.auto_renew = true;
        }
        let sw = ScenarioWorld::from_world(&world);
        let c = compile(&ScenarioSpec::CertCascade(5), &sw);
        assert_eq!(c.plan.removed_instances().len(), 0);
        let view = ContentView::from_world(&world);
        let grid = evaluate_grid(&view, &sw, &[c], &ALL_STRATEGIES, 42);
        for cell in &grid.cells {
            assert!(cell.curve.iter().all(|&a| a == 1.0));
        }
    }

    #[test]
    fn whole_network_shared_fate_kills_everything() {
        let mut world = tiny_world(19);
        for inst in &mut world.instances {
            inst.asn = fediscope_model::ids::AsId(64512);
        }
        let sw = ScenarioWorld::from_world(&world);
        let c = compile(&ScenarioSpec::AsSharedFate(1), &sw);
        assert_eq!(c.plan.removed_instances().len(), world.instances.len());
        let view = ContentView::from_world(&world);
        let grid = evaluate_grid(&view, &sw, &[c], &ALL_STRATEGIES, 42);
        for cell in &grid.cells {
            assert_eq!(*cell.curve.last().unwrap(), 0.0, "no strategy survives");
        }
    }

    #[test]
    fn rebirth_spares_instances_including_rebirth_before_removal() {
        let world = tiny_world(23);
        let mut sw = ScenarioWorld::from_world(&world);
        let churned: Vec<usize> = (0..sw.n_instances)
            .filter(|&i| sw.retired[i].is_some())
            .collect();
        assert!(churned.len() >= 2, "tiny world churns some instances");
        // first churned instance reborn *after* retirement, second reborn
        // pathologically *before* it — both must be spared.
        let mut rebirth = vec![None; sw.n_instances];
        rebirth[churned[0]] = Some(Day(sw.retired[churned[0]].unwrap().0 + 1));
        rebirth[churned[1]] = Some(Day(sw.retired[churned[1]].unwrap().0.saturating_sub(1)));
        sw = sw.with_rebirth(rebirth);
        let c = compile(&ScenarioSpec::ChurnRebirth(4), &sw);
        let removed = c.plan.removed_instances();
        assert_eq!(removed.len(), churned.len() - 2);
        assert!(!removed.contains(&(churned[0] as u32)));
        assert!(!removed.contains(&(churned[1] as u32)));
    }

    #[test]
    fn churn_steps_follow_retirement_order() {
        let world = tiny_world(29);
        let sw = ScenarioWorld::from_world(&world);
        let c = compile(&ScenarioSpec::ChurnRebirth(3), &sw);
        let mut last_max: Option<u32> = None;
        for g in c.groups.iter().filter(|g| !g.is_empty()) {
            let days: Vec<u32> = g.iter().map(|&i| sw.retired[i as usize].unwrap().0).collect();
            if let Some(prev) = last_max {
                assert!(days.iter().all(|&d| d >= prev));
            }
            last_max = Some(*days.iter().max().unwrap());
        }
    }

    #[test]
    fn from_instances_compiles_churn_to_empty_plan() {
        let world = tiny_world(31);
        let sw = ScenarioWorld::from_instances(&world.instances);
        let c = compile(&ScenarioSpec::ChurnRebirth(4), &sw);
        assert_eq!(c.plan.removed_instances().len(), 0);
    }

    #[test]
    fn sweep_matches_naive_on_the_full_product() {
        let world = tiny_world(37);
        let view = ContentView::from_world(&world);
        let sw = ScenarioWorld::from_world(&world);
        let compiled: Vec<_> = all_specs().iter().map(|s| compile(s, &sw)).collect();
        let fast = evaluate_grid(&view, &sw, &compiled, &ALL_STRATEGIES, 99);
        let slow = naive_grid(&view, &sw, &compiled, &ALL_STRATEGIES, 99);
        assert_eq!(fast, slow);
        assert_eq!(fast.rows.len(), compiled.len());
        assert_eq!(fast.cols.len(), ALL_STRATEGIES.len());
    }

    #[test]
    fn grid_sweep_steps_to_the_same_grid() {
        let world = tiny_world(43);
        let view = ContentView::from_world(&world);
        let sw = ScenarioWorld::from_world(&world);
        let compiled: Vec<_> = all_specs().iter().map(|s| compile(s, &sw)).collect();
        // chunk_rows = 1: one shard per resident instance, max granularity
        let mut sweep = GridSweep::new(&view, &sw, &compiled, &ALL_STRATEGIES, 99, 1);
        assert!(sweep.n_shards() > 4, "fixture must yield a multi-shard sweep");
        while !sweep.is_done() {
            sweep.step();
        }
        assert_eq!(sweep.finish(), evaluate_grid(&view, &sw, &compiled, &ALL_STRATEGIES, 99));
    }

    #[test]
    fn grid_sweep_torn_final_checkpoint_falls_back() {
        use fediscope_recover::{recover_latest, run_checkpointed, CrashPlan, MemStore, RunOutcome};
        let world = tiny_world(47);
        let view = ContentView::from_world(&world);
        let sw = ScenarioWorld::from_world(&world);
        let compiled: Vec<_> = all_specs().iter().map(|s| compile(s, &sw)).collect();

        let mut sweep = GridSweep::new(&view, &sw, &compiled, &ALL_STRATEGIES, 7, 1);
        assert!(sweep.n_shards() >= 6);
        let mut store = MemStore::new();
        let plan = CrashPlan { crash_tick: 4, torn_final: true };
        let out = run_checkpointed(&mut sweep, &mut store, 2, Some(plan)).unwrap();
        assert_eq!(out, RunOutcome::Crashed { at_tick: 4, torn_final: true });

        let rec = recover_latest(&store, GRID_SWEEP_KIND, GRID_SWEEP_STATE_VERSION);
        assert_eq!(rec.torn_skipped, 1, "the mid-write shard-4 frame reads as torn");
        let (meta, value) = rec.good.expect("shard-2 frame survives");
        assert_eq!(meta.tick, 2);
        let state = GridSweepState::from_json_value(&value).unwrap();
        let mut resumed = GridSweep::resume(&view, &sw, &compiled, &ALL_STRATEGIES, 7, 1, &state);
        run_checkpointed(&mut resumed, &mut store, 2, None).unwrap();
        assert_eq!(resumed.finish(), evaluate_grid(&view, &sw, &compiled, &ALL_STRATEGIES, 7));
    }

    #[test]
    fn grid_sweep_state_round_trips_u128_cost() {
        let world = tiny_world(53);
        let view = ContentView::from_world(&world);
        let sw = ScenarioWorld::from_world(&world);
        let compiled = [compile(&ScenarioSpec::AsSharedFate(3), &sw)];
        let mut sweep = GridSweep::new(&view, &sw, &compiled, &ALL_STRATEGIES, 3, 1);
        sweep.step();
        sweep.step();
        let mut state = sweep.capture();
        // force the cost accumulators past u64 to prove the 128-bit path
        state.cost[0] += u128::from(u64::MAX) * 7;
        let v = state.to_json_value();
        let back = GridSweepState::from_json_value(&v).unwrap();
        assert_eq!(back, state);
    }

    proptest::proptest! {
        /// Random worlds × placement seeds × drawn crash shards × cadences
        /// × shard sizes: kill the sweep mid-shard-stream, resume from the
        /// newest good frame, and the finished frontier grid is
        /// bit-identical to the one-pass parallel sweep's.
        #[test]
        fn grid_sweep_crash_then_resume_matches_evaluate_grid(
            world_seed in 0u64..500,
            place_seed in 0u64..1_000,
            crash_counter in 0u64..10_000,
            interval in 1u64..5,
            chunk_rows in 1usize..96,
        ) {
            use fediscope_recover::{recover_latest, run_checkpointed, CrashPlan, MemStore, RunOutcome};
            use proptest::prop_assert_eq;
            let world = tiny_world(world_seed);
            let view = ContentView::from_world(&world);
            let sw = ScenarioWorld::from_world(&world);
            let compiled: Vec<_> = all_specs().iter().map(|s| compile(s, &sw)).collect();

            let mut sweep =
                GridSweep::new(&view, &sw, &compiled, &ALL_STRATEGIES, place_seed, chunk_rows);
            let crash = CrashPlan::drawn(place_seed, crash_counter, sweep.n_shards() as u64);
            let mut store = MemStore::new();
            let out = run_checkpointed(&mut sweep, &mut store, interval, Some(crash)).unwrap();
            let resumed_grid = match out {
                // drawn crash shard sat at the sweep's natural end
                RunOutcome::Completed => sweep.finish(),
                RunOutcome::Crashed { .. } => {
                    let rec = recover_latest(&store, GRID_SWEEP_KIND, GRID_SWEEP_STATE_VERSION);
                    let mut resumed = match &rec.good {
                        Some((_, value)) => {
                            let state = GridSweepState::from_json_value(value).unwrap();
                            GridSweep::resume(
                                &view, &sw, &compiled, &ALL_STRATEGIES, place_seed, chunk_rows,
                                &state,
                            )
                        }
                        // crash before the first checkpoint: honest restart
                        None => GridSweep::new(
                            &view, &sw, &compiled, &ALL_STRATEGIES, place_seed, chunk_rows,
                        ),
                    };
                    run_checkpointed(&mut resumed, &mut store, interval, None).unwrap();
                    resumed.finish()
                }
            };
            let reference = evaluate_grid(&view, &sw, &compiled, &ALL_STRATEGIES, place_seed);
            prop_assert_eq!(resumed_grid, reference);
        }
    }

    #[test]
    fn storage_cost_ordering_is_sane() {
        let world = tiny_world(41);
        let view = ContentView::from_world(&world);
        let sw = ScenarioWorld::from_world(&world);
        let compiled = [compile(&ScenarioSpec::AsSharedFate(3), &sw)];
        let strategies = [
            ScenarioStrategy::NoRep,
            ScenarioStrategy::Random(2),
            ScenarioStrategy::KOfN(2, 4),
        ];
        let grid = evaluate_grid(&view, &sw, &compiled, &strategies, 7);
        let cost = |c: usize| grid.get(0, c).storage_cost;
        assert_eq!(cost(0), 1.0, "no-rep stores exactly the home copy");
        assert!((cost(1) - 3.0).abs() < 1e-9, "random(2) = home + 2");
        assert!((cost(2) - 2.0).abs() < 1e-9, "4 fragments at 1/2 copy each");
        // more copies can only help (same scenario, monotone death rule)
        assert!(grid.get(0, 1).availability >= grid.get(0, 0).availability);
    }

    #[test]
    fn grid_round_trips_through_serde() {
        let grid = Grid::new(
            vec!["a".into(), "b".into()],
            vec!["x".into()],
            vec![
                FrontierCell {
                    availability: 0.5,
                    storage_cost: 1.25,
                    curve: vec![1.0, 0.5],
                },
                FrontierCell {
                    availability: 1.0,
                    storage_cost: 3.0,
                    curve: vec![1.0, 1.0],
                },
            ],
        );
        let json = serde_json::to_string(&grid).unwrap();
        let back: Grid<FrontierCell> = serde_json::from_str(&json).unwrap();
        assert_eq!(grid, back);
        // the generic derive also covers non-float payloads
        let ints = Grid::new(vec!["r".into()], vec!["c".into()], vec![7u32]);
        let back: Grid<u32> = serde_json::from_str(&serde_json::to_string(&ints).unwrap()).unwrap();
        assert_eq!(ints, back);
    }

    #[test]
    fn spec_round_trips_through_serde() {
        for spec in all_specs() {
            let json = serde_json::to_string(&spec).unwrap();
            let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back);
        }
        for st in ALL_STRATEGIES {
            let json = serde_json::to_string(&st).unwrap();
            let back: ScenarioStrategy = serde_json::from_str(&json).unwrap();
            assert_eq!(st, back);
        }
    }

    #[test]
    fn follower_local_prefers_same_as_then_same_country() {
        let world = tiny_world(43);
        let sw = ScenarioWorld::from_world(&world);
        let view = ContentView::from_world(&world);
        let mut out = Vec::new();
        for u in 0..view.n_users() {
            if view.toots[u] == 0 {
                continue;
            }
            let home = view.home[u];
            let holders = view.follower_instances(u);
            place(
                ScenarioStrategy::FollowerLocal(2),
                &sw,
                0,
                u as u32,
                home,
                holders,
                &mut out,
            );
            assert_eq!(out[0], home);
            assert!(out.len() <= 3);
            let class = |h: u32| -> u8 {
                if sw.inst_as[h as usize] == sw.inst_as[home as usize] {
                    0
                } else if sw.inst_country[h as usize] == sw.inst_country[home as usize] {
                    1
                } else {
                    2
                }
            };
            for pair in out[1..].windows(2) {
                assert!(class(pair[0]) <= class(pair[1]), "nearest-first ordering");
            }
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use fediscope_worldgen::{Generator, WorldConfig};
    use proptest::prelude::*;

    fn tiny_setup(seed: u64) -> (ContentView, ScenarioWorld) {
        let mut cfg = WorldConfig::tiny(seed);
        cfg.n_instances = 24;
        cfg.n_users = 300;
        let world = Generator::generate_world(cfg);
        let sw = ScenarioWorld::from_world(&world);
        (ContentView::from_world(&world), sw)
    }

    fn arb_spec() -> impl Strategy<Value = ScenarioSpec> {
        (0u8..5, 1u32..8).prop_map(|(kind, n)| match kind {
            0 => ScenarioSpec::AsSharedFate(n),
            1 => ScenarioSpec::HosterSharedFate(n),
            2 => ScenarioSpec::CertCascade(n),
            3 => ScenarioSpec::RegionWave(n.min(4)),
            _ => ScenarioSpec::ChurnRebirth(n),
        })
    }

    fn arb_strategy() -> impl Strategy<Value = ScenarioStrategy> {
        (0u8..6, 1u32..5, 1u32..6).prop_map(|(kind, a, b)| match kind {
            0 => ScenarioStrategy::NoRep,
            1 => ScenarioStrategy::SRep,
            2 => ScenarioStrategy::Random(a),
            3 => ScenarioStrategy::KOfN(a, a + b - 1),
            4 => ScenarioStrategy::PopWeighted(a.min(2), b + 1),
            _ => ScenarioStrategy::FollowerLocal(a),
        })
    }

    proptest! {
        /// The fused sharded sweep is bit-identical to the naive
        /// per-scenario reference for random worlds × random spec/strategy
        /// subsets × random placement seeds.
        #[test]
        fn sweep_bit_identical_to_naive(
            world_seed in 0u64..500,
            place_seed in any::<u64>(),
            specs in proptest::collection::vec(arb_spec(), 1..4),
            strategies in proptest::collection::vec(arb_strategy(), 1..4),
        ) {
            let (view, sw) = tiny_setup(world_seed);
            let compiled: Vec<_> = specs.iter().map(|s| compile(s, &sw)).collect();
            let fast = evaluate_grid(&view, &sw, &compiled, &strategies, place_seed);
            let slow = naive_grid(&view, &sw, &compiled, &strategies, place_seed);
            prop_assert_eq!(fast, slow);
        }

        /// Shard layout must not leak into output: any chunk size (1 row
        /// per shard up to everything in one shard) produces the same
        /// bits.
        #[test]
        fn sweep_shard_invariant(
            world_seed in 0u64..500,
            place_seed in any::<u64>(),
            spec in arb_spec(),
            chunk in 1usize..64,
        ) {
            let (view, sw) = tiny_setup(world_seed);
            let compiled = [compile(&spec, &sw)];
            let strategies = [
                ScenarioStrategy::SRep,
                ScenarioStrategy::KOfN(2, 4),
                ScenarioStrategy::FollowerLocal(2),
            ];
            let sharded = evaluate_grid_chunked(&view, &sw, &compiled, &strategies, place_seed, chunk);
            let serial = evaluate_grid_chunked(&view, &sw, &compiled, &strategies, place_seed, usize::MAX);
            prop_assert_eq!(sharded, serial);
        }

        /// Thread count must not leak into output either (the layout is
        /// data-derived, and merges are exact integer sums).
        #[test]
        fn sweep_thread_invariant(
            world_seed in 0u64..200,
            threads in 1usize..5,
        ) {
            let (view, sw) = tiny_setup(world_seed);
            let compiled = [compile(&ScenarioSpec::AsSharedFate(5), &sw)];
            let strategies = [ScenarioStrategy::SRep, ScenarioStrategy::Random(2)];
            par::set_thread_override(Some(threads));
            let multi = evaluate_grid_chunked(&view, &sw, &compiled, &strategies, 7, 8);
            par::set_thread_override(Some(1));
            let single = evaluate_grid_chunked(&view, &sw, &compiled, &strategies, 7, 8);
            par::set_thread_override(None);
            prop_assert_eq!(multi, single);
        }
    }
}
