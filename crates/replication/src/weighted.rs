//! Capacity-weighted random replication — the extension the paper sketches
//! in §5.2's closing remark: "it would be important to weight replication
//! based on the resources available at the instance (e.g., storage)".
//!
//! Replicas are drawn with probability proportional to instance capacity
//! instead of uniformly. The evaluator is Monte-Carlo (the non-uniform
//! without-replacement expectation has no clean closed form).
//!
//! The production engine mirrors the uniform Monte-Carlo evaluator's
//! discipline (see `eval.rs`): a Walker **alias table** makes each
//! capacity-weighted draw `O(1)` (the original cumulative-sum sampler
//! paid a binary search per draw), a **stamped scratch** gives `O(1)`
//! replica distinctness (was a per-sample `Vec` + linear `contains`),
//! each user draws from its own counter-derived RNG stream, per-sample
//! weights are integral, and the walk is *inverted* onto the resident
//! arena — only users homed on removed instances are visited. The `u64`
//! histograms merge exactly, so output is shard- and thread-count
//! independent. The pre-rewrite engine is kept as
//! [`weighted_random_curve_reference`] for differential testing.

use crate::content::ContentView;
use crate::eval::{instance_shards, user_stream_rng, AvailabilityPoint, RemovalPlan};
use fediscope_graph::par;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Walker alias table: `O(n)` construction, `O(1)` samples from a
/// discrete distribution proportional to the given weights (negative
/// weights clamp to zero).
pub struct AliasTable {
    /// Acceptance probability per bucket (scaled to mean 1).
    prob: Vec<f64>,
    /// Fallback bucket when the acceptance draw fails.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Build from `weights`; panics if the clamped weights sum to zero.
    pub fn new(weights: &[f64]) -> Self {
        let n = weights.len();
        assert!(n > 0, "alias table needs at least one weight");
        assert!(n < u32::MAX as usize, "too many weights");
        let total: f64 = weights.iter().map(|w| w.max(0.0)).sum();
        assert!(total > 0.0, "weights must not all be zero");
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|w| w.max(0.0) * scale).collect();
        let mut alias: Vec<u32> = (0..n as u32).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            // donate the overflow of l to fill s's bucket to exactly 1
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical leftovers on either worklist are buckets that should
        // be exactly full.
        for &i in small.iter().chain(large.iter()) {
            prob[i as usize] = 1.0;
        }
        Self { prob, alias }
    }

    /// Draw one index (two RNG consumptions: bucket + acceptance).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        let i = rng.gen_range(0..self.prob.len() as u32);
        if rng.gen::<f64>() < self.prob[i as usize] {
            i
        } else {
            self.alias[i as usize]
        }
    }
}

/// Resident rows per shard (fixed, thread-agnostic — merging is exact,
/// so the layout only affects scheduling; same constant family as the
/// uniform evaluator's).
const WEIGHTED_CHUNK_ROWS: usize = 65_536;

/// Availability curve for capacity-weighted random replication with `n`
/// replicas per toot, sampled per user (up to `toot_cap` samples per
/// user; the remaining toots ride the sampled placements with integral
/// weights). Sharded over the removed instances' resident segments with
/// shard-count-independent output.
pub fn weighted_random_curve(
    view: &ContentView,
    capacities: &[f64],
    n: usize,
    groups: &[Vec<u32>],
    toot_cap: u32,
    seed: u64,
) -> Vec<AvailabilityPoint> {
    weighted_random_curve_chunked(view, capacities, n, groups, toot_cap, seed, WEIGHTED_CHUNK_ROWS)
}

/// [`weighted_random_curve`] with an explicit shard size, exposed so
/// tests can pin 1-shard ≡ N-shard equality (the same discipline as
/// `AvailabilitySweep::monte_carlo_chunked`).
#[allow(clippy::too_many_arguments)]
pub fn weighted_random_curve_chunked(
    view: &ContentView,
    capacities: &[f64],
    n: usize,
    groups: &[Vec<u32>],
    toot_cap: u32,
    seed: u64,
    chunk_rows: usize,
) -> Vec<AvailabilityPoint> {
    assert_eq!(capacities.len(), view.n_instances, "capacity length");
    assert!(toot_cap > 0, "toot_cap must be positive");
    assert!(chunk_rows > 0, "chunk_rows must be positive");
    let sampler = AliasTable::new(capacities);
    let n_steps = groups.len();
    let n_inst = view.n_instances;
    let target = n.min(n_inst);

    // Same plan compilation and shard layout as the uniform evaluator.
    let plan = RemovalPlan::from_groups(n_inst, groups);
    let steps = plan.steps();
    let removed = plan.removed_instances();
    let shards = instance_shards(view, removed, chunk_rows);

    let partials = par::parallel_map(&shards, |&(slo, shi)| {
        let mut death = vec![0u64; n_steps + 2];
        let mut stamp = vec![0u64; n_inst];
        let mut epoch = 0u64;
        for &inst in &removed[slo..shi] {
            let home_step = steps[inst as usize] as usize;
            let (rlo, rhi) = (
                view.res_bounds[inst as usize] as usize,
                view.res_bounds[inst as usize + 1] as usize,
            );
            for row in rlo..rhi {
                let toots = view.res_toots[row];
                let mut rng = user_stream_rng(seed, view.res_users[row] as usize);
                let samples = toots.min(toot_cap as u64);
                let base = toots / samples;
                let rem = toots % samples;
                for j in 0..samples {
                    epoch += 1;
                    let mut dead_step = home_step;
                    let mut picked = 0usize;
                    // The attempt guard mirrors the reference engine: a
                    // capacity profile with fewer than `target` positive
                    // entries must terminate with a short replica set.
                    let mut guard = 0usize;
                    while picked < target && guard < 64 * target.max(1) {
                        let cand = sampler.sample(&mut rng) as usize;
                        guard += 1;
                        if stamp[cand] != epoch {
                            stamp[cand] = epoch;
                            picked += 1;
                            let s = steps[cand] as usize;
                            if s > dead_step {
                                dead_step = s;
                            }
                        }
                    }
                    if dead_step <= n_steps {
                        death[dead_step] += base + u64::from(j < rem);
                    }
                }
            }
        }
        death
    });
    let mut death = vec![0u64; n_steps + 2];
    for h in partials {
        for (acc, v) in death.iter_mut().zip(&h) {
            *acc += v;
        }
    }
    let total = view.total_toots.max(1) as f64;
    let death_f: Vec<f64> = death.iter().map(|&v| v as f64).collect();
    crate::eval::fold_availability(&death_f, n_steps, total)
}

/// The pre-rewrite engine, kept verbatim as the differential baseline:
/// cumulative-sum binary-search sampling with linear-`contains`
/// rejection, one global RNG stream, fractional per-sample weights, one
/// serial pass over the whole population. Statistically equivalent to
/// [`weighted_random_curve`] (both sample the same placement
/// distribution); not bit-equal — the samplers consume randomness
/// differently.
pub fn weighted_random_curve_reference(
    view: &ContentView,
    capacities: &[f64],
    n: usize,
    groups: &[Vec<u32>],
    toot_cap: u32,
    seed: u64,
) -> Vec<AvailabilityPoint> {
    assert_eq!(capacities.len(), view.n_instances, "capacity length");
    struct WeightedSampler {
        cum: Vec<f64>,
    }
    impl WeightedSampler {
        fn new(weights: &[f64]) -> Self {
            let mut cum = Vec::with_capacity(weights.len());
            let mut acc = 0.0;
            for &w in weights {
                acc += w.max(0.0);
                cum.push(acc);
            }
            assert!(acc > 0.0, "weights must not all be zero");
            Self { cum }
        }
        fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
            let x = rng.gen::<f64>() * self.cum.last().unwrap();
            self.cum.partition_point(|&c| c < x).min(self.cum.len() - 1) as u32
        }
    }
    let sampler = WeightedSampler::new(capacities);
    let mut steps = vec![usize::MAX; view.n_instances];
    for (g, members) in groups.iter().enumerate() {
        for &m in members {
            if steps[m as usize] == usize::MAX {
                steps[m as usize] = g + 1;
            }
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut death_toots = vec![0f64; groups.len() + 2];
    for u in 0..view.n_users() {
        if view.toots[u] == 0 {
            continue;
        }
        let home_step = steps[view.home[u] as usize];
        if home_step == usize::MAX || home_step > groups.len() {
            continue;
        }
        let samples = view.toots[u].min(toot_cap as u64) as u32;
        let weight = view.toots[u] as f64 / samples as f64;
        for _ in 0..samples {
            let mut replicas: Vec<u32> = Vec::with_capacity(n);
            let mut guard = 0;
            while replicas.len() < n.min(view.n_instances) && guard < 64 * n {
                let cand = sampler.sample(&mut rng);
                guard += 1;
                if !replicas.contains(&cand) {
                    replicas.push(cand);
                }
            }
            let mut death = home_step;
            for &r in &replicas {
                death = death.max(steps[r as usize]);
            }
            if death != usize::MAX && death <= groups.len() {
                death_toots[death] += weight;
            }
        }
    }
    let total = view.total_toots.max(1) as f64;
    crate::eval::fold_availability(&death_toots, groups.len(), total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{random_monte_carlo_curve, singleton_groups};
    use fediscope_worldgen::{Generator, WorldConfig};

    fn view() -> ContentView {
        let mut cfg = WorldConfig::tiny(51);
        cfg.n_instances = 30;
        cfg.n_users = 900;
        ContentView::from_world(&Generator::generate_world(cfg))
    }

    #[test]
    fn alias_table_matches_weights_statistically() {
        let weights = [1.0f64, 0.0, 3.0, 6.0];
        let table = AliasTable::new(&weights);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0u64; 4];
        let draws = 200_000;
        for _ in 0..draws {
            counts[table.sample(&mut rng) as usize] += 1;
        }
        // zero-weight bucket is never drawn
        assert_eq!(counts[1], 0);
        let total: f64 = weights.iter().sum();
        for (i, &w) in weights.iter().enumerate() {
            let expect = w / total;
            let got = counts[i] as f64 / draws as f64;
            assert!(
                (got - expect).abs() < 0.01,
                "bucket {i}: got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn alias_table_uniform_is_uniform() {
        let table = AliasTable::new(&[2.5; 8]);
        // every acceptance probability is exactly 1: the first draw wins
        for p in &table.prob {
            assert_eq!(*p, 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn alias_table_rejects_all_zero() {
        let _ = AliasTable::new(&[0.0, -1.0]);
    }

    #[test]
    fn uniform_capacity_matches_uniform_random() {
        let v = view();
        let order: Vec<u32> = (0..v.n_instances as u32).collect();
        let groups = singleton_groups(&order[..8]);
        let caps = vec![1.0; v.n_instances];
        let weighted = weighted_random_curve(&v, &caps, 2, &groups, 32, 7);
        let uniform = random_monte_carlo_curve(&v, 2, &groups, 32, 7);
        for k in 0..weighted.len() {
            assert!(
                (weighted[k].availability - uniform[k].availability).abs() < 0.06,
                "k={k}"
            );
        }
    }

    #[test]
    fn differential_against_reference_engine() {
        // Same distributionally — the alias/stamped engine and the kept
        // reference must agree within Monte-Carlo noise on small worlds,
        // across capacity profiles.
        let v = view();
        let order: Vec<u32> = (0..12u32).collect();
        let groups = singleton_groups(&order);
        for (caps, label) in [
            (vec![1.0; v.n_instances], "uniform"),
            (
                (0..v.n_instances).map(|i| 1.0 + (i % 7) as f64).collect::<Vec<_>>(),
                "mild skew",
            ),
            (
                (0..v.n_instances)
                    .map(|i| if i < 6 { 0.01 } else { 2.0 })
                    .collect::<Vec<_>>(),
                "victims starved",
            ),
        ] {
            let fast = weighted_random_curve(&v, &caps, 2, &groups, 48, 23);
            let reference = weighted_random_curve_reference(&v, &caps, 2, &groups, 48, 23);
            assert_eq!(fast.len(), reference.len());
            for k in 0..fast.len() {
                assert!(
                    (fast[k].availability - reference[k].availability).abs() < 0.05,
                    "{label} k={k}: fast {} vs reference {}",
                    fast[k].availability,
                    reference[k].availability
                );
            }
        }
    }

    #[test]
    fn capacity_skew_away_from_victims_helps() {
        let v = view();
        // remove instances 0..6; give them tiny capacity so replicas avoid them
        let order: Vec<u32> = (0..6u32).collect();
        let groups = singleton_groups(&order);
        let mut smart = vec![1.0; v.n_instances];
        smart[..6].fill(0.001);
        let mut dumb = vec![0.001; v.n_instances];
        dumb[..6].fill(1.0); // replicas pile onto the doomed instances
        let s = weighted_random_curve(&v, &smart, 2, &groups, 32, 11);
        let d = weighted_random_curve(&v, &dumb, 2, &groups, 32, 11);
        let k = groups.len();
        assert!(
            s[k].availability >= d[k].availability,
            "capacity-aware placement should not be worse: {} vs {}",
            s[k].availability,
            d[k].availability
        );
    }

    #[test]
    fn monotone_decreasing() {
        let v = view();
        let order: Vec<u32> = (0..v.n_instances as u32).collect();
        let groups = singleton_groups(&order[..10]);
        let caps: Vec<f64> = (0..v.n_instances).map(|i| 1.0 + i as f64).collect();
        let curve = weighted_random_curve(&v, &caps, 3, &groups, 16, 13);
        for w in curve.windows(2) {
            assert!(w[1].availability <= w[0].availability + 1e-12);
        }
    }

    #[test]
    fn shard_count_invariant() {
        let v = view();
        let order: Vec<u32> = (0..14u32).collect();
        let groups = singleton_groups(&order);
        let caps: Vec<f64> = (0..v.n_instances).map(|i| 0.5 + (i % 5) as f64).collect();
        let one = weighted_random_curve_chunked(&v, &caps, 2, &groups, 16, 99, usize::MAX);
        let many = weighted_random_curve_chunked(&v, &caps, 2, &groups, 16, 99, 13);
        let tiny = weighted_random_curve_chunked(&v, &caps, 2, &groups, 16, 99, 1);
        assert_eq!(one, many);
        assert_eq!(one, tiny);
    }

    #[test]
    fn removing_everything_loses_everything() {
        // Integral weights must cover every toot: removing all instances
        // drives availability exactly to zero.
        let v = view();
        let all: Vec<u32> = (0..v.n_instances as u32).collect();
        let groups = singleton_groups(&all);
        let caps: Vec<f64> = (0..v.n_instances).map(|i| 1.0 + (i % 3) as f64).collect();
        let curve = weighted_random_curve(&v, &caps, 3, &groups, 8, 5);
        assert!(
            curve.last().unwrap().availability.abs() < 1e-12,
            "all mass must be lost: {}",
            curve.last().unwrap().availability
        );
    }

    #[test]
    #[should_panic(expected = "capacity length")]
    fn wrong_capacity_length_panics() {
        let v = view();
        let _ = weighted_random_curve(&v, &[1.0], 2, &[vec![0]], 8, 1);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::eval::singleton_groups;
    use fediscope_worldgen::{Generator, WorldConfig};
    use proptest::prelude::*;

    fn tiny_view(seed: u64) -> ContentView {
        let mut cfg = WorldConfig::tiny(seed);
        cfg.n_instances = 20;
        cfg.n_users = 250;
        ContentView::from_world(&Generator::generate_world(cfg))
    }

    proptest! {
        /// Shard layout never changes the curve (same seed discipline as
        /// the uniform Monte-Carlo shard-invariance proptest).
        #[test]
        fn weighted_curve_shard_invariance(
            seed in 0u64..500,
            mc_seed in any::<u64>(),
            k in 1usize..16,
            chunk in 1usize..48,
            cap_kind in 0usize..3,
        ) {
            let v = tiny_view(seed);
            let caps: Vec<f64> = match cap_kind {
                0 => vec![1.0; v.n_instances],
                1 => (0..v.n_instances).map(|i| 1.0 + (i % 4) as f64).collect(),
                _ => (0..v.n_instances)
                    .map(|i| if i % 3 == 0 { 0.0 } else { 2.0 })
                    .collect(),
            };
            let order: Vec<u32> = (0..k as u32).collect();
            let groups = singleton_groups(&order);
            let sharded =
                weighted_random_curve_chunked(&v, &caps, 2, &groups, 8, mc_seed, chunk);
            let serial =
                weighted_random_curve_chunked(&v, &caps, 2, &groups, 8, mc_seed, usize::MAX);
            prop_assert_eq!(sharded, serial);
        }
    }
}
