//! Capacity-weighted random replication — the extension the paper sketches
//! in §5.2's closing remark: "it would be important to weight replication
//! based on the resources available at the instance (e.g., storage)".
//!
//! Replicas are drawn with probability proportional to instance capacity
//! instead of uniformly. The evaluator is Monte-Carlo (the non-uniform
//! without-replacement expectation has no clean closed form).

use crate::content::ContentView;
use crate::eval::AvailabilityPoint;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Weighted sampler over instances (cumulative-sum binary search).
struct WeightedSampler {
    cum: Vec<f64>,
}

impl WeightedSampler {
    fn new(weights: &[f64]) -> Self {
        let mut cum = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w.max(0.0);
            cum.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        Self { cum }
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> u32 {
        let x = rng.gen::<f64>() * self.cum.last().unwrap();
        self.cum.partition_point(|&c| c < x).min(self.cum.len() - 1) as u32
    }
}

/// Availability curve for capacity-weighted random replication with `n`
/// replicas per toot, sampled per user batch (`toot_cap` samples per user).
pub fn weighted_random_curve(
    view: &ContentView,
    capacities: &[f64],
    n: usize,
    groups: &[Vec<u32>],
    toot_cap: u32,
    seed: u64,
) -> Vec<AvailabilityPoint> {
    assert_eq!(capacities.len(), view.n_instances, "capacity length");
    let sampler = WeightedSampler::new(capacities);
    let mut steps = vec![usize::MAX; view.n_instances];
    for (g, members) in groups.iter().enumerate() {
        for &m in members {
            if steps[m as usize] == usize::MAX {
                steps[m as usize] = g + 1;
            }
        }
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut death_toots = vec![0f64; groups.len() + 2];
    for u in 0..view.n_users() {
        if view.toots[u] == 0 {
            continue;
        }
        let home_step = steps[view.home[u] as usize];
        if home_step == usize::MAX || home_step > groups.len() {
            continue;
        }
        let samples = view.toots[u].min(toot_cap as u64) as u32;
        let weight = view.toots[u] as f64 / samples as f64;
        for _ in 0..samples {
            let mut replicas: Vec<u32> = Vec::with_capacity(n);
            let mut guard = 0;
            while replicas.len() < n.min(view.n_instances) && guard < 64 * n {
                let cand = sampler.sample(&mut rng);
                guard += 1;
                if !replicas.contains(&cand) {
                    replicas.push(cand);
                }
            }
            let mut death = home_step;
            for &r in &replicas {
                death = death.max(steps[r as usize]);
            }
            if death != usize::MAX && death <= groups.len() {
                death_toots[death] += weight;
            }
        }
    }
    let total = view.total_toots.max(1) as f64;
    crate::eval::fold_availability(&death_toots, groups.len(), total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{random_monte_carlo_curve, singleton_groups};
    use fediscope_worldgen::{Generator, WorldConfig};

    fn view() -> ContentView {
        let mut cfg = WorldConfig::tiny(51);
        cfg.n_instances = 30;
        cfg.n_users = 900;
        ContentView::from_world(&Generator::generate_world(cfg))
    }

    #[test]
    fn uniform_capacity_matches_uniform_random() {
        let v = view();
        let order: Vec<u32> = (0..v.n_instances as u32).collect();
        let groups = singleton_groups(&order[..8]);
        let caps = vec![1.0; v.n_instances];
        let weighted = weighted_random_curve(&v, &caps, 2, &groups, 32, 7);
        let uniform = random_monte_carlo_curve(&v, 2, &groups, 32, 7);
        for k in 0..weighted.len() {
            assert!(
                (weighted[k].availability - uniform[k].availability).abs() < 0.06,
                "k={k}"
            );
        }
    }

    #[test]
    fn capacity_skew_away_from_victims_helps() {
        let v = view();
        // remove instances 0..6; give them tiny capacity so replicas avoid them
        let order: Vec<u32> = (0..6u32).collect();
        let groups = singleton_groups(&order);
        let mut smart = vec![1.0; v.n_instances];
        smart[..6].fill(0.001);
        let mut dumb = vec![0.001; v.n_instances];
        dumb[..6].fill(1.0); // replicas pile onto the doomed instances
        let s = weighted_random_curve(&v, &smart, 2, &groups, 32, 11);
        let d = weighted_random_curve(&v, &dumb, 2, &groups, 32, 11);
        let k = groups.len();
        assert!(
            s[k].availability >= d[k].availability,
            "capacity-aware placement should not be worse: {} vs {}",
            s[k].availability,
            d[k].availability
        );
    }

    #[test]
    fn monotone_decreasing() {
        let v = view();
        let order: Vec<u32> = (0..v.n_instances as u32).collect();
        let groups = singleton_groups(&order[..10]);
        let caps: Vec<f64> = (0..v.n_instances).map(|i| 1.0 + i as f64).collect();
        let curve = weighted_random_curve(&v, &caps, 3, &groups, 16, 13);
        for w in curve.windows(2) {
            assert!(w[1].availability <= w[0].availability + 1e-12);
        }
    }

    #[test]
    #[should_panic(expected = "capacity length")]
    fn wrong_capacity_length_panics() {
        let v = view();
        let _ = weighted_random_curve(&v, &[1.0], 2, &[vec![0]], 8, 1);
    }
}
