//! # fediscope-replication
//!
//! Toot replication strategies and availability-under-failure evaluation
//! (§5.2 of the paper, Figs. 15 and 16).
//!
//! The paper evaluates three schemes:
//! - **No replication**: a toot lives only on its author's instance,
//! - **Subscription replication**: a toot is replicated to every instance
//!   hosting at least one follower of the author (what Mastodon loosely
//!   does, minus persistence and global indexing),
//! - **Random replication**: each toot is copied to `n` uniformly random
//!   instances.
//!
//! Both an exact-expectation evaluator and a seeded Monte-Carlo evaluator
//! are provided ([`eval`]); they agree within sampling error (tested). The
//! global index the paper assumes ("e.g., via a Distributed Hash Table") is
//! implemented as a consistent-hash ring ([`dht`]). A capacity-weighted
//! variant ([`weighted`]) explores the paper's closing remark that
//! "it would be important to weight replication based on the resources
//! available at the instance".
//!
//! Evaluation has two engines: the naive per-strategy reference
//! ([`eval::availability_curve`]) and the batched
//! [`AvailabilitySweep`], which compiles the removal schedule once
//! ([`eval::RemovalPlan`]) and folds **every** strategy's curve out of one
//! sharded pass over the [`ContentView`]'s flat CSR holder arena —
//! bit-identical output, several times faster on multi-strategy workloads
//! (see `README.md` and `BENCH_avail.json`).
//!
//! The correlated-failure extension lives in [`scenario`]: declarative
//! failure processes (AS/hoster shared fate, cert-lapse cascades,
//! geographic waves, churn with rebirth) compile into the same
//! [`RemovalPlan`] machinery, richer strategies (k-of-n erasure,
//! popularity-weighted, follower-locality) layer on top, and one sharded
//! pass emits the full strategy × scenario "replication frontier" grid.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod content;
pub mod dht;
pub mod eval;
pub mod scenario;
pub mod weighted;

pub use content::ContentView;
pub use dht::HashRing;
pub use eval::{AvailabilityBatch, AvailabilityPoint, AvailabilitySweep, RemovalPlan, Strategy};
pub use scenario::{
    compile, evaluate_grid, naive_grid, CompiledScenario, FrontierCell, Grid, GridSweep,
    GridSweepState, ScenarioSpec, ScenarioStrategy, ScenarioWorld,
};
