//! Availability-under-failure evaluation (Figs. 15 and 16).
//!
//! A toot is *available* if at least one live instance holds a copy and the
//! copy is discoverable through the assumed global index (§5.2: "we assume
//! the presence of a global index (such as a Distributed Hash Table)").
//!
//! Removal is modelled as a fixed sequence of instances (or groups of
//! instances = ASes); after each prefix, availability is the fraction of
//! all toots with a surviving holder.

use crate::content::ContentView;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Replication strategy under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Home instance only.
    NoReplication,
    /// Home + every follower instance (persistent + globally indexed).
    Subscription,
    /// Home + `n` uniformly random instances per toot.
    Random {
        /// Replica count.
        n: usize,
    },
}

/// One point of an availability curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityPoint {
    /// Instances (or groups) removed so far.
    pub removed: usize,
    /// Fraction of toots still available, in `[0, 1]`.
    pub availability: f64,
}

/// Map each instance to the 1-based step at which it is removed
/// (`usize::MAX` = never). Steps come from a grouped order: group `g`
/// (0-based) is removed at step `g + 1`.
fn removal_steps(n_instances: usize, groups: &[Vec<u32>]) -> Vec<usize> {
    let mut step = vec![usize::MAX; n_instances];
    for (g, members) in groups.iter().enumerate() {
        for &m in members {
            // first group wins if an instance appears twice
            if step[m as usize] == usize::MAX {
                step[m as usize] = g + 1;
            }
        }
    }
    step
}

/// Exact availability curve for [`Strategy::NoReplication`] and
/// [`Strategy::Subscription`], and the exact *expectation* for
/// [`Strategy::Random`] (over the per-toot placement randomness).
///
/// `groups`: removal sequence; element `g` lists the instances removed at
/// step `g + 1`. Returns one point per step, including a step-0 baseline.
pub fn availability_curve(
    view: &ContentView,
    strategy: Strategy,
    groups: &[Vec<u32>],
) -> Vec<AvailabilityPoint> {
    match strategy {
        Strategy::Random { n } => random_expectation_curve(view, n, groups),
        _ => exact_curve(view, strategy, groups),
    }
}

/// Fold per-step lost-toot masses into a cumulative availability curve:
/// point 0 is the intact network, point `k` subtracts all mass whose death
/// step is `<= k`. `death[k]` is the mass first lost at step `k`; entries
/// past `steps` are ignored. Masses are integral toot counts (well below
/// 2^53), so f64 accumulation is exact.
pub(crate) fn fold_availability(death: &[f64], steps: usize, total: f64) -> Vec<AvailabilityPoint> {
    let mut lost = 0.0;
    let mut out = Vec::with_capacity(steps + 1);
    out.push(AvailabilityPoint {
        removed: 0,
        availability: 1.0,
    });
    for (k, &dead) in death.iter().enumerate().take(steps + 1).skip(1) {
        lost += dead;
        out.push(AvailabilityPoint {
            removed: k,
            availability: 1.0 - lost / total,
        });
    }
    out
}

fn exact_curve(
    view: &ContentView,
    strategy: Strategy,
    groups: &[Vec<u32>],
) -> Vec<AvailabilityPoint> {
    let steps = removal_steps(view.n_instances, groups);
    // death step per user: all holders removed
    // availability(k) = 1 - sum_{death <= k} toots / total
    let mut death_toots = vec![0.0f64; groups.len() + 2]; // index by step
    for u in 0..view.n_users() {
        let home_step = steps[view.home[u] as usize];
        let death = match strategy {
            Strategy::NoReplication => home_step,
            Strategy::Subscription => {
                let mut death = home_step;
                for &f in &view.follower_instances[u] {
                    death = death.max(steps[f as usize]);
                }
                death
            }
            Strategy::Random { .. } => unreachable!("handled elsewhere"),
        };
        if death != usize::MAX && death <= groups.len() {
            death_toots[death] += view.toots[u] as f64;
        }
    }
    let total = view.total_toots.max(1) as f64;
    fold_availability(&death_toots, groups.len(), total)
}

/// Exact expectation for random replication: a toot with a removed home
/// survives unless all `n` replicas (uniform without replacement over all
/// instances) are inside the removed set — a hypergeometric zero-overlap
/// complement.
fn random_expectation_curve(
    view: &ContentView,
    n: usize,
    groups: &[Vec<u32>],
) -> Vec<AvailabilityPoint> {
    let steps = removal_steps(view.n_instances, groups);
    // toots whose home dies at step k
    let mut home_death_toots = vec![0u64; groups.len() + 2];
    for u in 0..view.n_users() {
        let s = steps[view.home[u] as usize];
        if s != usize::MAX && s <= groups.len() {
            home_death_toots[s] += view.toots[u];
        }
    }
    let total = view.total_toots.max(1) as f64;
    let i_total = view.n_instances;
    let mut removed_count = 0usize;
    let mut homeless = 0u64; // toots with removed homes so far
    let mut out = Vec::with_capacity(groups.len() + 1);
    out.push(AvailabilityPoint {
        removed: 0,
        availability: 1.0,
    });
    for k in 1..=groups.len() {
        removed_count += groups[k - 1].len();
        homeless += home_death_toots[k];
        // P(all n replicas fall in the removed set)
        let mut p_all_gone = 1.0f64;
        for i in 0..n {
            let num = removed_count.saturating_sub(i) as f64;
            let den = (i_total - i).max(1) as f64;
            p_all_gone *= (num / den).clamp(0.0, 1.0);
        }
        let expected_lost = homeless as f64 * p_all_gone;
        out.push(AvailabilityPoint {
            removed: k,
            availability: 1.0 - expected_lost / total,
        });
    }
    out
}

/// Monte-Carlo evaluation of random replication with explicit per-toot
/// placements (exercises the real code path; used to validate the
/// expectation and by the DHT-backed write-path demo). `toot_cap` bounds
/// the sampled toots per user (remaining toots reuse sampled placements in
/// proportion — a documented approximation).
pub fn random_monte_carlo_curve(
    view: &ContentView,
    n: usize,
    groups: &[Vec<u32>],
    toot_cap: u32,
    seed: u64,
) -> Vec<AvailabilityPoint> {
    let steps = removal_steps(view.n_instances, groups);
    let mut rng = StdRng::seed_from_u64(seed);
    // death_weight[k] accumulates toot weight dying exactly at step k
    let mut death_toots = vec![0f64; groups.len() + 2];
    for u in 0..view.n_users() {
        if view.toots[u] == 0 {
            continue;
        }
        let home_step = steps[view.home[u] as usize];
        if home_step == usize::MAX || home_step > groups.len() {
            continue; // home survives: toot always available
        }
        let samples = view.toots[u].min(toot_cap as u64) as u32;
        let weight_per_sample = view.toots[u] as f64 / samples as f64;
        for _ in 0..samples {
            // sample n distinct replica instances
            let mut replicas: Vec<u32> = Vec::with_capacity(n);
            while replicas.len() < n.min(view.n_instances) {
                let cand = rng.gen_range(0..view.n_instances as u32);
                if !replicas.contains(&cand) {
                    replicas.push(cand);
                }
            }
            let mut death = home_step;
            for &r in &replicas {
                death = death.max(steps[r as usize]);
            }
            if death != usize::MAX && death <= groups.len() {
                death_toots[death] += weight_per_sample;
            }
        }
    }
    let total = view.total_toots.max(1) as f64;
    fold_availability(&death_toots, groups.len(), total)
}

/// Convenience: turn a flat instance order into single-member groups.
pub fn singleton_groups(order: &[u32]) -> Vec<Vec<u32>> {
    order.iter().map(|&i| vec![i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_worldgen::{Generator, WorldConfig};

    fn view() -> ContentView {
        let mut cfg = WorldConfig::tiny(41);
        cfg.n_instances = 40;
        cfg.n_users = 1200;
        ContentView::from_world(&Generator::generate_world(cfg))
    }

    /// Removal order: by per-instance toot volume, descending.
    fn toot_order(v: &ContentView) -> Vec<u32> {
        let mut toots = vec![0u64; v.n_instances];
        for u in 0..v.n_users() {
            toots[v.home[u] as usize] += v.toots[u];
        }
        let mut order: Vec<u32> = (0..v.n_instances as u32).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(toots[i as usize]));
        order
    }

    #[test]
    fn baseline_is_full_availability() {
        let v = view();
        let groups = singleton_groups(&toot_order(&v)[..10]);
        for strat in [
            Strategy::NoReplication,
            Strategy::Subscription,
            Strategy::Random { n: 2 },
        ] {
            let curve = availability_curve(&v, strat, &groups);
            assert_eq!(curve[0].availability, 1.0);
            assert_eq!(curve.len(), 11);
        }
    }

    #[test]
    fn availability_monotone_decreasing() {
        let v = view();
        let groups = singleton_groups(&toot_order(&v));
        for strat in [
            Strategy::NoReplication,
            Strategy::Subscription,
            Strategy::Random { n: 3 },
        ] {
            let curve = availability_curve(&v, strat, &groups);
            for w in curve.windows(2) {
                assert!(
                    w[1].availability <= w[0].availability + 1e-12,
                    "{strat:?} not monotone"
                );
            }
        }
    }

    #[test]
    fn strategy_ordering_no_rep_worst() {
        let v = view();
        let groups = singleton_groups(&toot_order(&v)[..10]);
        let none = availability_curve(&v, Strategy::NoReplication, &groups);
        let sub = availability_curve(&v, Strategy::Subscription, &groups);
        let rnd = availability_curve(&v, Strategy::Random { n: 3 }, &groups);
        for k in 1..=10 {
            assert!(
                sub[k].availability >= none[k].availability - 1e-12,
                "subscription must dominate no-replication"
            );
            assert!(
                rnd[k].availability >= none[k].availability - 1e-12,
                "random must dominate no-replication"
            );
        }
        // the paper's headline: removing the top instances kills the
        // no-replication world but barely dents the replicated ones
        assert!(none[10].availability < sub[10].availability);
    }

    #[test]
    fn random_monotone_in_n() {
        let v = view();
        let groups = singleton_groups(&toot_order(&v)[..15]);
        let mut prev: Option<Vec<AvailabilityPoint>> = None;
        for n in [1usize, 2, 4, 7] {
            let curve = availability_curve(&v, Strategy::Random { n }, &groups);
            if let Some(p) = &prev {
                for k in 0..curve.len() {
                    assert!(
                        curve[k].availability >= p[k].availability - 1e-12,
                        "more replicas must not hurt (n={n}, k={k})"
                    );
                }
            }
            prev = Some(curve);
        }
    }

    #[test]
    fn removing_everything_kills_everything() {
        let v = view();
        let all: Vec<u32> = (0..v.n_instances as u32).collect();
        let groups = vec![all]; // one giant group
        for strat in [
            Strategy::NoReplication,
            Strategy::Subscription,
            Strategy::Random { n: 4 },
        ] {
            let curve = availability_curve(&v, strat, &groups);
            assert!(
                curve[1].availability.abs() < 1e-9,
                "{strat:?} availability {} after total removal",
                curve[1].availability
            );
        }
    }

    #[test]
    fn monte_carlo_matches_expectation() {
        let v = view();
        let groups = singleton_groups(&toot_order(&v)[..12]);
        let n = 2;
        let exact = availability_curve(&v, Strategy::Random { n }, &groups);
        let mc = random_monte_carlo_curve(&v, n, &groups, 32, 99);
        for k in 0..exact.len() {
            assert!(
                (exact[k].availability - mc[k].availability).abs() < 0.05,
                "k={k}: exact {} vs mc {}",
                exact[k].availability,
                mc[k].availability
            );
        }
    }

    #[test]
    fn grouped_as_removal_is_harsher_than_single() {
        let v = view();
        let order = toot_order(&v);
        // group the top 10 into 2 "ASes" of 5 vs removing 2 single instances
        let grouped = vec![order[..5].to_vec(), order[5..10].to_vec()];
        let single = singleton_groups(&order[..2]);
        let g = availability_curve(&v, Strategy::NoReplication, &grouped);
        let s = availability_curve(&v, Strategy::NoReplication, &single);
        assert!(g[2].availability <= s[2].availability + 1e-12);
    }

    #[test]
    fn duplicate_instance_in_groups_ignored() {
        let v = view();
        let groups = vec![vec![0u32], vec![0u32, 1]];
        let curve = availability_curve(&v, Strategy::NoReplication, &groups);
        assert_eq!(curve.len(), 3);
        for w in curve.windows(2) {
            assert!(w[1].availability <= w[0].availability + 1e-12);
        }
    }
}
