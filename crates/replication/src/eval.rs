//! Availability-under-failure evaluation (Figs. 15 and 16).
//!
//! A toot is *available* if at least one live instance holds a copy and the
//! copy is discoverable through the assumed global index (§5.2: "we assume
//! the presence of a global index (such as a Distributed Hash Table)").
//!
//! Removal is modelled as a fixed sequence of instances (or groups of
//! instances = ASes); after each prefix, availability is the fraction of
//! all toots with a surviving holder.
//!
//! Two engines cover the same semantics:
//!
//! - [`availability_curve`] is the naive per-strategy reference: one full
//!   pass over every user (and every holder entry) *per strategy*.
//! - [`AvailabilitySweep`] is the batched engine: the removal schedule is
//!   compiled once into a [`RemovalPlan`], then **one** sharded scan over
//!   the users folds each user's death step into per-strategy death
//!   histograms — no-replication, subscription, and every requested
//!   `Random{n}` come out of the same pass. All histogram mass is integral
//!   toot counts accumulated in `u64`, so shard merging is exact and the
//!   output is bit-identical to the reference no matter how many threads
//!   or shards run (differential proptests below pin this).

use crate::content::ContentView;
use fediscope_graph::par;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Replication strategy under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Home instance only.
    NoReplication,
    /// Home + every follower instance (persistent + globally indexed).
    Subscription,
    /// Home + `n` uniformly random instances per toot.
    Random {
        /// Replica count.
        n: usize,
    },
}

/// One point of an availability curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityPoint {
    /// Instances (or groups) removed so far.
    pub removed: usize,
    /// Fraction of toots still available, in `[0, 1]`.
    pub availability: f64,
}

/// Map each instance to the 1-based step at which it is removed
/// (`usize::MAX` = never). Steps come from a grouped order: group `g`
/// (0-based) is removed at step `g + 1`.
fn removal_steps(n_instances: usize, groups: &[Vec<u32>]) -> Vec<usize> {
    let mut step = vec![usize::MAX; n_instances];
    for (g, members) in groups.iter().enumerate() {
        for &m in members {
            // first group wins if an instance appears twice
            if step[m as usize] == usize::MAX {
                step[m as usize] = g + 1;
            }
        }
    }
    step
}

/// A removal schedule compiled for repeated evaluation: the per-instance
/// death step plus the cumulative removed-instance count after each step.
///
/// Built from either a flat instance order ([`RemovalPlan::from_order`] —
/// no per-element allocation, unlike materialising singleton groups) or a
/// grouped order ([`RemovalPlan::from_groups`], one group per step, as in
/// AS-failure sweeps).
#[derive(Debug, Clone, PartialEq)]
pub struct RemovalPlan {
    /// 1-based step at which each instance dies; `u32::MAX` = never. `u32`
    /// keeps the table half the size of the reference evaluator's — at the
    /// `modern` tier it stays cache-resident under the holder walk's
    /// random access pattern.
    steps: Vec<u32>,
    /// `removed_prefix[k]`: instances removed after step `k` (duplicated
    /// members count once per listing, mirroring the reference evaluator).
    removed_prefix: Vec<usize>,
    /// Instances that are ever removed (ascending, deduplicated) —
    /// compiled here once so every evaluation (batched sweep, fused
    /// two-plan walk, Monte-Carlo) starts from the list directly instead
    /// of re-filtering all `n_instances` per call.
    removed: Vec<u32>,
}

/// Sentinel step for instances that are never removed.
pub(crate) const NEVER: u32 = u32::MAX;

/// Ascending list of instances with a finite death step.
fn removed_of(steps: &[u32]) -> Vec<u32> {
    (0..steps.len() as u32)
        .filter(|&i| steps[i as usize] != NEVER)
        .collect()
}

impl RemovalPlan {
    /// Compile a flat order: element `g` is removed (alone) at step `g + 1`.
    pub fn from_order(n_instances: usize, order: &[u32]) -> Self {
        assert!(order.len() < NEVER as usize, "order too long for u32 steps");
        let mut steps = vec![NEVER; n_instances];
        for (g, &m) in order.iter().enumerate() {
            if steps[m as usize] == NEVER {
                steps[m as usize] = g as u32 + 1;
            }
        }
        let removed = removed_of(&steps);
        RemovalPlan {
            steps,
            removed_prefix: (0..=order.len()).collect(),
            removed,
        }
    }

    /// Compile a grouped order: group `g`'s members are all removed at step
    /// `g + 1` (first listing wins for instances appearing twice).
    pub fn from_groups(n_instances: usize, groups: &[Vec<u32>]) -> Self {
        assert!(groups.len() < NEVER as usize, "too many groups for u32 steps");
        let mut steps = vec![NEVER; n_instances];
        for (g, members) in groups.iter().enumerate() {
            for &m in members {
                if steps[m as usize] == NEVER {
                    steps[m as usize] = g as u32 + 1;
                }
            }
        }
        let mut removed_prefix = Vec::with_capacity(groups.len() + 1);
        let mut acc = 0usize;
        removed_prefix.push(0);
        for g in groups {
            acc += g.len();
            removed_prefix.push(acc);
        }
        let removed = removed_of(&steps);
        RemovalPlan {
            steps,
            removed_prefix,
            removed,
        }
    }

    /// Number of removal steps.
    pub fn n_steps(&self) -> usize {
        self.removed_prefix.len() - 1
    }

    /// Instances removed at any step (ascending, deduplicated).
    pub fn removed_instances(&self) -> &[u32] {
        &self.removed
    }

    /// Per-instance death step table (`u32::MAX` = never removed), for
    /// in-crate evaluators built on the same plan compilation.
    pub(crate) fn steps(&self) -> &[u32] {
        &self.steps
    }
}

/// All curves produced by one [`AvailabilitySweep::evaluate`] pass.
#[derive(Debug, Clone, PartialEq)]
pub struct AvailabilityBatch {
    /// [`Strategy::NoReplication`] curve.
    pub none: Vec<AvailabilityPoint>,
    /// [`Strategy::Subscription`] curve.
    pub subscription: Vec<AvailabilityPoint>,
    /// `(n, curve)` for each requested [`Strategy::Random`] replica count.
    pub random: Vec<(usize, Vec<AvailabilityPoint>)>,
}

/// Users per shard for the batched scan and the Monte-Carlo evaluator.
/// Fixed (not thread-count-derived) so the shard layout never varies; the
/// merged histograms are exact integer sums either way, so this constant
/// only affects scheduling, never output.
const EVAL_CHUNK_USERS: usize = 65_536;

/// The batched availability engine: one compiled [`RemovalPlan`] evaluated
/// for every strategy in a single sharded pass over the users.
pub struct AvailabilitySweep<'v> {
    view: &'v ContentView,
    plan: RemovalPlan,
}

impl<'v> AvailabilitySweep<'v> {
    /// Sweep a flat instance order (one instance per step, zero per-step
    /// allocation).
    pub fn singletons(view: &'v ContentView, order: &[u32]) -> Self {
        Self::with_plan(view, RemovalPlan::from_order(view.n_instances, order))
    }

    /// Sweep a grouped order (one group — e.g. one AS — per step).
    pub fn grouped(view: &'v ContentView, groups: &[Vec<u32>]) -> Self {
        Self::with_plan(view, RemovalPlan::from_groups(view.n_instances, groups))
    }

    /// Sweep a pre-compiled plan.
    pub fn with_plan(view: &'v ContentView, plan: RemovalPlan) -> Self {
        assert_eq!(
            plan.steps.len(),
            view.n_instances,
            "plan compiled for a different instance count"
        );
        AvailabilitySweep { view, plan }
    }

    /// The compiled plan.
    pub fn plan(&self) -> &RemovalPlan {
        &self.plan
    }

    /// Evaluate every strategy in one pass: the no-replication and
    /// subscription curves plus one exact-expectation curve per entry of
    /// `random_ns`.
    ///
    /// One scan folds each user's home death step (no-replication *and* the
    /// shared input of every random curve) and subscription death step
    /// (max over the CSR holder slice, short-circuited on the first
    /// surviving holder) into two `u64` histograms; the scan is sharded
    /// over users via [`par::parallel_map`] and merged with exact integer
    /// adds, so output is independent of thread and shard count.
    pub fn evaluate(&self, random_ns: &[usize]) -> AvailabilityBatch {
        let (home_death, sub_death) = self.death_histograms();
        batch_from_histograms(self.view, &self.plan, &home_death, &sub_death, random_ns)
    }

    /// The sharded scan: returns `(home_death, sub_death)` histograms of
    /// toot mass indexed by death step.
    ///
    /// The scan is *inverted*: only users homed on a **removed** instance
    /// can lose their toots under either strategy, so it walks the
    /// resident-arena segments of the plan's precompiled removed list
    /// instead of the whole population — sublinear in users whenever the
    /// removal order is a prefix of the network. Histograms are `u64`
    /// (toot counts are integral), so shard merging is exact and the
    /// result is independent of shard layout and thread count.
    fn death_histograms(&self) -> (Vec<u64>, Vec<u64>) {
        let view = self.view;
        let steps = &self.plan.steps[..];
        let n_steps = self.plan.n_steps();
        let removed = &self.plan.removed[..];
        let shards = instance_shards(view, removed, EVAL_CHUNK_USERS);
        let partials = par::parallel_map(&shards, |&(lo, hi)| {
            let mut home_death = vec![0u64; n_steps + 2];
            let mut sub_death = vec![0u64; n_steps + 2];
            for &inst in &removed[lo..hi] {
                let home_step = steps[inst as usize];
                // Walk the instance's resident-arena segment: toot counts
                // and holder slices stream sequentially (home-major
                // layout), and zero-toot users are already excluded.
                let (rlo, rhi) = (
                    view.res_bounds[inst as usize] as usize,
                    view.res_bounds[inst as usize + 1] as usize,
                );
                // Every resident loses its home at the same step — fold
                // the mass locally, one histogram add per segment.
                let mut seg_toots = 0u64;
                for row in rlo..rhi {
                    let toots = view.res_toots[row];
                    seg_toots += toots;
                    // Subscription death = max step over home + holders;
                    // any surviving holder (step NEVER) keeps the toot, so
                    // the scan stops at the first one.
                    let mut death = home_step;
                    let mut all_gone = true;
                    for &f in &view.res_holder_data[view.res_holder_offsets[row] as usize
                        ..view.res_holder_offsets[row + 1] as usize]
                    {
                        let s = steps[f as usize];
                        if s == NEVER {
                            all_gone = false;
                            break;
                        }
                        death = death.max(s);
                    }
                    if all_gone {
                        sub_death[death as usize] += toots;
                    }
                }
                home_death[home_step as usize] += seg_toots;
            }
            (home_death, sub_death)
        });
        let mut home_death = vec![0u64; n_steps + 2];
        let mut sub_death = vec![0u64; n_steps + 2];
        for (h, s) in partials {
            for (acc, v) in home_death.iter_mut().zip(&h) {
                *acc += v;
            }
            for (acc, v) in sub_death.iter_mut().zip(&s) {
                *acc += v;
            }
        }
        (home_death, sub_death)
    }

    /// Monte-Carlo evaluation of random replication with explicit per-toot
    /// placements — see [`random_monte_carlo_curve`] for semantics. Runs
    /// sharded with the default chunk size.
    pub fn monte_carlo(&self, n: usize, toot_cap: u32, seed: u64) -> Vec<AvailabilityPoint> {
        self.monte_carlo_chunked(n, toot_cap, seed, EVAL_CHUNK_USERS)
    }

    /// [`Self::monte_carlo`] with an explicit shard size (resident rows
    /// per shard).
    ///
    /// The walk is *inverted* onto the resident arena: only users homed
    /// on a removed instance can lose a placement race, so the scan
    /// iterates the plan's removed instances' resident segments
    /// (sequential toot counts + user ids) instead of testing every user
    /// in the population — sublinear in users for any realistic removal
    /// prefix.
    ///
    /// Output is **independent of `chunk_rows`**: each user draws from its
    /// own counter-derived RNG stream and contributes integral toot mass to
    /// a `u64` histogram, so shard merging is exact in any order. Exposed
    /// so tests can pin 1-shard ≡ N-shard equality.
    pub fn monte_carlo_chunked(
        &self,
        n: usize,
        toot_cap: u32,
        seed: u64,
        chunk_rows: usize,
    ) -> Vec<AvailabilityPoint> {
        assert!(chunk_rows > 0, "chunk_rows must be positive");
        assert!(toot_cap > 0, "toot_cap must be positive");
        let view = self.view;
        let steps = &self.plan.steps[..];
        let n_steps = self.plan.n_steps();
        let n_inst = view.n_instances;
        let target = n.min(n_inst);
        let removed = &self.plan.removed[..];
        let shards = instance_shards(view, removed, chunk_rows);

        let partials = par::parallel_map(&shards, |&(lo, hi)| {
            let mut death = vec![0u64; n_steps + 2];
            // Stamped scratch: `stamp[i] == epoch` marks instance i as
            // already picked for the current sample — O(1) distinctness
            // instead of a linear `contains` over a per-sample Vec.
            let mut stamp = vec![0u64; n_inst];
            let mut epoch = 0u64;
            for &inst in &removed[lo..hi] {
                // Every resident's home dies at this step; the arena rows
                // carry exactly the tooting users (zero-toot users hold
                // no mass and are already excluded).
                let home_step = steps[inst as usize] as usize;
                let (rlo, rhi) = (
                    view.res_bounds[inst as usize] as usize,
                    view.res_bounds[inst as usize + 1] as usize,
                );
                for row in rlo..rhi {
                    let toots = view.res_toots[row];
                    // Counter-derived per-user stream: placement draws do
                    // not depend on which shard (or thread) processes the
                    // user — and match the former full-population scan
                    // stream for stream.
                    let mut rng = user_stream_rng(seed, view.res_users[row] as usize);
                    let samples = toots.min(toot_cap as u64);
                    // Integral weights: sample j stands for base (+1 for
                    // the first `rem` samples) real toots, so histogram
                    // mass stays integer-exact under any accumulation
                    // order.
                    let base = toots / samples;
                    let rem = toots % samples;
                    for j in 0..samples {
                        epoch += 1;
                        let mut dead_step = home_step;
                        let mut picked = 0usize;
                        while picked < target {
                            let cand = rng.gen_range(0..n_inst as u32) as usize;
                            if stamp[cand] != epoch {
                                stamp[cand] = epoch;
                                picked += 1;
                                let s = steps[cand] as usize;
                                if s > dead_step {
                                    dead_step = s;
                                }
                            }
                        }
                        if dead_step <= n_steps {
                            death[dead_step] += base + u64::from(j < rem);
                        }
                    }
                }
            }
            death
        });
        let mut death = vec![0u64; n_steps + 2];
        for h in partials {
            for (acc, v) in death.iter_mut().zip(&h) {
                *acc += v;
            }
        }
        let total = view.total_toots.max(1) as f64;
        let death_f: Vec<f64> = death.iter().map(|&v| v as f64).collect();
        fold_availability(&death_f, n_steps, total)
    }
}

/// Shard ranges over a removed-instance list, split at instance
/// boundaries so each shard covers roughly `chunk_rows` resident rows.
/// Layout depends only on the view, the list, and the chunk target —
/// never on the thread count (and the merged histograms are exact
/// integer sums, so the layout could not change output even if it did).
pub(crate) fn instance_shards(
    view: &ContentView,
    removed: &[u32],
    chunk_rows: usize,
) -> Vec<(usize, usize)> {
    let mut shards = Vec::new();
    let mut lo = 0usize;
    let mut rows = 0usize;
    for (k, &inst) in removed.iter().enumerate() {
        let i = inst as usize;
        rows += (view.res_bounds[i + 1] - view.res_bounds[i]) as usize;
        if rows >= chunk_rows {
            shards.push((lo, k + 1));
            lo = k + 1;
            rows = 0;
        }
    }
    if lo < removed.len() {
        shards.push((lo, removed.len()));
    }
    shards
}

/// Assemble every strategy curve of one plan from its two death
/// histograms (shared by [`AvailabilitySweep::evaluate`] and the fused
/// two-plan walk, so both paths produce byte-identical batches).
fn batch_from_histograms(
    view: &ContentView,
    plan: &RemovalPlan,
    home_death: &[u64],
    sub_death: &[u64],
    random_ns: &[usize],
) -> AvailabilityBatch {
    let n_steps = plan.n_steps();
    let total = view.total_toots.max(1) as f64;
    let to_f64 = |h: &[u64]| h.iter().map(|&v| v as f64).collect::<Vec<f64>>();
    AvailabilityBatch {
        none: fold_availability(&to_f64(home_death), n_steps, total),
        subscription: fold_availability(&to_f64(sub_death), n_steps, total),
        random: random_ns
            .iter()
            .map(|&n| (n, random_curve_from_home_deaths(view, plan, home_death, n)))
            .collect(),
    }
}

/// Exact random-replication expectation from the shared home-death
/// histogram — term-for-term the same float sequence as the reference
/// evaluator, so the curves match bit-for-bit.
fn random_curve_from_home_deaths(
    view: &ContentView,
    plan: &RemovalPlan,
    home_death: &[u64],
    n: usize,
) -> Vec<AvailabilityPoint> {
    let n_steps = plan.n_steps();
    let total = view.total_toots.max(1) as f64;
    let i_total = view.n_instances;
    let mut homeless = 0u64;
    let mut out = Vec::with_capacity(n_steps + 1);
    out.push(AvailabilityPoint {
        removed: 0,
        availability: 1.0,
    });
    for (k, &dead) in home_death.iter().enumerate().take(n_steps + 1).skip(1) {
        let removed_count = plan.removed_prefix[k];
        homeless += dead;
        let mut p_all_gone = 1.0f64;
        for i in 0..n {
            let num = removed_count.saturating_sub(i) as f64;
            let den = (i_total - i).max(1) as f64;
            p_all_gone *= (num / den).clamp(0.0, 1.0);
        }
        let expected_lost = homeless as f64 * p_all_gone;
        out.push(AvailabilityPoint {
            removed: k,
            availability: 1.0 - expected_lost / total,
        });
    }
    out
}

/// Evaluate **two** removal plans out of one walk over the union of
/// their removed instances' resident segments.
///
/// Fig. 15 sweeps the same world under two orders (top instances, top
/// ASes) whose removed sets overlap heavily; evaluating them separately
/// re-streams the shared segments. This fused walk reads each segment
/// once, folding every resident's death steps under *both* plans into
/// both histogram pairs — the holder scan keeps one cursor and stops as
/// soon as each active plan has found a surviving holder. Histograms are
/// exact `u64` sums, so each returned batch is bit-identical to what
/// `AvailabilitySweep::with_plan(view, plan).evaluate(random_ns)` yields
/// for that plan alone, at any shard or thread count.
pub fn evaluate_plans_fused(
    view: &ContentView,
    plan_a: &RemovalPlan,
    plan_b: &RemovalPlan,
    random_ns: &[usize],
) -> (AvailabilityBatch, AvailabilityBatch) {
    assert_eq!(plan_a.steps.len(), view.n_instances, "plan A instance count");
    assert_eq!(plan_b.steps.len(), view.n_instances, "plan B instance count");
    let steps_a = &plan_a.steps[..];
    let steps_b = &plan_b.steps[..];
    let (na, nb) = (plan_a.n_steps(), plan_b.n_steps());

    // Union of the two removed lists (both ascending, deduplicated).
    let mut union = Vec::with_capacity(plan_a.removed.len() + plan_b.removed.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < plan_a.removed.len() || j < plan_b.removed.len() {
        let x = plan_a.removed.get(i).copied().unwrap_or(u32::MAX);
        let y = plan_b.removed.get(j).copied().unwrap_or(u32::MAX);
        union.push(x.min(y));
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }

    let shards = instance_shards(view, &union, EVAL_CHUNK_USERS);
    let partials = par::parallel_map(&shards, |&(lo, hi)| {
        let mut home_a = vec![0u64; na + 2];
        let mut sub_a = vec![0u64; na + 2];
        let mut home_b = vec![0u64; nb + 2];
        let mut sub_b = vec![0u64; nb + 2];
        for &inst in &union[lo..hi] {
            let ha = steps_a[inst as usize];
            let hb = steps_b[inst as usize];
            let (need_a, need_b) = (ha != NEVER, hb != NEVER);
            let (rlo, rhi) = (
                view.res_bounds[inst as usize] as usize,
                view.res_bounds[inst as usize + 1] as usize,
            );
            let mut seg_toots = 0u64;
            for row in rlo..rhi {
                let toots = view.res_toots[row];
                seg_toots += toots;
                // One holder cursor serves both plans: each plan's
                // subscription death is the max step over home+holders,
                // falsified by the first holder that survives that plan.
                let mut death_a = ha;
                let mut death_b = hb;
                let mut gone_a = need_a;
                let mut gone_b = need_b;
                for &f in &view.res_holder_data[view.res_holder_offsets[row] as usize
                    ..view.res_holder_offsets[row + 1] as usize]
                {
                    if gone_a {
                        let s = steps_a[f as usize];
                        if s == NEVER {
                            gone_a = false;
                        } else {
                            death_a = death_a.max(s);
                        }
                    }
                    if gone_b {
                        let s = steps_b[f as usize];
                        if s == NEVER {
                            gone_b = false;
                        } else {
                            death_b = death_b.max(s);
                        }
                    }
                    if !gone_a && !gone_b {
                        break;
                    }
                }
                if gone_a {
                    sub_a[death_a as usize] += toots;
                }
                if gone_b {
                    sub_b[death_b as usize] += toots;
                }
            }
            if need_a {
                home_a[ha as usize] += seg_toots;
            }
            if need_b {
                home_b[hb as usize] += seg_toots;
            }
        }
        (home_a, sub_a, home_b, sub_b)
    });
    let mut home_a = vec![0u64; na + 2];
    let mut sub_a = vec![0u64; na + 2];
    let mut home_b = vec![0u64; nb + 2];
    let mut sub_b = vec![0u64; nb + 2];
    for (pha, psa, phb, psb) in partials {
        for (acc, v) in home_a.iter_mut().zip(&pha) {
            *acc += v;
        }
        for (acc, v) in sub_a.iter_mut().zip(&psa) {
            *acc += v;
        }
        for (acc, v) in home_b.iter_mut().zip(&phb) {
            *acc += v;
        }
        for (acc, v) in sub_b.iter_mut().zip(&psb) {
            *acc += v;
        }
    }
    (
        batch_from_histograms(view, plan_a, &home_a, &sub_a, random_ns),
        batch_from_histograms(view, plan_b, &home_b, &sub_b, random_ns),
    )
}

/// The RNG stream for user `u`: a golden-ratio counter mix feeding the
/// SplitMix64 expansion inside `seed_from_u64`, so streams are
/// decorrelated and depend only on `(seed, u)` — never on scheduling.
/// Shared with the capacity-weighted evaluator (`weighted.rs`) so both
/// Monte-Carlo engines draw from the same per-user streams.
pub(crate) fn user_stream_rng(seed: u64, u: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ (u as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Exact availability curve for [`Strategy::NoReplication`] and
/// [`Strategy::Subscription`], and the exact *expectation* for
/// [`Strategy::Random`] (over the per-toot placement randomness).
///
/// `groups`: removal sequence; element `g` lists the instances removed at
/// step `g + 1`. Returns one point per step, including a step-0 baseline.
///
/// This is the naive reference engine — one full pass per strategy. The
/// batched [`AvailabilitySweep`] produces bit-identical curves for every
/// strategy in a single pass; this path is kept as the differential
/// baseline.
pub fn availability_curve(
    view: &ContentView,
    strategy: Strategy,
    groups: &[Vec<u32>],
) -> Vec<AvailabilityPoint> {
    match strategy {
        Strategy::Random { n } => random_expectation_curve(view, n, groups),
        _ => exact_curve(view, strategy, groups),
    }
}

/// Fold per-step lost-toot masses into a cumulative availability curve:
/// point 0 is the intact network, point `k` subtracts all mass whose death
/// step is `<= k`. `death[k]` is the mass first lost at step `k`; entries
/// past `steps` are ignored. Masses are integral toot counts (well below
/// 2^53), so f64 accumulation is exact.
pub(crate) fn fold_availability(death: &[f64], steps: usize, total: f64) -> Vec<AvailabilityPoint> {
    let mut lost = 0.0;
    let mut out = Vec::with_capacity(steps + 1);
    out.push(AvailabilityPoint {
        removed: 0,
        availability: 1.0,
    });
    for (k, &dead) in death.iter().enumerate().take(steps + 1).skip(1) {
        lost += dead;
        out.push(AvailabilityPoint {
            removed: k,
            availability: 1.0 - lost / total,
        });
    }
    out
}

fn exact_curve(
    view: &ContentView,
    strategy: Strategy,
    groups: &[Vec<u32>],
) -> Vec<AvailabilityPoint> {
    let steps = removal_steps(view.n_instances, groups);
    // death step per user: all holders removed
    // availability(k) = 1 - sum_{death <= k} toots / total
    let mut death_toots = vec![0.0f64; groups.len() + 2]; // index by step
    for u in 0..view.n_users() {
        let home_step = steps[view.home[u] as usize];
        let death = match strategy {
            Strategy::NoReplication => home_step,
            Strategy::Subscription => {
                let mut death = home_step;
                for &f in view.follower_instances(u) {
                    death = death.max(steps[f as usize]);
                }
                death
            }
            Strategy::Random { .. } => unreachable!("handled elsewhere"),
        };
        if death != usize::MAX && death <= groups.len() {
            death_toots[death] += view.toots[u] as f64;
        }
    }
    let total = view.total_toots.max(1) as f64;
    fold_availability(&death_toots, groups.len(), total)
}

/// Exact expectation for random replication: a toot with a removed home
/// survives unless all `n` replicas (uniform without replacement over all
/// instances) are inside the removed set — a hypergeometric zero-overlap
/// complement.
fn random_expectation_curve(
    view: &ContentView,
    n: usize,
    groups: &[Vec<u32>],
) -> Vec<AvailabilityPoint> {
    let steps = removal_steps(view.n_instances, groups);
    // toots whose home dies at step k
    let mut home_death_toots = vec![0u64; groups.len() + 2];
    for u in 0..view.n_users() {
        let s = steps[view.home[u] as usize];
        if s != usize::MAX && s <= groups.len() {
            home_death_toots[s] += view.toots[u];
        }
    }
    let total = view.total_toots.max(1) as f64;
    let i_total = view.n_instances;
    let mut removed_count = 0usize;
    let mut homeless = 0u64; // toots with removed homes so far
    let mut out = Vec::with_capacity(groups.len() + 1);
    out.push(AvailabilityPoint {
        removed: 0,
        availability: 1.0,
    });
    for k in 1..=groups.len() {
        removed_count += groups[k - 1].len();
        homeless += home_death_toots[k];
        // P(all n replicas fall in the removed set)
        let mut p_all_gone = 1.0f64;
        for i in 0..n {
            let num = removed_count.saturating_sub(i) as f64;
            let den = (i_total - i).max(1) as f64;
            p_all_gone *= (num / den).clamp(0.0, 1.0);
        }
        let expected_lost = homeless as f64 * p_all_gone;
        out.push(AvailabilityPoint {
            removed: k,
            availability: 1.0 - expected_lost / total,
        });
    }
    out
}

/// Monte-Carlo evaluation of random replication with explicit per-toot
/// placements (exercises the real code path; used to validate the
/// expectation and by the DHT-backed write-path demo). `toot_cap` bounds
/// the sampled toots per user; the remaining toots ride the sampled
/// placements with integral weights (`⌈toots/samples⌉` on the first
/// `toots % samples` draws, `⌊toots/samples⌋` after — a documented
/// approximation that keeps the histogram integer-exact).
///
/// Each user draws from its own counter-derived RNG stream, so the
/// evaluation shards over users with seed-stable, shard-count-independent
/// output (see [`AvailabilitySweep::monte_carlo_chunked`]).
pub fn random_monte_carlo_curve(
    view: &ContentView,
    n: usize,
    groups: &[Vec<u32>],
    toot_cap: u32,
    seed: u64,
) -> Vec<AvailabilityPoint> {
    AvailabilitySweep::grouped(view, groups).monte_carlo(n, toot_cap, seed)
}

/// Convenience: turn a flat instance order into single-member groups (the
/// naive engine's input shape; [`AvailabilitySweep::singletons`] consumes
/// the flat order directly, without this allocation).
pub fn singleton_groups(order: &[u32]) -> Vec<Vec<u32>> {
    order.iter().map(|&i| vec![i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_worldgen::{Generator, WorldConfig};

    fn view() -> ContentView {
        let mut cfg = WorldConfig::tiny(41);
        cfg.n_instances = 40;
        cfg.n_users = 1200;
        ContentView::from_world(&Generator::generate_world(cfg))
    }

    /// Removal order: by per-instance toot volume, descending.
    fn toot_order(v: &ContentView) -> Vec<u32> {
        let mut toots = vec![0u64; v.n_instances];
        for u in 0..v.n_users() {
            toots[v.home[u] as usize] += v.toots[u];
        }
        let mut order: Vec<u32> = (0..v.n_instances as u32).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(toots[i as usize]));
        order
    }

    #[test]
    fn baseline_is_full_availability() {
        let v = view();
        let groups = singleton_groups(&toot_order(&v)[..10]);
        for strat in [
            Strategy::NoReplication,
            Strategy::Subscription,
            Strategy::Random { n: 2 },
        ] {
            let curve = availability_curve(&v, strat, &groups);
            assert_eq!(curve[0].availability, 1.0);
            assert_eq!(curve.len(), 11);
        }
    }

    #[test]
    fn availability_monotone_decreasing() {
        let v = view();
        let groups = singleton_groups(&toot_order(&v));
        for strat in [
            Strategy::NoReplication,
            Strategy::Subscription,
            Strategy::Random { n: 3 },
        ] {
            let curve = availability_curve(&v, strat, &groups);
            for w in curve.windows(2) {
                assert!(
                    w[1].availability <= w[0].availability + 1e-12,
                    "{strat:?} not monotone"
                );
            }
        }
    }

    #[test]
    fn strategy_ordering_no_rep_worst() {
        let v = view();
        let groups = singleton_groups(&toot_order(&v)[..10]);
        let none = availability_curve(&v, Strategy::NoReplication, &groups);
        let sub = availability_curve(&v, Strategy::Subscription, &groups);
        let rnd = availability_curve(&v, Strategy::Random { n: 3 }, &groups);
        for k in 1..=10 {
            assert!(
                sub[k].availability >= none[k].availability - 1e-12,
                "subscription must dominate no-replication"
            );
            assert!(
                rnd[k].availability >= none[k].availability - 1e-12,
                "random must dominate no-replication"
            );
        }
        // the paper's headline: removing the top instances kills the
        // no-replication world but barely dents the replicated ones
        assert!(none[10].availability < sub[10].availability);
    }

    #[test]
    fn random_monotone_in_n() {
        let v = view();
        let groups = singleton_groups(&toot_order(&v)[..15]);
        let mut prev: Option<Vec<AvailabilityPoint>> = None;
        for n in [1usize, 2, 4, 7] {
            let curve = availability_curve(&v, Strategy::Random { n }, &groups);
            if let Some(p) = &prev {
                for k in 0..curve.len() {
                    assert!(
                        curve[k].availability >= p[k].availability - 1e-12,
                        "more replicas must not hurt (n={n}, k={k})"
                    );
                }
            }
            prev = Some(curve);
        }
    }

    #[test]
    fn removing_everything_kills_everything() {
        let v = view();
        let all: Vec<u32> = (0..v.n_instances as u32).collect();
        let groups = vec![all]; // one giant group
        for strat in [
            Strategy::NoReplication,
            Strategy::Subscription,
            Strategy::Random { n: 4 },
        ] {
            let curve = availability_curve(&v, strat, &groups);
            assert!(
                curve[1].availability.abs() < 1e-9,
                "{strat:?} availability {} after total removal",
                curve[1].availability
            );
        }
    }

    #[test]
    fn monte_carlo_matches_expectation() {
        let v = view();
        let groups = singleton_groups(&toot_order(&v)[..12]);
        let n = 2;
        let exact = availability_curve(&v, Strategy::Random { n }, &groups);
        let mc = random_monte_carlo_curve(&v, n, &groups, 32, 99);
        for k in 0..exact.len() {
            assert!(
                (exact[k].availability - mc[k].availability).abs() < 0.05,
                "k={k}: exact {} vs mc {}",
                exact[k].availability,
                mc[k].availability
            );
        }
    }

    #[test]
    fn grouped_as_removal_is_harsher_than_single() {
        let v = view();
        let order = toot_order(&v);
        // group the top 10 into 2 "ASes" of 5 vs removing 2 single instances
        let grouped = vec![order[..5].to_vec(), order[5..10].to_vec()];
        let single = singleton_groups(&order[..2]);
        let g = availability_curve(&v, Strategy::NoReplication, &grouped);
        let s = availability_curve(&v, Strategy::NoReplication, &single);
        assert!(g[2].availability <= s[2].availability + 1e-12);
    }

    #[test]
    fn duplicate_instance_in_groups_ignored() {
        let v = view();
        let groups = vec![vec![0u32], vec![0u32, 1]];
        let curve = availability_curve(&v, Strategy::NoReplication, &groups);
        assert_eq!(curve.len(), 3);
        for w in curve.windows(2) {
            assert!(w[1].availability <= w[0].availability + 1e-12);
        }
    }

    #[test]
    fn batched_sweep_matches_naive_on_flat_order() {
        let v = view();
        let order = toot_order(&v);
        let groups = singleton_groups(&order[..20]);
        let ns = [1usize, 2, 3, 4, 7, 9];
        let batch = AvailabilitySweep::singletons(&v, &order[..20]).evaluate(&ns);
        assert_eq!(
            batch.none,
            availability_curve(&v, Strategy::NoReplication, &groups)
        );
        assert_eq!(
            batch.subscription,
            availability_curve(&v, Strategy::Subscription, &groups)
        );
        for (n, curve) in &batch.random {
            assert_eq!(
                curve,
                &availability_curve(&v, Strategy::Random { n: *n }, &groups),
                "n={n}"
            );
        }
    }

    #[test]
    fn batched_sweep_matches_naive_on_groups() {
        let v = view();
        let order = toot_order(&v);
        let groups = vec![
            order[..5].to_vec(),
            order[5..7].to_vec(),
            order[7..16].to_vec(),
        ];
        let batch = AvailabilitySweep::grouped(&v, &groups).evaluate(&[2, 5]);
        assert_eq!(
            batch.none,
            availability_curve(&v, Strategy::NoReplication, &groups)
        );
        assert_eq!(
            batch.subscription,
            availability_curve(&v, Strategy::Subscription, &groups)
        );
        for (n, curve) in &batch.random {
            assert_eq!(
                curve,
                &availability_curve(&v, Strategy::Random { n: *n }, &groups)
            );
        }
    }

    #[test]
    fn plan_from_order_equals_singleton_groups_plan() {
        let v = view();
        let order = toot_order(&v);
        // include a duplicate to pin first-wins semantics
        let mut order = order[..12].to_vec();
        order.push(order[0]);
        let from_order = RemovalPlan::from_order(v.n_instances, &order);
        let from_groups = RemovalPlan::from_groups(v.n_instances, &singleton_groups(&order));
        assert_eq!(from_order, from_groups);
        assert_eq!(from_order.n_steps(), 13);
    }

    #[test]
    fn fused_two_plan_walk_equals_two_sweeps() {
        let v = view();
        let order = toot_order(&v);
        let inst_plan = RemovalPlan::from_order(v.n_instances, &order[..15]);
        // a grouped "AS" order overlapping the instance order
        let groups = vec![
            order[..4].to_vec(),
            order[10..14].to_vec(),
            order[20..26].to_vec(),
        ];
        let as_plan = RemovalPlan::from_groups(v.n_instances, &groups);
        let ns = [2usize, 5];
        let (fa, fb) = evaluate_plans_fused(&v, &inst_plan, &as_plan, &ns);
        let sa = AvailabilitySweep::with_plan(&v, inst_plan).evaluate(&ns);
        let sb = AvailabilitySweep::with_plan(&v, as_plan).evaluate(&ns);
        assert_eq!(fa, sa);
        assert_eq!(fb, sb);
    }

    #[test]
    fn fused_walk_with_empty_plan() {
        let v = view();
        let order = toot_order(&v);
        let some = RemovalPlan::from_order(v.n_instances, &order[..8]);
        let none = RemovalPlan::from_order(v.n_instances, &[]);
        let (fa, fb) = evaluate_plans_fused(&v, &some, &none, &[]);
        assert_eq!(fa, AvailabilitySweep::with_plan(&v, some).evaluate(&[]));
        assert_eq!(fb.none.len(), 1);
        assert_eq!(fb.none[0].availability, 1.0);
    }

    #[test]
    fn plan_removed_instances_are_sorted_unique() {
        let v = view();
        let order = toot_order(&v);
        let mut with_dup = order[..10].to_vec();
        with_dup.push(order[3]);
        let plan = RemovalPlan::from_order(v.n_instances, &with_dup);
        let removed = plan.removed_instances();
        assert_eq!(removed.len(), 10);
        assert!(removed.windows(2).all(|w| w[0] < w[1]));
        let mut expect = order[..10].to_vec();
        expect.sort_unstable();
        assert_eq!(removed, &expect[..]);
    }

    #[test]
    fn monte_carlo_shard_count_invariant() {
        let v = view();
        let order = toot_order(&v);
        let sweep = AvailabilitySweep::singletons(&v, &order[..12]);
        let one = sweep.monte_carlo_chunked(2, 16, 77, usize::MAX);
        let many = sweep.monte_carlo_chunked(2, 16, 77, 37);
        let tiny = sweep.monte_carlo_chunked(2, 16, 77, 1);
        assert_eq!(one, many);
        assert_eq!(one, tiny);
    }

    #[test]
    fn monte_carlo_integral_weights_cover_all_toots() {
        // Removing every instance must lose exactly the total mass: the
        // integral per-sample weights must sum to each user's toot count.
        let v = view();
        let all: Vec<u32> = (0..v.n_instances as u32).collect();
        let sweep = AvailabilitySweep::singletons(&v, &all);
        let curve = sweep.monte_carlo(3, 7, 5);
        assert!(
            curve.last().unwrap().availability.abs() < 1e-9,
            "all mass must be lost: {}",
            curve.last().unwrap().availability
        );
    }

    #[test]
    fn empty_order_is_baseline_only() {
        let v = view();
        let batch = AvailabilitySweep::singletons(&v, &[]).evaluate(&[3]);
        assert_eq!(batch.none.len(), 1);
        assert_eq!(batch.none[0].availability, 1.0);
        assert_eq!(batch.subscription.len(), 1);
        assert_eq!(batch.random[0].1.len(), 1);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    // the proptest prelude also exports a `Strategy` trait; the explicit
    // import keeps the replication enum in scope
    use super::Strategy;
    use fediscope_worldgen::{Generator, WorldConfig};
    use proptest::prelude::*;

    /// Random worlds × random (possibly duplicated) removal orders ×
    /// grouped/singleton shapes: the batched sweep must be bit-identical
    /// to the naive per-strategy reference for every strategy at once.
    fn tiny_view(seed: u64) -> ContentView {
        let mut cfg = WorldConfig::tiny(seed);
        cfg.n_instances = 24;
        cfg.n_users = 300;
        ContentView::from_world(&Generator::generate_world(cfg))
    }

    /// Chop `order` into groups at the given (sorted, deduped) cut points.
    fn chop(order: &[u32], cuts: &[usize]) -> Vec<Vec<u32>> {
        let mut groups = Vec::new();
        let mut lo = 0usize;
        for &c in cuts {
            let hi = c.min(order.len());
            if hi > lo {
                groups.push(order[lo..hi].to_vec());
            }
            lo = hi.max(lo);
        }
        if lo < order.len() {
            groups.push(order[lo..].to_vec());
        }
        groups
    }

    proptest! {
        #[test]
        fn batched_bit_identical_to_naive(
            seed in 0u64..1000,
            order in proptest::collection::vec(0u32..24, 0..40),
            mut cuts in proptest::collection::vec(0usize..40, 0..6),
            grouped in any::<bool>(),
        ) {
            let v = tiny_view(seed);
            let groups = if grouped {
                cuts.sort_unstable();
                cuts.dedup();
                chop(&order, &cuts)
            } else {
                singleton_groups(&order)
            };
            let sweep = if grouped {
                AvailabilitySweep::grouped(&v, &groups)
            } else {
                AvailabilitySweep::singletons(&v, &order)
            };
            let ns = [1usize, 3, 9];
            let batch = sweep.evaluate(&ns);
            prop_assert_eq!(
                &batch.none,
                &availability_curve(&v, Strategy::NoReplication, &groups)
            );
            prop_assert_eq!(
                &batch.subscription,
                &availability_curve(&v, Strategy::Subscription, &groups)
            );
            for (n, curve) in &batch.random {
                prop_assert_eq!(
                    curve,
                    &availability_curve(&v, Strategy::Random { n: *n }, &groups)
                );
            }
        }

        /// The fused two-plan walk must equal two independent sweeps for
        /// any pair of (possibly overlapping, possibly duplicated)
        /// removal orders — singleton × grouped shapes included.
        #[test]
        fn fused_pair_bit_identical_to_separate(
            seed in 0u64..1000,
            order_a in proptest::collection::vec(0u32..24, 0..30),
            order_b in proptest::collection::vec(0u32..24, 0..30),
            mut cuts in proptest::collection::vec(0usize..30, 0..5),
        ) {
            let v = tiny_view(seed);
            cuts.sort_unstable();
            cuts.dedup();
            let plan_a = RemovalPlan::from_order(v.n_instances, &order_a);
            let plan_b = RemovalPlan::from_groups(v.n_instances, &chop(&order_b, &cuts));
            let ns = [1usize, 4];
            let (fa, fb) = evaluate_plans_fused(&v, &plan_a, &plan_b, &ns);
            let sa = AvailabilitySweep::with_plan(&v, plan_a).evaluate(&ns);
            let sb = AvailabilitySweep::with_plan(&v, plan_b).evaluate(&ns);
            prop_assert_eq!(fa, sa);
            prop_assert_eq!(fb, sb);
        }

        #[test]
        fn monte_carlo_shard_invariance(
            seed in 0u64..1000,
            mc_seed in any::<u64>(),
            k in 1usize..20,
            chunk in 1usize..64,
        ) {
            let v = tiny_view(seed);
            let order: Vec<u32> = (0..k as u32).collect();
            let sweep = AvailabilitySweep::singletons(&v, &order);
            let sharded = sweep.monte_carlo_chunked(2, 8, mc_seed, chunk);
            let serial = sweep.monte_carlo_chunked(2, 8, mc_seed, usize::MAX);
            prop_assert_eq!(sharded, serial);
        }

        /// The inverted (resident-arena) Monte-Carlo walk reproduces the
        /// pre-inversion full-population scan bit-for-bit: same per-user
        /// RNG streams, same integral weights, just without visiting the
        /// users that cannot lose anything.
        #[test]
        fn monte_carlo_inversion_equals_full_scan(
            seed in 0u64..500,
            mc_seed in any::<u64>(),
            order in proptest::collection::vec(0u32..24, 1..24),
            n in 1usize..4,
        ) {
            let v = tiny_view(seed);
            let sweep = AvailabilitySweep::singletons(&v, &order);

            // Reference: the former evaluator's shape — scan *every*
            // user, skip the ones whose home survives.
            let plan = RemovalPlan::from_order(v.n_instances, &order);
            let n_steps = plan.n_steps();
            let n_inst = v.n_instances;
            let target = n.min(n_inst);
            let toot_cap = 8u32;
            let mut death = vec![0u64; n_steps + 2];
            let mut stamp = vec![0u64; n_inst];
            let mut epoch = 0u64;
            for u in 0..v.n_users() {
                let toots = v.toots[u];
                if toots == 0 {
                    continue;
                }
                let home_step = plan.steps[v.home[u] as usize] as usize;
                if home_step > n_steps {
                    continue;
                }
                let mut rng = user_stream_rng(mc_seed, u);
                let samples = toots.min(toot_cap as u64);
                let base = toots / samples;
                let rem = toots % samples;
                for j in 0..samples {
                    epoch += 1;
                    let mut dead_step = home_step;
                    let mut picked = 0usize;
                    while picked < target {
                        let cand = rng.gen_range(0..n_inst as u32) as usize;
                        if stamp[cand] != epoch {
                            stamp[cand] = epoch;
                            picked += 1;
                            let s = plan.steps[cand] as usize;
                            if s > dead_step {
                                dead_step = s;
                            }
                        }
                    }
                    if dead_step <= n_steps {
                        death[dead_step] += base + u64::from(j < rem);
                    }
                }
            }
            let total = v.total_toots.max(1) as f64;
            let death_f: Vec<f64> = death.iter().map(|&x| x as f64).collect();
            let reference = fold_availability(&death_f, n_steps, total);

            let inverted = sweep.monte_carlo(n, toot_cap, mc_seed);
            prop_assert_eq!(inverted, reference);
        }
    }
}
