//! A consistent-hash ring: the "global index (such as a Distributed Hash
//! Table)" the paper assumes for discovering replicated toots (§5.2).
//!
//! Instances join the ring with a configurable number of virtual nodes;
//! a toot key maps to the `n` distinct successor instances. The classic
//! consistent-hashing property holds: removing an instance only remaps keys
//! it owned (tested by property).

/// 64-bit SplitMix-based hashing (stable across platforms; no dependency on
/// `std::hash`'s unspecified hasher).
fn hash64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn point_for(instance: u32, vnode: u32) -> u64 {
    hash64(
        (instance as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((vnode as u64).wrapping_mul(0xd6e8_feb8_6659_fd93)),
    )
}

/// A consistent-hash ring over instance ids.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// Sorted `(point, instance)` pairs.
    points: Vec<(u64, u32)>,
    vnodes: u32,
}

impl HashRing {
    /// Build a ring over `instances` with `vnodes` virtual nodes each.
    pub fn new(instances: impl IntoIterator<Item = u32>, vnodes: u32) -> Self {
        assert!(vnodes > 0, "need at least one virtual node");
        let mut points = Vec::new();
        for i in instances {
            for v in 0..vnodes {
                points.push((point_for(i, v), i));
            }
        }
        points.sort_unstable();
        Self { points, vnodes }
    }

    /// Number of distinct instances on the ring.
    pub fn instance_count(&self) -> usize {
        let mut ids: Vec<u32> = self.points.iter().map(|&(_, i)| i).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Remove an instance (all its virtual nodes).
    pub fn remove(&mut self, instance: u32) {
        self.points.retain(|&(_, i)| i != instance);
    }

    /// Add an instance.
    pub fn add(&mut self, instance: u32) {
        for v in 0..self.vnodes {
            self.points.push((point_for(instance, v), instance));
        }
        self.points.sort_unstable();
    }

    /// The `n` distinct instances responsible for `key`, clockwise from the
    /// key's point. Fewer than `n` are returned if the ring is smaller.
    pub fn lookup(&self, key: u64, n: usize) -> Vec<u32> {
        if self.points.is_empty() || n == 0 {
            return Vec::new();
        }
        let h = hash64(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut out: Vec<u32> = Vec::with_capacity(n);
        let len = self.points.len();
        for idx in start..start + len {
            let inst = self.points[idx % len].1;
            if !out.contains(&inst) {
                out.push(inst);
                if out.len() == n {
                    break;
                }
            }
        }
        out
    }

    /// The primary owner of `key`.
    pub fn owner(&self, key: u64) -> Option<u32> {
        self.lookup(key, 1).first().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_returns_distinct_instances() {
        let ring = HashRing::new(0..10, 16);
        for key in 0..100u64 {
            let replicas = ring.lookup(key, 3);
            assert_eq!(replicas.len(), 3);
            let mut d = replicas.clone();
            d.sort_unstable();
            d.dedup();
            assert_eq!(d.len(), 3, "duplicates for key {key}");
        }
    }

    #[test]
    fn small_ring_returns_what_it_has() {
        let ring = HashRing::new(0..2, 4);
        assert_eq!(ring.lookup(42, 5).len(), 2);
        let empty = HashRing::new(std::iter::empty(), 4);
        assert!(empty.lookup(42, 3).is_empty());
        assert!(empty.owner(42).is_none());
    }

    #[test]
    fn deterministic_lookup() {
        let a = HashRing::new(0..20, 8);
        let b = HashRing::new(0..20, 8);
        for key in 0..50u64 {
            assert_eq!(a.lookup(key, 3), b.lookup(key, 3));
        }
    }

    #[test]
    fn balance_is_reasonable() {
        let ring = HashRing::new(0..10, 64);
        let mut counts = [0u32; 10];
        for key in 0..20_000u64 {
            counts[ring.owner(key).unwrap() as usize] += 1;
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        // within 2.5x of each other at 64 vnodes
        assert!(max / min < 2.5, "imbalance {counts:?}");
    }

    #[test]
    fn removal_only_remaps_removed_owners_keys() {
        let mut ring = HashRing::new(0..10, 32);
        let before: Vec<Option<u32>> = (0..5_000u64).map(|k| ring.owner(k)).collect();
        ring.remove(3);
        for (k, owner_before) in before.iter().enumerate() {
            let owner_after = ring.owner(k as u64);
            if owner_before != &Some(3) {
                assert_eq!(
                    owner_after, *owner_before,
                    "key {k} moved although its owner survived"
                );
            } else {
                assert_ne!(owner_after, Some(3));
            }
        }
    }

    #[test]
    fn add_then_remove_is_identity() {
        let mut ring = HashRing::new(0..10, 16);
        let before: Vec<Option<u32>> = (0..1_000u64).map(|k| ring.owner(k)).collect();
        ring.add(99);
        ring.remove(99);
        let after: Vec<Option<u32>> = (0..1_000u64).map(|k| ring.owner(k)).collect();
        assert_eq!(before, after);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Consistent hashing: removing one instance never remaps a key
        /// between two *surviving* instances.
        #[test]
        fn monotone_removal(
            n_instances in 2u32..20,
            victim_seed in any::<u32>(),
            keys in proptest::collection::vec(any::<u64>(), 1..100)
        ) {
            let mut ring = HashRing::new(0..n_instances, 8);
            let victim = victim_seed % n_instances;
            let before: Vec<u32> = keys.iter().map(|&k| ring.owner(k).unwrap()).collect();
            ring.remove(victim);
            for (k, ob) in keys.iter().zip(&before) {
                let oa = ring.owner(*k).unwrap();
                if *ob != victim {
                    prop_assert_eq!(oa, *ob);
                }
            }
        }

        /// lookup(k, n) is a prefix of lookup(k, n+1).
        #[test]
        fn lookup_prefix_stability(key in any::<u64>(), n in 1usize..5) {
            let ring = HashRing::new(0..12, 8);
            let small = ring.lookup(key, n);
            let big = ring.lookup(key, n + 1);
            prop_assert_eq!(&big[..small.len()], &small[..]);
        }
    }
}
