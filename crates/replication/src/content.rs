//! The content view: the minimal projection of a world that replication
//! analysis needs.
//!
//! All of a user's toots share the same holder set under subscription
//! replication (the follower instances), so the evaluators work per *user*
//! weighted by toot count — exact, and ~100× smaller than per-toot state.
//!
//! The holder sets live in one flat CSR arena (offsets + data) instead of a
//! `Vec<Vec<u32>>`: at the million-user tier the per-user `Vec` headers
//! alone would cost 24 MB and every evaluator pass would chase a pointer
//! per user. The CSR is built by counting sort over `world.follows` — two
//! linear passes, no per-user allocation — then each user's slice is
//! sorted and deduplicated in place.

use fediscope_model::world::World;

/// Per-user content/holder data.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentView {
    /// Number of instances.
    pub n_instances: usize,
    /// Home instance of each user.
    pub home: Vec<u32>,
    /// Toot count of each user.
    pub toots: Vec<u64>,
    /// CSR offsets into [`Self::holder_data`]: user `u`'s holder slice is
    /// `holder_data[holder_offsets[u]..holder_offsets[u + 1]]`.
    holder_offsets: Vec<u32>,
    /// CSR arena of holder instances, sorted + deduplicated per user.
    holder_data: Vec<u32>,
    /// CSR offsets into [`Self::home_users_data`]: instance `i`'s resident
    /// users are `home_users_data[home_users_offsets[i]..home_users_offsets[i + 1]]`.
    home_users_offsets: Vec<u32>,
    /// CSR arena of users grouped by home instance (ascending user id per
    /// instance). Lets evaluators visit only the users homed on a removed
    /// instance instead of scanning the whole population.
    home_users_data: Vec<u32>,
    /// Resident arena bounds: instance `i`'s *tooting* residents occupy
    /// rows `res_bounds[i]..res_bounds[i + 1]` of the arrays below.
    ///
    /// The resident arena is a home-major mirror of the holder CSR,
    /// restricted to users with at least one toot (zero-toot users carry
    /// no mass in any evaluator): walking one instance's residents reads
    /// toot counts and holder slices *sequentially*, where the user-major
    /// CSR costs two dependent cache misses per resident.
    pub(crate) res_bounds: Vec<u32>,
    /// Toot count per resident row (home-major order: by instance, then
    /// ascending user id).
    pub(crate) res_toots: Vec<u64>,
    /// User id per resident row — lets evaluators that need per-user
    /// state (the Monte-Carlo placement streams are keyed by user id)
    /// walk the arena without a detour through the home CSR.
    pub(crate) res_users: Vec<u32>,
    /// CSR offsets into [`Self::res_holder_data`] per resident row.
    pub(crate) res_holder_offsets: Vec<u32>,
    /// Holder slices per resident row (same contents as the user-major
    /// arena, relaid in home-major order).
    pub(crate) res_holder_data: Vec<u32>,
    /// Total toots.
    pub total_toots: u64,
}

impl ContentView {
    /// Build from a world.
    pub fn from_world(world: &World) -> Self {
        let n_users = world.users.len();
        let home: Vec<u32> = world.users.iter().map(|u| u.instance.0).collect();
        let toots: Vec<u64> = world.users.iter().map(|u| u.toot_count as u64).collect();
        assert!(
            world.follows.len() < u32::MAX as usize,
            "follow count overflows CSR offsets"
        );

        // Counting sort: follows grouped by followee. a follows b, so a's
        // instance receives (holds) b's toots.
        let mut holder_offsets = vec![0u32; n_users + 1];
        for &(_, b) in &world.follows {
            holder_offsets[b.index() + 1] += 1;
        }
        for u in 0..n_users {
            holder_offsets[u + 1] += holder_offsets[u];
        }
        let mut holder_data = vec![0u32; world.follows.len()];
        let mut cursor: Vec<u32> = holder_offsets[..n_users].to_vec();
        for &(a, b) in &world.follows {
            let c = &mut cursor[b.index()];
            holder_data[*c as usize] = home[a.index()];
            *c += 1;
        }

        // Sort + dedup each slice in place, compacting the arena forward.
        // The write cursor never passes a slice's start, so reads stay
        // ahead of writes.
        let mut write = 0u32;
        for u in 0..n_users {
            let (start, end) = (holder_offsets[u] as usize, holder_offsets[u + 1] as usize);
            holder_data[start..end].sort_unstable();
            holder_offsets[u] = write;
            let mut prev = u32::MAX;
            for r in start..end {
                let v = holder_data[r];
                if v != prev {
                    holder_data[write as usize] = v;
                    write += 1;
                    prev = v;
                }
            }
        }
        holder_offsets[n_users] = write;
        holder_data.truncate(write as usize);
        holder_data.shrink_to_fit();

        // Second counting sort: users grouped by home instance.
        let n_instances = world.instances.len();
        assert!(n_users < u32::MAX as usize, "user count overflows CSR");
        let mut home_users_offsets = vec![0u32; n_instances + 1];
        for &h in &home {
            home_users_offsets[h as usize + 1] += 1;
        }
        for i in 0..n_instances {
            home_users_offsets[i + 1] += home_users_offsets[i];
        }
        let mut home_users_data = vec![0u32; n_users];
        let mut cursor: Vec<u32> = home_users_offsets[..n_instances].to_vec();
        for (u, &h) in home.iter().enumerate() {
            let c = &mut cursor[h as usize];
            home_users_data[*c as usize] = u as u32;
            *c += 1;
        }

        // Resident arena: tooting users' toots + holder slices in
        // home-major order (one sequential stream per instance segment).
        let tooting = toots.iter().filter(|&&t| t > 0).count();
        let mut res_bounds = Vec::with_capacity(n_instances + 1);
        let mut res_toots = Vec::with_capacity(tooting);
        let mut res_users = Vec::with_capacity(tooting);
        let mut res_holder_offsets = Vec::with_capacity(tooting + 1);
        let mut res_holder_data = Vec::new();
        res_bounds.push(0u32);
        res_holder_offsets.push(0u32);
        for i in 0..n_instances {
            let (ulo, uhi) = (
                home_users_offsets[i] as usize,
                home_users_offsets[i + 1] as usize,
            );
            for &u in &home_users_data[ulo..uhi] {
                let u = u as usize;
                if toots[u] == 0 {
                    continue;
                }
                res_toots.push(toots[u]);
                res_users.push(u as u32);
                res_holder_data.extend_from_slice(
                    &holder_data[holder_offsets[u] as usize..holder_offsets[u + 1] as usize],
                );
                res_holder_offsets.push(res_holder_data.len() as u32);
            }
            res_bounds.push(res_toots.len() as u32);
        }

        let total_toots = toots.iter().sum();
        Self {
            n_instances,
            home,
            toots,
            holder_offsets,
            holder_data,
            home_users_offsets,
            home_users_data,
            res_bounds,
            res_toots,
            res_users,
            res_holder_offsets,
            res_holder_data,
            total_toots,
        }
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.home.len()
    }

    /// Instances hosting at least one follower of user `u` (sorted,
    /// deduplicated; may include the home instance).
    #[inline]
    pub fn follower_instances(&self, u: usize) -> &[u32] {
        &self.holder_data[self.holder_offsets[u] as usize..self.holder_offsets[u + 1] as usize]
    }

    /// Total holder entries across all users (the CSR arena length).
    pub fn holder_entries(&self) -> usize {
        self.holder_data.len()
    }

    /// Users whose home is instance `i` (ascending user ids).
    #[inline]
    pub fn users_homed_on(&self, i: usize) -> &[u32] {
        &self.home_users_data
            [self.home_users_offsets[i] as usize..self.home_users_offsets[i + 1] as usize]
    }

    /// Fraction of toots whose author has **no** followers on any other
    /// instance than their own — such toots gain nothing from subscription
    /// replication (paper: "9.7% of toots have no replication due to a lack
    /// of followers").
    pub fn unreplicated_toot_fraction(&self) -> f64 {
        if self.total_toots == 0 {
            return 0.0;
        }
        let mut unreplicated = 0u64;
        for u in 0..self.n_users() {
            let has_remote_holder = self
                .follower_instances(u)
                .iter()
                .any(|&i| i != self.home[u]);
            if !has_remote_holder {
                unreplicated += self.toots[u];
            }
        }
        unreplicated as f64 / self.total_toots as f64
    }

    /// Fraction of toots with more than `k` replicas (paper: "23% of toots
    /// have more than 10 replicas because they are authored by popular
    /// users").
    pub fn over_replicated_fraction(&self, k: usize) -> f64 {
        if self.total_toots == 0 {
            return 0.0;
        }
        let mut over = 0u64;
        for u in 0..self.n_users() {
            let replicas = self
                .follower_instances(u)
                .iter()
                .filter(|&&i| i != self.home[u])
                .count();
            if replicas > k {
                over += self.toots[u];
            }
        }
        over as f64 / self.total_toots as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_worldgen::{Generator, WorldConfig};

    /// The pre-CSR reference build: per-user `Vec`s, sorted + deduped.
    fn naive_holder_lists(w: &World) -> Vec<Vec<u32>> {
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); w.users.len()];
        for &(a, b) in &w.follows {
            lists[b.index()].push(w.users[a.index()].instance.0);
        }
        for list in &mut lists {
            list.sort_unstable();
            list.dedup();
        }
        lists
    }

    #[test]
    fn from_world_consistency() {
        let w = Generator::generate_world(WorldConfig::tiny(31));
        let v = ContentView::from_world(&w);
        assert_eq!(v.n_users(), w.users.len());
        assert_eq!(v.total_toots, w.total_toots());
        // spot-check a follower-instance set
        let (a, b) = w.follows[0];
        let fa = w.users[a.index()].instance.0;
        assert!(v.follower_instances(b.index()).contains(&fa));
        // sorted + dedup
        for u in 0..v.n_users() {
            let list = v.follower_instances(u);
            assert!(list.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn csr_matches_naive_lists() {
        for seed in [7u64, 31, 98] {
            let w = Generator::generate_world(WorldConfig::tiny(seed));
            let v = ContentView::from_world(&w);
            let reference = naive_holder_lists(&w);
            for (u, list) in reference.iter().enumerate() {
                assert_eq!(v.follower_instances(u), &list[..], "user {u}");
            }
            assert_eq!(
                v.holder_entries(),
                reference.iter().map(Vec::len).sum::<usize>()
            );
        }
    }

    #[test]
    fn home_csr_partitions_users() {
        let w = Generator::generate_world(WorldConfig::tiny(34));
        let v = ContentView::from_world(&w);
        let mut seen = vec![false; v.n_users()];
        for i in 0..v.n_instances {
            let users = v.users_homed_on(i);
            assert!(users.windows(2).all(|w| w[0] < w[1]), "sorted per instance");
            for &u in users {
                assert_eq!(v.home[u as usize], i as u32);
                assert!(!seen[u as usize], "user listed twice");
                seen[u as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every user listed exactly once");
    }

    #[test]
    fn resident_arena_mirrors_user_major_csr() {
        let w = Generator::generate_world(WorldConfig::tiny(35));
        let v = ContentView::from_world(&w);
        let mut rows = 0usize;
        for i in 0..v.n_instances {
            let (lo, hi) = (v.res_bounds[i] as usize, v.res_bounds[i + 1] as usize);
            let tooting: Vec<u32> = v
                .users_homed_on(i)
                .iter()
                .copied()
                .filter(|&u| v.toots[u as usize] > 0)
                .collect();
            assert_eq!(hi - lo, tooting.len(), "instance {i} row count");
            for (row, &u) in (lo..hi).zip(&tooting) {
                assert_eq!(v.res_users[row], u);
                assert_eq!(v.res_toots[row], v.toots[u as usize]);
                let slice = &v.res_holder_data[v.res_holder_offsets[row] as usize
                    ..v.res_holder_offsets[row + 1] as usize];
                assert_eq!(slice, v.follower_instances(u as usize));
            }
            rows = hi;
        }
        assert_eq!(rows, v.res_toots.len());
        // total resident mass equals total toots (zero-toot users add none)
        assert_eq!(v.res_toots.iter().sum::<u64>(), v.total_toots);
    }

    #[test]
    fn unreplicated_fraction_bounds() {
        let w = Generator::generate_world(WorldConfig::tiny(32));
        let v = ContentView::from_world(&w);
        let f = v.unreplicated_toot_fraction();
        assert!((0.0..=1.0).contains(&f));
        // monotone: over-replication fraction shrinks with k
        assert!(v.over_replicated_fraction(1) >= v.over_replicated_fraction(10));
    }

    #[test]
    fn hand_built_view() {
        use fediscope_model::ids::UserId;
        // 3 instances; user0@0 followed by user1@1; user2@2 friendless
        let mut w = fediscope_worldgen::Generator::generate_world({
            let mut c = WorldConfig::tiny(33);
            c.n_instances = 3;
            c.n_users = 3;
            c
        });
        w.users[0].instance = fediscope_model::ids::InstanceId(0);
        w.users[0].toot_count = 10;
        w.users[1].instance = fediscope_model::ids::InstanceId(1);
        w.users[1].toot_count = 0;
        w.users[2].instance = fediscope_model::ids::InstanceId(2);
        w.users[2].toot_count = 30;
        w.follows = vec![(UserId(1), UserId(0))];
        let v = ContentView::from_world(&w);
        assert_eq!(v.follower_instances(0), &[1]);
        assert!(v.follower_instances(2).is_empty());
        // 30 of 40 toots unreplicated
        assert!((v.unreplicated_toot_fraction() - 0.75).abs() < 1e-9);
    }
}
