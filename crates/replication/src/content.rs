//! The content view: the minimal projection of a world that replication
//! analysis needs.
//!
//! All of a user's toots share the same holder set under subscription
//! replication (the follower instances), so the evaluators work per *user*
//! weighted by toot count — exact, and ~100× smaller than per-toot state.

use fediscope_model::world::World;

/// Per-user content/holder data.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentView {
    /// Number of instances.
    pub n_instances: usize,
    /// Home instance of each user.
    pub home: Vec<u32>,
    /// Toot count of each user.
    pub toots: Vec<u64>,
    /// For each user: sorted, deduplicated instances hosting at least one
    /// follower (may include the home instance; excludes nothing).
    pub follower_instances: Vec<Vec<u32>>,
    /// Total toots.
    pub total_toots: u64,
}

impl ContentView {
    /// Build from a world.
    pub fn from_world(world: &World) -> Self {
        let n_users = world.users.len();
        let home: Vec<u32> = world.users.iter().map(|u| u.instance.0).collect();
        let toots: Vec<u64> = world.users.iter().map(|u| u.toot_count as u64).collect();
        let mut follower_instances: Vec<Vec<u32>> = vec![Vec::new(); n_users];
        for &(a, b) in &world.follows {
            // a follows b: a's instance receives b's toots
            follower_instances[b.index()].push(home[a.index()]);
        }
        for list in &mut follower_instances {
            list.sort_unstable();
            list.dedup();
        }
        let total_toots = toots.iter().sum();
        Self {
            n_instances: world.instances.len(),
            home,
            toots,
            follower_instances,
            total_toots,
        }
    }

    /// Number of users.
    pub fn n_users(&self) -> usize {
        self.home.len()
    }

    /// Fraction of toots whose author has **no** followers on any other
    /// instance than their own — such toots gain nothing from subscription
    /// replication (paper: "9.7% of toots have no replication due to a lack
    /// of followers").
    pub fn unreplicated_toot_fraction(&self) -> f64 {
        if self.total_toots == 0 {
            return 0.0;
        }
        let mut unreplicated = 0u64;
        for u in 0..self.n_users() {
            let has_remote_holder = self.follower_instances[u]
                .iter()
                .any(|&i| i != self.home[u]);
            if !has_remote_holder {
                unreplicated += self.toots[u];
            }
        }
        unreplicated as f64 / self.total_toots as f64
    }

    /// Fraction of toots with more than `k` replicas (paper: "23% of toots
    /// have more than 10 replicas because they are authored by popular
    /// users").
    pub fn over_replicated_fraction(&self, k: usize) -> f64 {
        if self.total_toots == 0 {
            return 0.0;
        }
        let mut over = 0u64;
        for u in 0..self.n_users() {
            let replicas = self.follower_instances[u]
                .iter()
                .filter(|&&i| i != self.home[u])
                .count();
            if replicas > k {
                over += self.toots[u];
            }
        }
        over as f64 / self.total_toots as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fediscope_worldgen::{Generator, WorldConfig};

    #[test]
    fn from_world_consistency() {
        let w = Generator::generate_world(WorldConfig::tiny(31));
        let v = ContentView::from_world(&w);
        assert_eq!(v.n_users(), w.users.len());
        assert_eq!(v.total_toots, w.total_toots());
        // spot-check a follower-instance set
        let (a, b) = w.follows[0];
        let fa = w.users[a.index()].instance.0;
        assert!(v.follower_instances[b.index()].contains(&fa));
        // sorted + dedup
        for list in &v.follower_instances {
            assert!(list.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn unreplicated_fraction_bounds() {
        let w = Generator::generate_world(WorldConfig::tiny(32));
        let v = ContentView::from_world(&w);
        let f = v.unreplicated_toot_fraction();
        assert!((0.0..=1.0).contains(&f));
        // monotone: over-replication fraction shrinks with k
        assert!(v.over_replicated_fraction(1) >= v.over_replicated_fraction(10));
    }

    #[test]
    fn hand_built_view() {
        use fediscope_model::ids::UserId;
        // 3 instances; user0@0 followed by user1@1; user2@2 friendless
        let mut w = fediscope_worldgen::Generator::generate_world({
            let mut c = WorldConfig::tiny(33);
            c.n_instances = 3;
            c.n_users = 3;
            c
        });
        w.users[0].instance = fediscope_model::ids::InstanceId(0);
        w.users[0].toot_count = 10;
        w.users[1].instance = fediscope_model::ids::InstanceId(1);
        w.users[1].toot_count = 0;
        w.users[2].instance = fediscope_model::ids::InstanceId(2);
        w.users[2].toot_count = 30;
        w.follows = vec![(UserId(1), UserId(0))];
        let v = ContentView::from_world(&w);
        assert_eq!(v.follower_instances[0], vec![1]);
        assert!(v.follower_instances[2].is_empty());
        // 30 of 40 toots unreplicated
        assert!((v.unreplicated_toot_fraction() - 0.75).abs() < 1e-9);
    }
}
