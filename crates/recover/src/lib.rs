//! Checkpoint/restore for the long-running engines.
//!
//! Every stateful long-runner in this workspace (the federation simulator,
//! the fault-injected crawl loop, the replication scenario sweep) is
//! deterministic: same seed ⇒ bit-identical output. That makes crash
//! recovery *provable* — a run killed at any virtual tick and resumed from
//! its last good snapshot must produce output bit-identical to the
//! uninterrupted run. This crate supplies the shared machinery:
//!
//! - [`format`]: a compact binary encoding of the serde [`Value`] tree,
//!   wrapped in a versioned frame (magic, format + state versions, engine
//!   kind, virtual tick, payload length, FNV-1a checksum). Torn writes —
//!   truncation or bit corruption — are detected by the length/checksum
//!   pair, never by a panic.
//! - [`store`]: checkpoint stores. [`store::DirStore`] keeps frames as
//!   files written temp-then-rename (a crash mid-write never corrupts an
//!   existing snapshot); [`store::MemStore`] is an in-memory double for
//!   fast torn-corpus proptests. [`store::recover_latest`] walks snapshots
//!   newest-first, skipping torn frames, and reports how many it skipped —
//!   when *every* snapshot is torn the caller gets an honest empty
//!   [`store::Recovery`], not garbage.
//! - [`crash`]: [`crash::CrashPlan`] — a deterministic crash injector.
//!   The kill tick is drawn from `mix(seed, counter)` (same SplitMix64
//!   finalizer idiom as `simnet`'s fault layer), and the plan can model a
//!   torn final checkpoint (the in-flight frame is truncated mid-write).
//! - [`drive`]: [`drive::Steppable`] + [`Snapshot`] traits and
//!   [`drive::run_checkpointed`], the generic loop that steps an engine on
//!   its virtual clock, checkpoints every K ticks, and honors a
//!   [`crash::CrashPlan`].
//!
//! The headline guarantee — crash-then-resume ≡ uninterrupted, bit for bit
//! — is proptested per engine (`crates/simnet/tests/recover.rs`,
//! `crates/crawler/tests/crawl_resume.rs`, `crates/replication` unit
//! tests) and CI-gated via `bench_recover`.

pub mod crash;
pub mod drive;
pub mod format;
pub mod store;

pub use crash::CrashPlan;
pub use drive::{run_checkpointed, RunOutcome, Steppable};
pub use format::{decode_frame, encode_frame, FrameError, FrameMeta, FORMAT_VERSION};
pub use store::{recover_latest, write_atomic, DirStore, MemStore, Recovery, SnapshotStore};

use serde::Value;

/// An engine whose state can be captured as a versioned snapshot.
///
/// `snapshot_state` must capture *everything* the engine's transition
/// function reads — queue contents, RNG counters, digest accumulators —
/// so that an engine rebuilt from the snapshot on a fresh executor steps
/// identically to one that never stopped.
pub trait Snapshot {
    /// Engine family tag embedded in the frame (e.g. `"fedsim"`).
    /// Recovery refuses frames of a different kind.
    const KIND: &'static str;

    /// Version of the state schema. Bump on any change to the snapshot
    /// shape; recovery refuses frames with a different version rather
    /// than misinterpreting them.
    const STATE_VERSION: u32;

    /// Current virtual time (ticks stepped so far). Stored in the frame
    /// header so stores can order snapshots without decoding payloads.
    fn virtual_tick(&self) -> u64;

    /// Capture the full resumable state as a serde value tree.
    fn snapshot_state(&self) -> Value;
}

/// Encode an engine's current state as a framed snapshot, ready for a
/// [`SnapshotStore`].
pub fn snapshot_frame<E: Snapshot>(engine: &E) -> Vec<u8> {
    format::encode_frame(
        E::KIND,
        E::STATE_VERSION,
        engine.virtual_tick(),
        &engine.snapshot_state(),
    )
}
