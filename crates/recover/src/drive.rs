//! The generic checkpointed run loop.
//!
//! Engines expose stepping ([`Steppable`]) and state capture
//! ([`Snapshot`](crate::Snapshot)); [`run_checkpointed`] drives them on
//! their own virtual clock, writing a framed snapshot every `interval`
//! ticks, and dying on cue when given a [`CrashPlan`]. Checkpointing is
//! pure observation — it never touches engine state, so the computed
//! stream is unchanged whether checkpoints are on, off, or frequent.

use crate::crash::CrashPlan;
use crate::store::SnapshotStore;
use crate::{snapshot_frame, Snapshot};
use serde::{Deserialize, Serialize};
use std::io;

/// An engine advanced one virtual tick at a time.
pub trait Steppable {
    /// Virtual ticks completed so far.
    fn tick(&self) -> u64;
    /// True when the run has nothing left to do.
    fn is_done(&self) -> bool;
    /// Execute one tick. Must be deterministic given current state.
    fn step(&mut self);
}

/// How a checkpointed run ended.
///
/// Serde-derived (an externally tagged struct variant) so outcomes land
/// in bench records and transcripts as data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// Ran to completion.
    Completed,
    /// The crash plan fired before the step at `at_tick`; when
    /// `torn_final` is set, the snapshot due at that tick was written
    /// as a torn prefix.
    Crashed {
        /// Tick whose step never executed.
        at_tick: u64,
        /// Whether the in-flight checkpoint tore.
        torn_final: bool,
    },
}

/// Step `engine` to completion, checkpointing every `interval` ticks
/// (tick 0 — the initial state — is *not* checkpointed; resumability
/// from nothing is just a fresh start). A fired [`CrashPlan`] stops the
/// loop dead, optionally leaving a torn half-written frame behind, and
/// returns [`RunOutcome::Crashed`].
pub fn run_checkpointed<E, S>(
    engine: &mut E,
    store: &mut S,
    interval: u64,
    crash: Option<CrashPlan>,
) -> io::Result<RunOutcome>
where
    E: Steppable + Snapshot,
    S: SnapshotStore,
{
    let interval = interval.max(1);
    while !engine.is_done() {
        let tick = engine.tick();
        if let Some(plan) = crash {
            if plan.fires_at(tick) {
                if plan.torn_final {
                    // the checkpoint that was mid-write when the process
                    // died: only a prefix reached the disk
                    let frame = snapshot_frame(engine);
                    let keep = frame.len() / 2;
                    store.put(tick, &frame[..keep])?;
                }
                return Ok(RunOutcome::Crashed {
                    at_tick: tick,
                    torn_final: plan.torn_final,
                });
            }
        }
        engine.step();
        if engine.tick().is_multiple_of(interval) {
            store.put(engine.tick(), &snapshot_frame(engine))?;
        }
    }
    Ok(RunOutcome::Completed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{recover_latest, MemStore};
    use serde::Value;

    /// Toy engine: a counter plus an FNV-style accumulator over its own
    /// tick stream — enough to catch a resume that replays or skips.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Counter {
        tick: u64,
        limit: u64,
        digest: u64,
    }

    impl Counter {
        fn new(limit: u64) -> Self {
            Counter { tick: 0, limit, digest: 0xCBF2_9CE4_8422_2325 }
        }

        fn resume_from(state: &Value, limit: u64) -> Self {
            Counter {
                tick: state["tick"].as_u64().unwrap(),
                limit,
                digest: state["digest"].as_u64().unwrap(),
            }
        }
    }

    impl Steppable for Counter {
        fn tick(&self) -> u64 {
            self.tick
        }
        fn is_done(&self) -> bool {
            self.tick >= self.limit
        }
        fn step(&mut self) {
            self.digest ^= self.tick.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            self.digest = self.digest.wrapping_mul(0x0000_0100_0000_01B3);
            self.tick += 1;
        }
    }

    impl Snapshot for Counter {
        const KIND: &'static str = "counter";
        const STATE_VERSION: u32 = 1;
        fn virtual_tick(&self) -> u64 {
            self.tick
        }
        fn snapshot_state(&self) -> Value {
            let mut m = serde::Map::new();
            m.insert("tick".into(), Value::from(self.tick));
            m.insert("digest".into(), Value::from(self.digest));
            Value::Object(m)
        }
    }

    fn uninterrupted(limit: u64) -> Counter {
        let mut c = Counter::new(limit);
        while !c.is_done() {
            c.step();
        }
        c
    }

    #[test]
    fn checkpointing_does_not_change_the_stream() {
        let mut c = Counter::new(97);
        let mut store = MemStore::new();
        let out = run_checkpointed(&mut c, &mut store, 10, None).unwrap();
        assert_eq!(out, RunOutcome::Completed);
        assert_eq!(c, uninterrupted(97));
        assert_eq!(store.len(), 9); // ticks 10..=90
    }

    #[test]
    fn crash_then_resume_is_bit_identical() {
        // (30, 97): crash before the first checkpoint exists — resume
        // degrades to an honest restart from scratch
        for (crash_tick, interval) in [(1u64, 1u64), (5, 3), (50, 7), (96, 10), (30, 97)] {
            let mut c = Counter::new(97);
            let mut store = MemStore::new();
            let out =
                run_checkpointed(&mut c, &mut store, interval, Some(CrashPlan::at(crash_tick)))
                    .unwrap();
            assert!(matches!(out, RunOutcome::Crashed { .. }), "plan {crash_tick}");

            let rec = recover_latest(&store, "counter", 1);
            let mut resumed = match &rec.good {
                Some((_, state)) => Counter::resume_from(state, 97),
                None => Counter::new(97), // crash before the first checkpoint
            };
            let out = run_checkpointed(&mut resumed, &mut store, interval, None).unwrap();
            assert_eq!(out, RunOutcome::Completed);
            assert_eq!(resumed, uninterrupted(97), "crash {crash_tick} interval {interval}");
        }
    }

    #[test]
    fn torn_final_checkpoint_falls_back_to_previous_good() {
        let mut c = Counter::new(50);
        let mut store = MemStore::new();
        let plan = CrashPlan { crash_tick: 30, torn_final: true };
        run_checkpointed(&mut c, &mut store, 10, Some(plan)).unwrap();

        let rec = recover_latest(&store, "counter", 1);
        // tick-30 frame is torn; recovery lands on tick 20
        assert_eq!(rec.torn_skipped, 1);
        let (meta, state) = rec.good.unwrap();
        assert_eq!(meta.tick, 20);
        let mut resumed = Counter::resume_from(&state, 50);
        run_checkpointed(&mut resumed, &mut store, 10, None).unwrap();
        assert_eq!(resumed, uninterrupted(50));
    }

    #[test]
    fn run_outcome_round_trips_struct_variant() {
        // satellite: the derive's externally tagged struct variants
        let out = RunOutcome::Crashed { at_tick: 42, torn_final: true };
        let v = out.to_json_value();
        assert_eq!(RunOutcome::from_json_value(&v).unwrap(), out);
        let v = RunOutcome::Completed.to_json_value();
        assert_eq!(RunOutcome::from_json_value(&v).unwrap(), RunOutcome::Completed);
        // and through the wire format
        let s = serde_json::to_string(&out).unwrap();
        assert_eq!(serde_json::from_str::<RunOutcome>(&s).unwrap(), out);
    }
}
