//! Compact binary snapshot format: a tagged encoding of the serde
//! [`Value`] tree inside a versioned, checksummed frame.
//!
//! ## Frame layout (all integers little-endian)
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"FSNP"
//! 4       2     format version (FORMAT_VERSION)
//! 6       1     kind length K
//! 7       K     kind bytes (utf-8 engine tag, e.g. "fedsim")
//! 7+K     4     state version (engine schema version)
//! 11+K    8     virtual tick
//! 19+K    8     payload length P
//! 27+K    P     payload (encoded Value, see below)
//! 27+K+P  8     FNV-1a 64 checksum over bytes [0, 27+K+P)
//! ```
//!
//! A torn write — the process died mid-`write` — shows up as a frame
//! shorter than its declared payload, or as a checksum mismatch after a
//! bit flip. Both decode to [`FrameError::Torn`]; neither can panic.
//!
//! ## Value encoding
//!
//! One tag byte then a payload; lengths and non-negative integers are
//! LEB128 varints:
//!
//! ```text
//! 0x00 null          0x01 false         0x02 true
//! 0x03 uint  varint  0x04 negint varint(-(n+1))  0x05 f64 (8 bytes, LE bits)
//! 0x06 string: varint len + utf-8
//! 0x07 array:  varint count + elements
//! 0x08 object: varint count + (string key, value) pairs
//! 0x09 bytes:  varint len + raw bytes (packed record columns)
//! ```
//!
//! Key order is preserved, so encode(decode(bytes)) == bytes and the
//! format inherits the repo's bit-identity discipline.

use serde::{Map, Number, Value};

/// Version of the frame + value encoding itself (not the engine schema).
pub const FORMAT_VERSION: u16 = 1;

/// Frame magic: "Fediscope SNaPshot".
pub const MAGIC: [u8; 4] = *b"FSNP";

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_UINT: u8 = 0x03;
const TAG_NEGINT: u8 = 0x04;
const TAG_F64: u8 = 0x05;
const TAG_STR: u8 = 0x06;
const TAG_ARR: u8 = 0x07;
const TAG_OBJ: u8 = 0x08;
const TAG_BYTES: u8 = 0x09;

/// Frame header fields, decoded without touching the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameMeta {
    /// Engine family tag (e.g. `"fedsim"`).
    pub kind: String,
    /// Engine state-schema version.
    pub state_version: u32,
    /// Virtual tick at capture time.
    pub tick: u64,
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The frame is truncated or its checksum does not match: a torn
    /// write. Recoverable by falling back to an earlier snapshot.
    Torn(&'static str),
    /// The bytes are not a snapshot at all (bad magic), or were written
    /// by an incompatible format/schema version.
    Incompatible(String),
    /// Framing is intact but the payload is not a well-formed value
    /// tree. Treated like `Torn` by recovery (skip, fall back).
    Malformed(&'static str),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Torn(what) => write!(f, "torn snapshot: {what}"),
            FrameError::Incompatible(what) => write!(f, "incompatible snapshot: {what}"),
            FrameError::Malformed(what) => write!(f, "malformed snapshot payload: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// FNV-1a 64-bit — same constants as `fedsim`'s event digest.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn put_varint(mut n: u64, out: &mut Vec<u8>) {
    loop {
        let byte = (n & 0x7F) as u8;
        n >>= 7;
        if n == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn get_varint(buf: &[u8], pos: &mut usize) -> Result<u64, FrameError> {
    let mut n: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = buf
            .get(*pos)
            .ok_or(FrameError::Malformed("varint past end"))?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(FrameError::Malformed("varint overflow"));
        }
        n |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(n);
        }
        shift += 7;
    }
}

/// Append the compact encoding of `v` to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Number(n) => match *n {
            Number::U(u) => {
                out.push(TAG_UINT);
                put_varint(u, out);
            }
            Number::I(i) if i >= 0 => {
                out.push(TAG_UINT);
                put_varint(i as u64, out);
            }
            Number::I(i) => {
                out.push(TAG_NEGINT);
                // -1 → 0, -2 → 1, … i64::MIN → u64::MAX>>1: always exact
                put_varint(!(i as u64), out);
            }
            Number::F(f) => {
                out.push(TAG_F64);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
        },
        Value::String(s) => {
            out.push(TAG_STR);
            put_varint(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Array(items) => {
            out.push(TAG_ARR);
            put_varint(items.len() as u64, out);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Object(map) => {
            out.push(TAG_OBJ);
            put_varint(map.len() as u64, out);
            for (k, val) in map.iter() {
                put_varint(k.len() as u64, out);
                out.extend_from_slice(k.as_bytes());
                encode_value(val, out);
            }
        }
        Value::Bytes(b) => {
            out.push(TAG_BYTES);
            put_varint(b.len() as u64, out);
            out.extend_from_slice(b);
        }
    }
}

fn get_bytes<'a>(buf: &'a [u8], pos: &mut usize, len: usize) -> Result<&'a [u8], FrameError> {
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= buf.len())
        .ok_or(FrameError::Malformed("length past end"))?;
    let slice = &buf[*pos..end];
    *pos = end;
    Ok(slice)
}

fn get_str(buf: &[u8], pos: &mut usize) -> Result<String, FrameError> {
    let len = get_varint(buf, pos)? as usize;
    let bytes = get_bytes(buf, pos, len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| FrameError::Malformed("invalid utf-8"))
}

/// Decode one value starting at `*pos`, advancing it.
pub fn decode_value(buf: &[u8], pos: &mut usize) -> Result<Value, FrameError> {
    let &tag = buf.get(*pos).ok_or(FrameError::Malformed("tag past end"))?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_UINT => Ok(Value::Number(Number::U(get_varint(buf, pos)?))),
        TAG_NEGINT => {
            let raw = get_varint(buf, pos)?;
            if raw > i64::MAX as u64 {
                return Err(FrameError::Malformed("negint out of range"));
            }
            Ok(Value::Number(Number::I(!(raw) as i64)))
        }
        TAG_F64 => {
            let bytes = get_bytes(buf, pos, 8)?;
            let bits = u64::from_le_bytes(bytes.try_into().unwrap());
            Ok(Value::Number(Number::F(f64::from_bits(bits))))
        }
        TAG_STR => Ok(Value::String(get_str(buf, pos)?)),
        TAG_ARR => {
            let count = get_varint(buf, pos)? as usize;
            // cap pre-allocation: a corrupt count must not OOM
            let mut items = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                items.push(decode_value(buf, pos)?);
            }
            Ok(Value::Array(items))
        }
        TAG_BYTES => {
            let len = get_varint(buf, pos)? as usize;
            Ok(Value::Bytes(get_bytes(buf, pos, len)?.to_vec()))
        }
        TAG_OBJ => {
            let count = get_varint(buf, pos)? as usize;
            let mut map = Map::new();
            for _ in 0..count {
                let key = get_str(buf, pos)?;
                let val = decode_value(buf, pos)?;
                map.insert(key, val);
            }
            Ok(Value::Object(map))
        }
        _ => Err(FrameError::Malformed("unknown tag")),
    }
}

/// Build a complete framed snapshot: header + payload + checksum.
///
/// The payload streams straight into the frame buffer — the length field
/// is patched in afterwards — so a large snapshot costs one buffer, not
/// an encode-then-copy.
pub fn encode_frame(kind: &str, state_version: u32, tick: u64, state: &Value) -> Vec<u8> {
    assert!(kind.len() <= u8::MAX as usize, "kind tag too long");
    let mut out = Vec::with_capacity(64 * 1024);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(kind.len() as u8);
    out.extend_from_slice(kind.as_bytes());
    out.extend_from_slice(&state_version.to_le_bytes());
    out.extend_from_slice(&tick.to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes()); // payload length, patched below
    let payload_start = out.len();
    encode_value(state, &mut out);
    let payload_len = (out.len() - payload_start) as u64;
    out[payload_start - 8..payload_start].copy_from_slice(&payload_len.to_le_bytes());
    let sum = fnv1a(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Decode a framed snapshot. Truncation and bit corruption come back as
/// [`FrameError::Torn`]; wrong magic or versions as
/// [`FrameError::Incompatible`].
pub fn decode_frame(bytes: &[u8]) -> Result<(FrameMeta, Value), FrameError> {
    // fixed prefix: magic + version + kind length
    if bytes.len() < 7 {
        return Err(FrameError::Torn("shorter than fixed header"));
    }
    if bytes[0..4] != MAGIC {
        return Err(FrameError::Incompatible("bad magic".into()));
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(FrameError::Incompatible(format!(
            "format version {version}, expected {FORMAT_VERSION}"
        )));
    }
    let kind_len = bytes[6] as usize;
    let header_len = 7 + kind_len + 4 + 8 + 8;
    if bytes.len() < header_len {
        return Err(FrameError::Torn("shorter than header"));
    }
    let kind = std::str::from_utf8(&bytes[7..7 + kind_len])
        .map_err(|_| FrameError::Malformed("kind not utf-8"))?
        .to_string();
    let mut at = 7 + kind_len;
    let state_version = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
    at += 4;
    let tick = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
    at += 8;
    let payload_len = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()) as usize;
    at += 8;

    let total = match at.checked_add(payload_len).and_then(|n| n.checked_add(8)) {
        Some(t) => t,
        None => return Err(FrameError::Torn("payload length overflow")),
    };
    if bytes.len() < total {
        return Err(FrameError::Torn("truncated payload"));
    }
    let body_end = at + payload_len;
    let declared = u64::from_le_bytes(bytes[body_end..body_end + 8].try_into().unwrap());
    if fnv1a(&bytes[..body_end]) != declared {
        return Err(FrameError::Torn("checksum mismatch"));
    }

    let payload = &bytes[at..body_end];
    let mut pos = 0;
    let state = decode_value(payload, &mut pos)?;
    if pos != payload.len() {
        return Err(FrameError::Malformed("trailing bytes in payload"));
    }
    Ok((FrameMeta { kind, state_version, tick }, state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Serialize;

    fn sample_state() -> Value {
        let mut inner = Map::new();
        inner.insert("due".into(), Value::from(42u64));
        inner.insert("neg".into(), Value::Number(Number::I(-7)));
        inner.insert("f".into(), Value::Number(Number::F(0.25)));
        let mut m = Map::new();
        m.insert("tick".into(), Value::from(9u64));
        m.insert("queue".into(), Value::Array(vec![Value::Object(inner), Value::Null]));
        m.insert("name".into(), Value::String("mastodon.social".into()));
        m.insert("empty".into(), Value::Array(vec![]));
        m.insert("col".into(), Value::Bytes(vec![0x00, 0xFF, 0x7F, 0x80, 0x09]));
        Value::Object(m)
    }

    #[test]
    fn frame_round_trip() {
        let state = sample_state();
        let bytes = encode_frame("fedsim", 3, 1234, &state);
        let (meta, back) = decode_frame(&bytes).unwrap();
        assert_eq!(meta.kind, "fedsim");
        assert_eq!(meta.state_version, 3);
        assert_eq!(meta.tick, 1234);
        assert_eq!(back, state);
    }

    #[test]
    fn encoding_is_canonical() {
        // encode(decode(bytes)) == bytes: no hidden nondeterminism
        let bytes = encode_frame("x", 1, 0, &sample_state());
        let (_, state) = decode_frame(&bytes).unwrap();
        assert_eq!(encode_frame("x", 1, 0, &state), bytes);
    }

    #[test]
    fn every_truncation_is_torn_never_panics() {
        let bytes = encode_frame("fedsim", 1, 77, &sample_state());
        for len in 0..bytes.len() {
            match decode_frame(&bytes[..len]) {
                Err(_) => {}
                Ok(_) => panic!("truncated to {len} bytes decoded successfully"),
            }
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = encode_frame("fedsim", 1, 77, &sample_state());
        let (_, original) = decode_frame(&bytes).unwrap();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[i] ^= 1 << bit;
                // either an error, or (checksum-trailer flips only) a
                // mismatch against the payload — never a silently wrong
                // successful decode
                if let Ok((_, v)) = decode_frame(&corrupt) {
                    panic!("bit flip at byte {i} bit {bit} decoded: {:?} vs {:?}", v, original);
                }
            }
        }
    }

    #[test]
    fn wrong_magic_and_version_are_incompatible() {
        let mut bytes = encode_frame("fedsim", 1, 0, &Value::Null);
        bytes[0] = b'X';
        assert!(matches!(decode_frame(&bytes), Err(FrameError::Incompatible(_))));

        let mut bytes = encode_frame("fedsim", 1, 0, &Value::Null);
        bytes[4] = 0xFF;
        // version flip also breaks the checksum; rebuild the frame with a
        // future version properly to hit the version check itself
        let sum = fnv1a(&bytes[..bytes.len() - 8]);
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(decode_frame(&bytes), Err(FrameError::Incompatible(_))));
    }

    #[test]
    fn extreme_integers_round_trip() {
        for v in [
            Value::Number(Number::U(u64::MAX)),
            Value::Number(Number::U(0)),
            Value::Number(Number::I(i64::MIN)),
            Value::Number(Number::I(-1)),
            Value::Number(Number::F(f64::NEG_INFINITY)),
            Value::Number(Number::F(-0.0)),
        ] {
            let bytes = encode_frame("t", 1, 0, &v);
            let (_, back) = decode_frame(&bytes).unwrap();
            // NaN-safe comparison via re-encoding
            let mut a = Vec::new();
            let mut b = Vec::new();
            encode_value(&v, &mut a);
            encode_value(&back, &mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn derived_types_round_trip_through_frames() {
        // the exact path engines use: derive → Value → frame → Value → derive
        let m: std::collections::BTreeMap<u32, Vec<u64>> =
            [(3u32, vec![9u64, 8]), (1, vec![])].into_iter().collect();
        let bytes = encode_frame("m", 1, 0, &m.to_json_value());
        let (_, v) = decode_frame(&bytes).unwrap();
        let back: std::collections::BTreeMap<u32, Vec<u64>> =
            serde::Deserialize::from_json_value(&v).unwrap();
        assert_eq!(back, m);
    }
}
