//! Checkpoint stores and torn-tolerant recovery.
//!
//! A store holds framed snapshots keyed by virtual tick. [`DirStore`]
//! persists them as files (written atomically: temp file + rename, so a
//! crash mid-write leaves at most one torn *new* file and never damages
//! an existing one); [`MemStore`] is an in-memory double with explicit
//! corruption helpers for the torn-checkpoint test corpus.
//!
//! [`recover_latest`] is the read side: walk snapshots newest-first,
//! skip anything torn or incompatible, return the first good state. If
//! everything is torn it reports that honestly — the caller restarts
//! from scratch and says so, rather than fabricating state.

use crate::format::{decode_frame, FrameError, FrameMeta};
use serde::Value;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// A keyed byte store for snapshot frames.
pub trait SnapshotStore {
    /// Persist `bytes` as the snapshot for virtual tick `tick`.
    fn put(&mut self, tick: u64, bytes: &[u8]) -> io::Result<()>;
    /// All stored ticks, ascending.
    fn ticks(&self) -> Vec<u64>;
    /// Snapshot bytes for `tick`.
    fn get(&self, tick: u64) -> Option<Vec<u8>>;
}

/// Write `bytes` to `path` atomically: write a sibling temp file, then
/// rename over the target. On any same-filesystem POSIX rename the
/// destination is only ever the old bytes or the new bytes — a crash
/// mid-write can tear the temp file but never an existing target.
///
/// This is also the bench-bin write path (`BENCH_*.json`): appends are
/// read-modify-write through this helper so a crash never truncates the
/// recorded trajectory.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp = PathBuf::from(dir.unwrap_or_else(|| Path::new(".")));
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(file_name);
    tmp_name.push(".tmp");
    tmp.push(tmp_name);
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// Directory-backed store: one `ckpt-<tick>.fsnp` file per snapshot.
#[derive(Debug, Clone)]
pub struct DirStore {
    dir: PathBuf,
}

impl DirStore {
    /// Open (creating if needed) a checkpoint directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(DirStore { dir })
    }

    /// Path for the snapshot at `tick`.
    pub fn path_for(&self, tick: u64) -> PathBuf {
        self.dir.join(format!("ckpt-{tick:020}.fsnp"))
    }
}

impl SnapshotStore for DirStore {
    fn put(&mut self, tick: u64, bytes: &[u8]) -> io::Result<()> {
        write_atomic(&self.path_for(tick), bytes)
    }

    fn ticks(&self) -> Vec<u64> {
        let mut out = Vec::new();
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return out;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(num) = name
                .strip_prefix("ckpt-")
                .and_then(|rest| rest.strip_suffix(".fsnp"))
            {
                if let Ok(tick) = num.parse::<u64>() {
                    out.push(tick);
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn get(&self, tick: u64) -> Option<Vec<u8>> {
        std::fs::read(self.path_for(tick)).ok()
    }
}

/// In-memory store for tests: supports deliberate truncation and bit
/// flips to build torn-checkpoint corpora without touching disk.
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    frames: BTreeMap<u64, Vec<u8>>,
}

impl MemStore {
    /// Empty store.
    pub fn new() -> Self {
        MemStore::default()
    }

    /// Truncate the snapshot at `tick` to `keep` bytes (a torn write).
    pub fn tear_truncate(&mut self, tick: u64, keep: usize) {
        if let Some(bytes) = self.frames.get_mut(&tick) {
            bytes.truncate(keep);
        }
    }

    /// Flip one bit of the snapshot at `tick` (silent corruption).
    pub fn tear_bitflip(&mut self, tick: u64, byte: usize, bit: u8) {
        if let Some(bytes) = self.frames.get_mut(&tick) {
            let len = bytes.len().max(1);
            if let Some(b) = bytes.get_mut(byte % len) {
                *b ^= 1 << (bit % 8);
            }
        }
    }

    /// Number of stored snapshots.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

impl SnapshotStore for MemStore {
    fn put(&mut self, tick: u64, bytes: &[u8]) -> io::Result<()> {
        self.frames.insert(tick, bytes.to_vec());
        Ok(())
    }

    fn ticks(&self) -> Vec<u64> {
        self.frames.keys().copied().collect()
    }

    fn get(&self, tick: u64) -> Option<Vec<u8>> {
        self.frames.get(&tick).cloned()
    }
}

/// Outcome of a recovery scan.
#[derive(Debug, Clone, PartialEq)]
pub struct Recovery {
    /// Metadata and decoded state of the newest good snapshot, if any.
    pub good: Option<(FrameMeta, Value)>,
    /// How many snapshots were skipped as torn/corrupt, newest-first,
    /// before a good one was found (or the store ran out).
    pub torn_skipped: u32,
    /// Ticks of the skipped snapshots (for the honest partial report).
    pub skipped_ticks: Vec<u64>,
}

impl Recovery {
    /// True when no usable snapshot survived: the caller must restart
    /// from scratch and report the run as recovered-from-nothing.
    pub fn must_restart(&self) -> bool {
        self.good.is_none()
    }
}

/// Scan `store` newest-first for a good snapshot of the given engine
/// kind and schema version. Torn, corrupt, or incompatible frames are
/// skipped (counted, never panicking); the first clean decode wins.
pub fn recover_latest<S: SnapshotStore>(
    store: &S,
    kind: &str,
    state_version: u32,
) -> Recovery {
    let mut torn_skipped = 0;
    let mut skipped_ticks = Vec::new();
    for tick in store.ticks().into_iter().rev() {
        let Some(bytes) = store.get(tick) else {
            torn_skipped += 1;
            skipped_ticks.push(tick);
            continue;
        };
        match decode_frame(&bytes) {
            Ok((meta, state)) if meta.kind == kind && meta.state_version == state_version => {
                return Recovery {
                    good: Some((meta, state)),
                    torn_skipped,
                    skipped_ticks,
                };
            }
            Ok(_) | Err(FrameError::Torn(_))
            | Err(FrameError::Incompatible(_))
            | Err(FrameError::Malformed(_)) => {
                torn_skipped += 1;
                skipped_ticks.push(tick);
            }
        }
    }
    Recovery {
        good: None,
        torn_skipped,
        skipped_ticks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::encode_frame;
    use serde::Value;

    fn frame(tick: u64) -> Vec<u8> {
        encode_frame("t", 1, tick, &Value::from(tick))
    }

    #[test]
    fn recover_picks_newest_good() {
        let mut store = MemStore::new();
        for t in [10, 20, 30] {
            store.put(t, &frame(t)).unwrap();
        }
        let r = recover_latest(&store, "t", 1);
        assert_eq!(r.good.as_ref().unwrap().0.tick, 30);
        assert_eq!(r.torn_skipped, 0);
    }

    #[test]
    fn torn_newest_falls_back() {
        let mut store = MemStore::new();
        for t in [10, 20, 30] {
            store.put(t, &frame(t)).unwrap();
        }
        store.tear_truncate(30, 9);
        let r = recover_latest(&store, "t", 1);
        assert_eq!(r.good.as_ref().unwrap().0.tick, 20);
        assert_eq!(r.torn_skipped, 1);
        assert_eq!(r.skipped_ticks, vec![30]);
    }

    #[test]
    fn all_torn_is_honest_restart() {
        let mut store = MemStore::new();
        for t in [10, 20] {
            store.put(t, &frame(t)).unwrap();
        }
        store.tear_truncate(10, 3);
        store.tear_bitflip(20, 15, 2);
        let r = recover_latest(&store, "t", 1);
        assert!(r.must_restart());
        assert_eq!(r.torn_skipped, 2);
    }

    #[test]
    fn wrong_kind_or_version_is_skipped() {
        let mut store = MemStore::new();
        store.put(5, &encode_frame("other", 1, 5, &Value::Null)).unwrap();
        store.put(7, &encode_frame("t", 99, 7, &Value::Null)).unwrap();
        store.put(3, &frame(3)).unwrap();
        let r = recover_latest(&store, "t", 1);
        assert_eq!(r.good.as_ref().unwrap().0.tick, 3);
        assert_eq!(r.torn_skipped, 2);
    }

    #[test]
    fn dir_store_round_trip_and_atomic_overwrite() {
        let dir = std::env::temp_dir().join(format!("fsnp-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = DirStore::open(&dir).unwrap();
        store.put(12, &frame(12)).unwrap();
        store.put(7, &frame(7)).unwrap();
        assert_eq!(store.ticks(), vec![7, 12]);
        assert_eq!(store.get(12).unwrap(), frame(12));
        // overwrite goes through the same atomic path
        store.put(12, &frame(13)).unwrap();
        assert_eq!(store.get(12).unwrap(), frame(13));
        // no temp litter left behind
        let litter: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(litter.is_empty());
        let r = recover_latest(&store, "t", 1);
        assert_eq!(r.good.unwrap().0.tick, 13);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
