//! Deterministic crash injection.
//!
//! A [`CrashPlan`] models a process death at a virtual tick. The tick is
//! drawn from `mix(seed, counter)` — the same SplitMix64 finalizer the
//! fault layer (`simnet::fault`) and fedsim's jitter use — so crash
//! scenarios replay exactly: same seed ⇒ same kill point, on any host.
//! A plan can additionally model the nastiest real-world failure: the
//! checkpoint that was being written *when* the process died survives
//! only as a torn prefix.

/// SplitMix64 finalizer: the workspace's standard counter→stream mixer.
pub fn mix(seed: u64, counter: u64) -> u64 {
    let mut z = seed
        .wrapping_add(counter.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic kill at a virtual tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Virtual tick at which the process dies: steps `>= crash_tick`
    /// never execute.
    pub crash_tick: u64,
    /// When true, a checkpoint due at the crash tick is written as a
    /// torn prefix (the write was in flight when the process died)
    /// instead of being skipped cleanly.
    pub torn_final: bool,
}

impl CrashPlan {
    /// Kill at exactly `tick`, clean (no torn checkpoint).
    pub fn at(tick: u64) -> Self {
        CrashPlan { crash_tick: tick, torn_final: false }
    }

    /// Kill at a tick drawn deterministically from `mix(seed, counter)`
    /// in `[1, horizon]`; the same draw decides whether the in-flight
    /// checkpoint tears.
    pub fn drawn(seed: u64, counter: u64, horizon: u64) -> Self {
        let z = mix(seed, counter);
        let span = horizon.max(1);
        CrashPlan {
            crash_tick: 1 + (z % span),
            // an independent bit from the same draw
            torn_final: (z >> 63) == 1,
        }
    }

    /// Should the run die before executing the step at `tick`?
    pub fn fires_at(&self, tick: u64) -> bool {
        tick >= self.crash_tick
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drawn_is_deterministic_and_in_range() {
        for counter in 0..200u64 {
            let a = CrashPlan::drawn(0xFEED, counter, 100);
            let b = CrashPlan::drawn(0xFEED, counter, 100);
            assert_eq!(a, b);
            assert!((1..=100).contains(&a.crash_tick));
        }
        // different seeds/counters actually move the kill point
        let distinct: std::collections::BTreeSet<u64> = (0..50)
            .map(|c| CrashPlan::drawn(7, c, 1000).crash_tick)
            .collect();
        assert!(distinct.len() > 10);
    }

    #[test]
    fn some_plans_tear_and_some_do_not() {
        let torn = (0..64).filter(|&c| CrashPlan::drawn(1, c, 10).torn_final).count();
        assert!(torn > 0 && torn < 64);
    }
}
