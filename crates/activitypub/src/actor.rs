//! ActivityPub actor documents.

use serde::{Deserialize, Serialize};

/// The JSON-LD context every document carries.
pub const AS_CONTEXT: &str = "https://www.w3.org/ns/activitystreams";

/// An ActivityPub actor (a user account as seen by remote instances).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Actor {
    /// JSON-LD context.
    #[serde(rename = "@context")]
    pub context: String,
    /// Canonical actor id URL (`https://<domain>/users/<handle>`).
    pub id: String,
    /// Actor type; Mastodon uses `Person`.
    #[serde(rename = "type")]
    pub kind: String,
    /// Preferred username (the local handle).
    #[serde(rename = "preferredUsername")]
    pub preferred_username: String,
    /// Inbox URL (where remote instances POST activities).
    pub inbox: String,
    /// Outbox URL.
    pub outbox: String,
    /// Followers collection URL (the page the study's scraper walks).
    pub followers: String,
}

impl Actor {
    /// Build the canonical actor document for `handle@domain`.
    pub fn person(handle: &str, domain: &str) -> Actor {
        let id = actor_id(handle, domain);
        Actor {
            context: AS_CONTEXT.to_string(),
            kind: "Person".to_string(),
            preferred_username: handle.to_string(),
            inbox: format!("{id}/inbox"),
            outbox: format!("{id}/outbox"),
            followers: format!("{id}/followers"),
            id,
        }
    }

    /// The `user@domain` address of this actor, derived from its id.
    pub fn address(&self) -> Option<String> {
        let rest = self.id.strip_prefix("https://")?;
        let (domain, path) = rest.split_once('/')?;
        let handle = path.strip_prefix("users/")?;
        Some(format!("{handle}@{domain}"))
    }
}

/// Canonical actor id URL.
pub fn actor_id(handle: &str, domain: &str) -> String {
    format!("https://{domain}/users/{handle}")
}

/// Parse an actor id URL back into `(handle, domain)`.
pub fn parse_actor_id(id: &str) -> Option<(String, String)> {
    let rest = id.strip_prefix("https://")?;
    let (domain, path) = rest.split_once('/')?;
    let handle = path.strip_prefix("users/")?;
    // tolerate trailing path components (inbox, followers, …)
    let handle = handle.split('/').next()?;
    if handle.is_empty() || domain.is_empty() {
        return None;
    }
    Some((handle.to_string(), domain.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn person_document_shape() {
        let a = Actor::person("alice", "mstdn.jp");
        assert_eq!(a.id, "https://mstdn.jp/users/alice");
        assert_eq!(a.inbox, "https://mstdn.jp/users/alice/inbox");
        assert_eq!(a.followers, "https://mstdn.jp/users/alice/followers");
        assert_eq!(a.kind, "Person");
        assert_eq!(a.context, AS_CONTEXT);
    }

    #[test]
    fn serde_uses_ld_names() {
        let a = Actor::person("bob", "x.test");
        let json = serde_json::to_string(&a).unwrap();
        assert!(json.contains("\"@context\""));
        assert!(json.contains("\"type\":\"Person\""));
        assert!(json.contains("\"preferredUsername\":\"bob\""));
        let back: Actor = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn actor_id_round_trip() {
        let id = actor_id("carol", "pawoo.net");
        assert_eq!(
            parse_actor_id(&id),
            Some(("carol".to_string(), "pawoo.net".to_string()))
        );
        assert_eq!(
            parse_actor_id("https://pawoo.net/users/carol/inbox"),
            Some(("carol".to_string(), "pawoo.net".to_string()))
        );
    }

    #[test]
    fn parse_rejects_junk() {
        assert_eq!(parse_actor_id("http://insecure/users/x"), None);
        assert_eq!(parse_actor_id("https://domain-only"), None);
        assert_eq!(parse_actor_id("https://d/notusers/x"), None);
        assert_eq!(parse_actor_id("https://d/users/"), None);
    }

    #[test]
    fn address_derivation() {
        let a = Actor::person("dave", "m0001.fedi.test");
        assert_eq!(a.address(), Some("dave@m0001.fedi.test".to_string()));
    }
}
