//! # fediscope-activitypub
//!
//! A from-scratch subset of the ActivityPub/WebFinger federation stack —
//! the protocol layer Mastodon and Pleroma share (the paper, §2: Mastodon
//! supports OStatus and, from v1.6, ActivityPub, which is what lets the two
//! implementations federate).
//!
//! Implemented:
//! - actor documents and id/inbox/outbox URL construction ([`actor`]),
//! - WebFinger `acct:` resolution documents ([`webfinger`]),
//! - the four activities the study's traffic needs: `Follow`, `Accept`,
//!   `Create(Note)`, `Announce` ([`activity`]),
//! - instance-level federated-subscription bookkeeping ([`subscriptions`]):
//!   "each Mastodon instance maintains a list of all remote accounts its
//!   users follow; this results in the instance subscribing to posts
//!   performed on the remote instance" (§2).
//!
//! Not implemented (outside the study's scope): HTTP signatures, Linked Data
//! signatures, collections paging beyond followers, `Undo`/`Delete`/`Move`
//! activities, and OStatus/Salmon legacy federation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
pub mod actor;
pub mod subscriptions;
pub mod webfinger;

pub use activity::Activity;
pub use actor::Actor;
pub use subscriptions::SubscriptionTable;
pub use webfinger::WebFingerDoc;
