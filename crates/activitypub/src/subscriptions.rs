//! Instance-level federated-subscription bookkeeping.
//!
//! §2 of the paper: "each Mastodon instance maintains a list of all remote
//! accounts its users follow; this results in the instance subscribing to
//! posts performed on the remote instance, such that they can be pulled and
//! presented to local users." The table is reference-counted: the
//! instance-to-instance subscription disappears only when the *last* local
//! follow of that remote instance is removed.

use std::collections::HashMap;

/// Reference-counted subscriptions of one local instance to remote ones.
///
/// Keys are opaque instance identifiers chosen by the caller (domain strings
/// in the simulator, dense ids in the analyses).
#[derive(Debug, Clone, Default)]
pub struct SubscriptionTable {
    /// remote instance → number of local (follower, remote followee) pairs.
    counts: HashMap<u32, u32>,
}

impl SubscriptionTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that a local user followed an account on `remote`.
    /// Returns `true` if this created a *new* instance-level subscription.
    pub fn follow(&mut self, remote: u32) -> bool {
        let c = self.counts.entry(remote).or_insert(0);
        *c += 1;
        *c == 1
    }

    /// Record an unfollow. Returns `true` if the instance-level subscription
    /// was torn down (refcount hit zero). Unfollowing a never-followed
    /// remote is a no-op returning `false`.
    pub fn unfollow(&mut self, remote: u32) -> bool {
        match self.counts.get_mut(&remote) {
            None => false,
            Some(c) => {
                *c -= 1;
                if *c == 0 {
                    self.counts.remove(&remote);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Is the instance currently subscribed to `remote`?
    pub fn subscribed(&self, remote: u32) -> bool {
        self.counts.contains_key(&remote)
    }

    /// Number of remote instances subscribed to (the "federated
    /// subscriptions" count the instance API reports).
    pub fn subscription_count(&self) -> usize {
        self.counts.len()
    }

    /// Total local follow edges to `remote`.
    pub fn follower_pairs(&self, remote: u32) -> u32 {
        self.counts.get(&remote).copied().unwrap_or(0)
    }

    /// Iterate over subscribed remote instances (unordered).
    pub fn remotes(&self) -> impl Iterator<Item = u32> + '_ {
        self.counts.keys().copied()
    }

    /// Sorted remotes (deterministic output).
    pub fn remotes_sorted(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.counts.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_follow_creates_subscription() {
        let mut t = SubscriptionTable::new();
        assert!(t.follow(7));
        assert!(!t.follow(7)); // refcount only
        assert!(t.subscribed(7));
        assert_eq!(t.subscription_count(), 1);
        assert_eq!(t.follower_pairs(7), 2);
    }

    #[test]
    fn last_unfollow_tears_down() {
        let mut t = SubscriptionTable::new();
        t.follow(3);
        t.follow(3);
        assert!(!t.unfollow(3));
        assert!(t.subscribed(3));
        assert!(t.unfollow(3));
        assert!(!t.subscribed(3));
        assert_eq!(t.subscription_count(), 0);
    }

    #[test]
    fn unfollow_unknown_is_noop() {
        let mut t = SubscriptionTable::new();
        assert!(!t.unfollow(99));
    }

    #[test]
    fn remotes_sorted_deterministic() {
        let mut t = SubscriptionTable::new();
        for r in [5u32, 1, 9, 1] {
            t.follow(r);
        }
        assert_eq!(t.remotes_sorted(), vec![1, 5, 9]);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The table is exactly a multiset: subscribed iff net count > 0.
        #[test]
        fn refcount_invariant(ops in proptest::collection::vec((0u32..8, any::<bool>()), 0..200)) {
            let mut t = SubscriptionTable::new();
            let mut reference: std::collections::HashMap<u32, i64> = Default::default();
            for (remote, is_follow) in ops {
                if is_follow {
                    t.follow(remote);
                    *reference.entry(remote).or_insert(0) += 1;
                } else {
                    let had = reference.get(&remote).copied().unwrap_or(0) > 0;
                    let torn = t.unfollow(remote);
                    if had {
                        *reference.get_mut(&remote).unwrap() -= 1;
                        prop_assert_eq!(torn, reference[&remote] == 0);
                    } else {
                        prop_assert!(!torn);
                    }
                }
            }
            for (remote, count) in &reference {
                prop_assert_eq!(t.subscribed(*remote), *count > 0);
                prop_assert_eq!(t.follower_pairs(*remote) as i64, (*count).max(0));
            }
        }
    }
}
