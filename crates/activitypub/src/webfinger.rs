//! WebFinger (RFC 7033) `acct:` resolution — how an instance turns
//! `user@remote.domain` into an actor URL before federating.

use serde::{Deserialize, Serialize};

/// A WebFinger JRD link.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WebFingerLink {
    /// Relation type; actor documents use `self`.
    pub rel: String,
    /// Media type of the target.
    #[serde(rename = "type", skip_serializing_if = "Option::is_none")]
    pub media_type: Option<String>,
    /// Target URL.
    pub href: String,
}

/// A WebFinger JRD document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WebFingerDoc {
    /// The queried subject, `acct:user@domain`.
    pub subject: String,
    /// Resolution links.
    pub links: Vec<WebFingerLink>,
}

impl WebFingerDoc {
    /// The canonical document for `handle@domain`.
    pub fn for_account(handle: &str, domain: &str) -> WebFingerDoc {
        WebFingerDoc {
            subject: format!("acct:{handle}@{domain}"),
            links: vec![WebFingerLink {
                rel: "self".to_string(),
                media_type: Some("application/activity+json".to_string()),
                href: crate::actor::actor_id(handle, domain),
            }],
        }
    }

    /// The actor URL advertised by this document.
    pub fn actor_url(&self) -> Option<&str> {
        self.links
            .iter()
            .find(|l| l.rel == "self")
            .map(|l| l.href.as_str())
    }

    /// Parse the subject back into `(handle, domain)`.
    pub fn account(&self) -> Option<(String, String)> {
        let acct = self.subject.strip_prefix("acct:")?;
        let (h, d) = acct.split_once('@')?;
        if h.is_empty() || d.is_empty() {
            return None;
        }
        Some((h.to_string(), d.to_string()))
    }
}

/// Parse a `resource=acct:user@domain` query value.
pub fn parse_resource(resource: &str) -> Option<(String, String)> {
    let acct = resource.strip_prefix("acct:")?;
    let (h, d) = acct.split_once('@')?;
    if h.is_empty() || d.is_empty() {
        return None;
    }
    Some((h.to_string(), d.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn document_for_account() {
        let doc = WebFingerDoc::for_account("alice", "mstdn.jp");
        assert_eq!(doc.subject, "acct:alice@mstdn.jp");
        assert_eq!(doc.actor_url(), Some("https://mstdn.jp/users/alice"));
        assert_eq!(
            doc.account(),
            Some(("alice".to_string(), "mstdn.jp".to_string()))
        );
    }

    #[test]
    fn serde_round_trip() {
        let doc = WebFingerDoc::for_account("bob", "x.test");
        let json = serde_json::to_string(&doc).unwrap();
        assert!(json.contains("acct:bob@x.test"));
        let back: WebFingerDoc = serde_json::from_str(&json).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn parse_resource_values() {
        assert_eq!(
            parse_resource("acct:u7@m0001.fedi.test"),
            Some(("u7".to_string(), "m0001.fedi.test".to_string()))
        );
        assert_eq!(parse_resource("acct:nodomain"), None);
        assert_eq!(parse_resource("https://not-acct"), None);
        assert_eq!(parse_resource("acct:@d"), None);
    }

    #[test]
    fn missing_self_link() {
        let doc = WebFingerDoc {
            subject: "acct:a@b".into(),
            links: vec![],
        };
        assert_eq!(doc.actor_url(), None);
    }
}
