//! The activity vocabulary subset used by the toolkit.

use serde::{Deserialize, Serialize};

/// A `Note` object (a toot on the wire).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Note {
    /// Object id URL.
    pub id: String,
    /// Author actor URL.
    #[serde(rename = "attributedTo")]
    pub attributed_to: String,
    /// Content (the toolkit carries only opaque placeholders — the study
    /// deliberately avoids toot text analysis for ethics reasons).
    pub content: String,
}

/// The activities the simulated federation exchanges.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(tag = "type")]
pub enum Activity {
    /// `actor` asks to follow `object` (an actor URL).
    Follow {
        /// Activity id URL.
        id: String,
        /// Follower actor URL.
        actor: String,
        /// Followee actor URL.
        object: String,
    },
    /// Acceptance of a `Follow` (sent back by the followee's instance).
    Accept {
        /// Activity id URL.
        id: String,
        /// Accepting actor URL (the followee).
        actor: String,
        /// The id of the `Follow` being accepted.
        object: String,
    },
    /// Publication of a new `Note` (a toot).
    Create {
        /// Activity id URL.
        id: String,
        /// Author actor URL.
        actor: String,
        /// The note.
        object: Note,
    },
    /// A boost: re-sharing an existing note by reference.
    Announce {
        /// Activity id URL.
        id: String,
        /// Boosting actor URL.
        actor: String,
        /// The boosted note's id URL.
        object: String,
    },
}

impl Activity {
    /// The activity's own id.
    pub fn id(&self) -> &str {
        match self {
            Activity::Follow { id, .. }
            | Activity::Accept { id, .. }
            | Activity::Create { id, .. }
            | Activity::Announce { id, .. } => id,
        }
    }

    /// The performing actor.
    pub fn actor(&self) -> &str {
        match self {
            Activity::Follow { actor, .. }
            | Activity::Accept { actor, .. }
            | Activity::Create { actor, .. }
            | Activity::Announce { actor, .. } => actor,
        }
    }

    /// Serialise with the JSON-LD context attached.
    pub fn to_json(&self) -> serde_json::Value {
        let mut v = serde_json::to_value(self).expect("activity serialises");
        v.as_object_mut()
            .expect("object")
            .insert("@context".into(), crate::actor::AS_CONTEXT.into());
        v
    }

    /// Parse from a JSON value (ignores any `@context`).
    pub fn from_json(v: &serde_json::Value) -> Result<Activity, serde_json::Error> {
        serde_json::from_value(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn follow() -> Activity {
        Activity::Follow {
            id: "https://a.test/act/1".into(),
            actor: "https://a.test/users/u1".into(),
            object: "https://b.test/users/u9".into(),
        }
    }

    #[test]
    fn tagged_serialisation() {
        let json = serde_json::to_string(&follow()).unwrap();
        assert!(json.contains("\"type\":\"Follow\""));
    }

    #[test]
    fn json_ld_context_attached() {
        let v = follow().to_json();
        assert_eq!(
            v.get("@context").and_then(|c| c.as_str()),
            Some(crate::actor::AS_CONTEXT)
        );
        // and can still be parsed back
        let back = Activity::from_json(&v).unwrap();
        assert_eq!(back, follow());
    }

    #[test]
    fn create_round_trip() {
        let act = Activity::Create {
            id: "https://a.test/act/2".into(),
            actor: "https://a.test/users/u1".into(),
            object: Note {
                id: "https://a.test/notes/77".into(),
                attributed_to: "https://a.test/users/u1".into(),
                content: "<p>toot</p>".into(),
            },
        };
        let v = act.to_json();
        assert_eq!(v.get("type").and_then(|t| t.as_str()), Some("Create"));
        assert_eq!(Activity::from_json(&v).unwrap(), act);
    }

    #[test]
    fn accessors() {
        let a = follow();
        assert_eq!(a.id(), "https://a.test/act/1");
        assert_eq!(a.actor(), "https://a.test/users/u1");
    }

    #[test]
    fn unknown_type_rejected() {
        let v: serde_json::Value =
            serde_json::from_str(r#"{"type":"Dance","id":"x","actor":"y"}"#).unwrap();
        assert!(Activity::from_json(&v).is_err());
    }
}
