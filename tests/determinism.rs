//! Cross-crate determinism: the whole stack — generation, analysis,
//! verdicts — is a pure function of the seed.

use fediscope::core::Observatory;
use fediscope::prelude::*;

#[test]
fn same_seed_same_world_same_verdicts() {
    let a = Generator::generate_world(WorldConfig::tiny(77));
    let b = Generator::generate_world(WorldConfig::tiny(77));
    assert_eq!(a.instances, b.instances);
    assert_eq!(a.users, b.users);
    assert_eq!(a.follows, b.follows);
    assert_eq!(a.schedules, b.schedules);
    assert_eq!(a.twitter, b.twitter);

    let oa = Observatory::new(a);
    let ob = Observatory::new(b);
    let va = fediscope::core::verdicts::evaluate(&oa, true);
    let vb = fediscope::core::verdicts::evaluate(&ob, true);
    for (x, y) in va.iter().zip(&vb) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.measured, y.measured, "verdict {} diverged", x.id);
        assert_eq!(x.pass, y.pass);
    }
}

#[test]
fn different_seeds_different_worlds_same_shapes() {
    // The *content* differs but the calibrated shapes hold at any seed.
    let a = Generator::generate_world(WorldConfig::tiny(1));
    let b = Generator::generate_world(WorldConfig::tiny(2));
    assert_ne!(a.follows, b.follows);

    for world in [a, b] {
        let obs = Observatory::new(world);
        let f2 = fediscope::core::population::fig02_open_closed(&obs);
        assert!(f2.top5_user_share > 0.5, "skew must hold at any seed");
    }
}

#[test]
fn quick_world_helper_is_deterministic() {
    let a = fediscope::quick_world(5);
    let b = fediscope::quick_world(5);
    assert_eq!(a.total_toots(), b.total_toots());
    assert_eq!(a.federation_edges(), b.federation_edges());
}
