//! Cross-crate invariants tying §5's resilience machinery together: the
//! graph-sweep view and the replication-evaluator view of the same failure
//! sequence must agree on what "gone" means.

use fediscope::core::{Metric, Observatory};
use fediscope::prelude::*;
use fediscope::replication::eval::{availability_curve, singleton_groups, Strategy};

fn obs() -> Observatory {
    Observatory::new(Generator::generate_world(WorldConfig::tiny(31337)))
}

#[test]
fn no_replication_loss_equals_removed_toot_mass() {
    // Removing instances under No-Rep must lose exactly the toots homed on
    // them — the availability curve is just a cumulative sum.
    let o = obs();
    let order = o.instance_order(Metric::Toots);
    let k = 8.min(order.len());
    let groups = singleton_groups(&order[..k]);
    let curve = availability_curve(o.content_view(), Strategy::NoReplication, &groups);
    let total: u64 = o.toots_per_instance.iter().sum();
    let mut lost = 0u64;
    for (step, &inst) in order[..k].iter().enumerate() {
        lost += o.toots_per_instance[inst as usize];
        let expect = 1.0 - lost as f64 / total as f64;
        assert!(
            (curve[step + 1].availability - expect).abs() < 1e-9,
            "step {step}: curve {} vs direct {expect}",
            curve[step + 1].availability
        );
    }
}

#[test]
fn subscription_availability_dominated_by_graph_survival() {
    // If an author's instance *and* every follower instance is removed, the
    // toot must be counted lost; spot-check against a hand computation.
    let o = obs();
    let view = o.content_view();
    let order = o.instance_order(Metric::Users);
    let k = 10.min(order.len());
    let removed: std::collections::HashSet<u32> = order[..k].iter().copied().collect();
    let groups = singleton_groups(&order[..k]);
    let curve = availability_curve(view, Strategy::Subscription, &groups);

    let mut lost = 0u64;
    for u in 0..view.n_users() {
        let home_gone = removed.contains(&view.home[u]);
        let replicas_gone = view
            .follower_instances(u)
            .iter()
            .all(|i| removed.contains(i));
        if home_gone && replicas_gone {
            lost += view.toots[u];
        }
    }
    let expect = 1.0 - lost as f64 / view.total_toots as f64;
    assert!(
        (curve[k].availability - expect).abs() < 1e-9,
        "curve {} vs direct {expect}",
        curve[k].availability
    );
}

#[test]
fn federation_lcc_user_weight_matches_world_totals() {
    let o = obs();
    let weights = o.user_weights();
    let sweep =
        fediscope::graph::RemovalSweep::new(o.federation_graph()).with_weights(&weights);
    let pts = sweep.ranked(&[], &[0]);
    // nothing removed: the LCC weight cannot exceed the world's user count
    let total_users = o.world.users.len() as f64;
    assert!(pts[0].lcc_weight <= total_users);
    assert!(pts[0].lcc_weight_frac <= 1.0);
    // and the federation graph's node count matches the instance table
    assert_eq!(
        o.federation_graph().node_count(),
        o.world.instances.len()
    );
}

#[test]
fn strategies_are_totally_ordered_everywhere() {
    let o = obs();
    let view = o.content_view();
    let order = o.instance_order(Metric::Toots);
    let k = 12.min(order.len());
    let groups = singleton_groups(&order[..k]);
    let none = availability_curve(view, Strategy::NoReplication, &groups);
    let sub = availability_curve(view, Strategy::Subscription, &groups);
    for step in 0..=k {
        assert!(
            sub[step].availability >= none[step].availability - 1e-12,
            "subscription must dominate no-replication at every step"
        );
    }
}

#[test]
fn batched_sweep_agrees_with_naive_on_observatory_orders() {
    // The batched engine must be bit-identical to the per-strategy
    // reference on the real removal orders the figures use — both the
    // flat toot-ranked instance order and the grouped AS order.
    use fediscope::replication::eval::AvailabilitySweep;

    let o = obs();
    let view = o.content_view();
    let order = o.instance_order(Metric::Toots);
    let k = 15.min(order.len());
    let groups = singleton_groups(&order[..k]);
    let batch = AvailabilitySweep::singletons(view, &order[..k]).evaluate(&[1, 4, 9]);
    assert_eq!(
        batch.none,
        availability_curve(view, Strategy::NoReplication, &groups)
    );
    assert_eq!(
        batch.subscription,
        availability_curve(view, Strategy::Subscription, &groups)
    );
    for (n, curve) in &batch.random {
        assert_eq!(
            curve,
            &availability_curve(view, Strategy::Random { n: *n }, &groups)
        );
    }

    let mut as_groups = o.as_groups(Metric::Toots);
    as_groups.truncate(8);
    let grouped = AvailabilitySweep::grouped(view, &as_groups).evaluate(&[]);
    assert_eq!(
        grouped.none,
        availability_curve(view, Strategy::NoReplication, &as_groups)
    );
    assert_eq!(
        grouped.subscription,
        availability_curve(view, Strategy::Subscription, &as_groups)
    );
}
