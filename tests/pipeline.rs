//! Full-pipeline integration test: generate → serve over real sockets →
//! measure with the crawler → analyse — and verify the measurement recovers
//! the ground truth that the direct analyses see.

use fediscope::prelude::*;

#[cfg(feature = "net")]
use fediscope::crawler::discovery::SeedList;
#[cfg(feature = "net")]
use fediscope::crawler::monitor::InstanceMonitor;
#[cfg(feature = "net")]
use fediscope::crawler::politeness::Politeness;
#[cfg(feature = "net")]
use fediscope::crawler::toots;
#[cfg(feature = "net")]
use fediscope::httpwire::Client;
#[cfg(feature = "net")]
use fediscope::model::time::Epoch;
#[cfg(feature = "net")]
use fediscope::model::datasets::InstancesDataset;
#[cfg(feature = "net")]
use fediscope::model::world::World;
#[cfg(feature = "net")]
use fediscope::monitor::observe::schedule_from_polls;
#[cfg(feature = "net")]
use fediscope::monitor::{arena_from_polls_with_coverage, MonitorSweep, SweepConfig};
#[cfg(feature = "net")]
use fediscope::simnet::{launch, FaultPlan, TimelineIndex};
#[cfg(feature = "net")]
use std::sync::Arc;

#[cfg(feature = "net")]
fn pipeline_world(seed: u64) -> WorldConfig {
    let mut cfg = WorldConfig::tiny(seed);
    cfg.n_instances = 15;
    cfg.n_users = 300;
    cfg.toots_per_user_open = 6.0;
    cfg.toots_per_user_closed = 10.0;
    cfg
}

#[cfg(feature = "net")]
#[tokio::test]
async fn crawled_dataset_matches_direct_analysis() {
    let world = Arc::new(Generator::generate_world(pipeline_world(1001)));
    let net = launch(world.clone(), FaultPlan::default(), 9).await.unwrap();
    let seeds = SeedList::for_simnet(&world, net.addr());

    // crawl at an epoch where the world is maximally alive
    net.state.clock.set(Epoch(20_000));
    let dataset = toots::crawl_toots(&seeds, &Politeness::fast(), &Client::default()).await;

    // Every successfully crawled instance's count matches the ground-truth
    // public timeline *exactly*.
    for record in dataset.records.iter().filter(|r| r.crawled) {
        let tl = TimelineIndex::build(&world, record.instance);
        assert_eq!(record.home_toots, tl.total_public);
    }
    // Coverage is partial but substantial (the paper's 62% phenomenon:
    // blocked instances + the downtime of the moment).
    let coverage = dataset.coverage(world.total_toots());
    assert!(coverage > 0.1, "coverage {coverage}");
    net.shutdown().await;
}

#[cfg(feature = "net")]
#[tokio::test]
async fn monitoring_reconstructs_outage_structure() {
    let world = Arc::new(Generator::generate_world(pipeline_world(1002)));
    let net = launch(world.clone(), FaultPlan::default(), 9).await.unwrap();
    let seeds = SeedList::for_simnet(&world, net.addr());
    let mut monitor = InstanceMonitor::new(seeds, Politeness::fast());

    // Poll densely across a slice of the window (every ~6 hours of virtual
    // time for the first 60 days).
    let mut epoch = 0u32;
    while epoch < 60 * 288 {
        net.state.clock.set(Epoch(epoch));
        monitor.poll_all(Epoch(epoch)).await;
        epoch += 72;
    }
    let dataset = monitor.into_dataset();

    // Reconstruct schedules from the polls and compare the *observed*
    // downtime against ground truth over the polled slice.
    for series in &dataset.series {
        let truth = &world.schedules[series.instance.index()];
        let Some(observed) = schedule_from_polls(series) else {
            continue;
        };
        // At 6-hour sampling the reconstruction can miss sub-sample blips,
        // so compare coarse downtime fractions.
        let polled: Vec<_> = series.polls.iter().collect();
        let truth_down = polled
            .iter()
            .filter(|(e, _)| !truth.is_up(*e))
            .count() as f64
            / polled.len() as f64;
        let obs_down = series.downtime_fraction().unwrap_or(0.0);
        assert!(
            (truth_down - obs_down).abs() < 1e-9,
            "poll-level downtime must match exactly for {}",
            series.instance
        );
        // and the reconstructed schedule agrees with the polls it came from.
        // Polls after the last observed "up" are excluded: a trailing down
        // run is (by documented semantics) read as retirement, not an
        // outage, so the schedule reports no coverage there.
        let last_up = series
            .polls
            .iter()
            .rev()
            .find(|(_, r)| r.is_up())
            .map(|(e, _)| *e);
        for (e, r) in &series.polls {
            if *e < observed.death_epoch() && Some(*e) <= last_up {
                assert_eq!(
                    observed.is_up(*e),
                    r.is_up(),
                    "reconstruction disagrees at epoch {}",
                    e.0
                );
            }
        }
    }
    net.shutdown().await;
}

/// One full monitoring campaign over `world` behind a fault injector: a
/// sweep every 72 epochs (6 virtual hours) across the first 60 days.
#[cfg(feature = "net")]
async fn crawl_under(
    world: Arc<World>,
    plan: FaultPlan,
    injector_seed: u64,
    politeness: Politeness,
) -> InstancesDataset {
    let net = launch(world, plan, injector_seed).await.unwrap();
    let seeds = SeedList::for_simnet(&net.state.world, net.addr());
    let mut monitor = InstanceMonitor::new(seeds, politeness);
    let mut epoch = 0u32;
    while epoch < 60 * 288 {
        net.state.clock.set(Epoch(epoch));
        monitor.poll_all(Epoch(epoch)).await;
        epoch += 72;
    }
    let dataset = monitor.into_dataset();
    net.shutdown().await;
    dataset
}

/// The §4 knobs used by the fault-injection pipeline tests (threshold
/// lowered to suit a 15-instance world).
#[cfg(feature = "net")]
fn pipeline_sweep_cfg() -> SweepConfig {
    SweepConfig {
        day_stride: 1,
        min_as_instances: 3,
    }
}

/// The headline robustness claim: every fault [`FaultPlan::flaky`] draws is
/// recoverable, and the retry engine recovers all of them — the crawl
/// through the flaky injector produces a dataset *bit-identical* to the
/// fault-free crawl, so the reconstructed arena and the whole §4 figure
/// bundle come out identical too. (The fault-free crawl itself is pinned to
/// ground truth by `monitoring_reconstructs_outage_structure` above.)
#[cfg(feature = "net")]
#[tokio::test]
async fn flaky_crawl_recovers_section4_figures_bit_identical() {
    let world = Arc::new(Generator::generate_world(pipeline_world(2001)));
    let clean = crawl_under(
        world.clone(),
        FaultPlan::default(),
        21,
        Politeness::hostile(),
    )
    .await;
    let flaky = crawl_under(world.clone(), FaultPlan::flaky(), 21, Politeness::hostile()).await;

    assert_eq!(
        clean, flaky,
        "retries must erase every recoverable fault from the transcript"
    );

    let (arena_clean, cov_clean) = arena_from_polls_with_coverage(&clean.series);
    let (arena_flaky, cov_flaky) = arena_from_polls_with_coverage(&flaky.series);
    assert!(cov_flaky.complete(), "flaky crawl left gaps: {cov_flaky:?}");
    assert_eq!(cov_clean, cov_flaky);

    let cfg = pipeline_sweep_cfg();
    let out_clean = MonitorSweep::new(&arena_clean, &world.instances).run(&world.providers, &cfg);
    let out_flaky = MonitorSweep::new(&arena_flaky, &world.instances).run(&world.providers, &cfg);
    assert_eq!(out_clean, out_flaky, "§4 figures must be bit-identical");
}

/// Beyond-recovery faults ([`FaultPlan::harsh`] adds permanent mid-crawl
/// instance death and per-epoch budgets): the crawl degrades *gracefully* —
/// the polls it does land agree exactly with the fault-free crawl, the
/// coverage report owns up to every gap, and the §4 sweep still runs on
/// what was observed.
#[cfg(feature = "net")]
#[tokio::test]
async fn harsh_crawl_degrades_gracefully_with_honest_coverage() {
    let world = Arc::new(Generator::generate_world(pipeline_world(2002)));
    let clean = crawl_under(
        world.clone(),
        FaultPlan::default(),
        33,
        Politeness::hostile(),
    )
    .await;
    let harsh = crawl_under(world.clone(), FaultPlan::harsh(), 33, Politeness::hostile()).await;

    // Faults only ever punch gaps; they never fabricate observations.
    for (cs, hs) in clean.series.iter().zip(&harsh.series) {
        assert_eq!(cs.polls.len(), hs.polls.len());
        for ((ce, cr), (he, hr)) in cs.polls.iter().zip(&hs.polls) {
            assert_eq!(ce, he);
            if hr.is_known() {
                assert_eq!(cr, hr, "instance {} epoch {}", hs.instance, he.0);
            }
        }
    }

    let (arena, cov) = arena_from_polls_with_coverage(&harsh.series);
    assert!(!cov.complete(), "harsh plan should punch gaps");
    assert_eq!(cov.known + cov.unknown, cov.polls);
    assert_eq!(
        cov.per_instance_unknown.iter().sum::<usize>(),
        cov.unknown,
        "per-instance gap counts must add up"
    );
    // The documented coverage bound: even under the harsh plan the crawl
    // observes the overwhelming majority of polls.
    assert!(
        cov.known_fraction() > 0.8,
        "known fraction {}",
        cov.known_fraction()
    );
    // What was observed still analyses: the sweep runs on the gap-tolerant
    // reconstruction without panicking or degenerating.
    let cfg = pipeline_sweep_cfg();
    let out = MonitorSweep::new(&arena, &world.instances).run(&world.providers, &cfg);
    assert!(!out.downtime.fraction.is_empty());
}

/// Same seed ⇒ same crawl transcript, at any fault plan: two *fresh*
/// executors (separate `Runtime` instances, separate listeners, separate
/// injectors) replay byte-for-byte identical campaigns.
#[cfg(feature = "net")]
#[test]
fn same_seed_replays_identical_transcript_at_any_fault_plan() {
    let run = |plan: FaultPlan| {
        let rt = tokio::runtime::Runtime::new().unwrap();
        rt.block_on(async {
            let world = Arc::new(Generator::generate_world(pipeline_world(2003)));
            crawl_under(world, plan, 77, Politeness::hostile()).await
        })
    };
    for plan in [FaultPlan::default(), FaultPlan::flaky(), FaultPlan::harsh()] {
        let a = run(plan.clone());
        let b = run(plan);
        assert_eq!(a, b, "two fresh runtimes diverged");
    }
}

#[test]
fn direct_analyses_pass_verdicts() {
    let world = Generator::generate_world(WorldConfig::small(42));
    let obs = fediscope::core::Observatory::new(world);
    let verdicts = fediscope::core::verdicts::evaluate(&obs, true);
    let failures: Vec<&str> = verdicts
        .iter()
        .filter(|v| !v.pass)
        .map(|v| v.id)
        .collect();
    assert!(failures.is_empty(), "failed: {failures:?}");
}
