//! Full-pipeline integration test: generate → serve over real sockets →
//! measure with the crawler → analyse — and verify the measurement recovers
//! the ground truth that the direct analyses see.

use fediscope::prelude::*;

#[cfg(feature = "net")]
use fediscope::crawler::discovery::SeedList;
#[cfg(feature = "net")]
use fediscope::crawler::monitor::InstanceMonitor;
#[cfg(feature = "net")]
use fediscope::crawler::politeness::Politeness;
#[cfg(feature = "net")]
use fediscope::crawler::toots;
#[cfg(feature = "net")]
use fediscope::httpwire::Client;
#[cfg(feature = "net")]
use fediscope::model::time::Epoch;
#[cfg(feature = "net")]
use fediscope::monitor::observe::schedule_from_polls;
#[cfg(feature = "net")]
use fediscope::simnet::{launch, FaultPlan, TimelineIndex};
#[cfg(feature = "net")]
use std::sync::Arc;

#[cfg(feature = "net")]
fn pipeline_world(seed: u64) -> WorldConfig {
    let mut cfg = WorldConfig::tiny(seed);
    cfg.n_instances = 15;
    cfg.n_users = 300;
    cfg.toots_per_user_open = 6.0;
    cfg.toots_per_user_closed = 10.0;
    cfg
}

#[cfg(feature = "net")]
#[tokio::test]
async fn crawled_dataset_matches_direct_analysis() {
    let world = Arc::new(Generator::generate_world(pipeline_world(1001)));
    let net = launch(world.clone(), FaultPlan::default(), 9).await.unwrap();
    let seeds = SeedList::for_simnet(&world, net.addr());

    // crawl at an epoch where the world is maximally alive
    net.state.clock.set(Epoch(20_000));
    let dataset = toots::crawl_toots(&seeds, &Politeness::fast(), &Client::default()).await;

    // Every successfully crawled instance's count matches the ground-truth
    // public timeline *exactly*.
    for record in dataset.records.iter().filter(|r| r.crawled) {
        let tl = TimelineIndex::build(&world, record.instance);
        assert_eq!(record.home_toots, tl.total_public);
    }
    // Coverage is partial but substantial (the paper's 62% phenomenon:
    // blocked instances + the downtime of the moment).
    let coverage = dataset.coverage(world.total_toots());
    assert!(coverage > 0.1, "coverage {coverage}");
    net.shutdown().await;
}

#[cfg(feature = "net")]
#[tokio::test]
async fn monitoring_reconstructs_outage_structure() {
    let world = Arc::new(Generator::generate_world(pipeline_world(1002)));
    let net = launch(world.clone(), FaultPlan::default(), 9).await.unwrap();
    let seeds = SeedList::for_simnet(&world, net.addr());
    let mut monitor = InstanceMonitor::new(seeds, Politeness::fast());

    // Poll densely across a slice of the window (every ~6 hours of virtual
    // time for the first 60 days).
    let mut epoch = 0u32;
    while epoch < 60 * 288 {
        net.state.clock.set(Epoch(epoch));
        monitor.poll_all(Epoch(epoch)).await;
        epoch += 72;
    }
    let dataset = monitor.into_dataset();

    // Reconstruct schedules from the polls and compare the *observed*
    // downtime against ground truth over the polled slice.
    for series in &dataset.series {
        let truth = &world.schedules[series.instance.index()];
        let Some(observed) = schedule_from_polls(series) else {
            continue;
        };
        // At 6-hour sampling the reconstruction can miss sub-sample blips,
        // so compare coarse downtime fractions.
        let polled: Vec<_> = series.polls.iter().collect();
        let truth_down = polled
            .iter()
            .filter(|(e, _)| !truth.is_up(*e))
            .count() as f64
            / polled.len() as f64;
        let obs_down = series.downtime_fraction().unwrap_or(0.0);
        assert!(
            (truth_down - obs_down).abs() < 1e-9,
            "poll-level downtime must match exactly for {}",
            series.instance
        );
        // and the reconstructed schedule agrees with the polls it came from
        for (e, r) in &series.polls {
            if *e < observed.death_epoch() {
                assert_eq!(
                    observed.is_up(*e),
                    r.is_up(),
                    "reconstruction disagrees at epoch {}",
                    e.0
                );
            }
        }
    }
    net.shutdown().await;
}

#[test]
fn direct_analyses_pass_verdicts() {
    let world = Generator::generate_world(WorldConfig::small(42));
    let obs = fediscope::core::Observatory::new(world);
    let verdicts = fediscope::core::verdicts::evaluate(&obs, true);
    let failures: Vec<&str> = verdicts
        .iter()
        .filter(|v| !v.pass)
        .map(|v| v.id)
        .collect();
    assert!(failures.is_empty(), "failed: {failures:?}");
}
