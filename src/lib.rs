//! # fediscope
//!
//! A toolkit for **measuring and simulating the Decentralised Web**,
//! reproducing *"Challenges in the Decentralised Web: The Mastodon Case"*
//! (Raman et al., IMC 2019) end-to-end in Rust.
//!
//! This crate is the umbrella façade: it re-exports every workspace crate
//! under one namespace and provides a couple of one-line entry points.
//!
//! ```
//! use fediscope::prelude::*;
//!
//! // Generate a deterministic synthetic fediverse and run the study.
//! let world = Generator::generate_world(WorldConfig::tiny(42));
//! let obs = Observatory::new(world);
//! let growth = fediscope::core::population::fig01_growth(&obs, 30);
//! assert!(!growth.samples.is_empty());
//! ```
//!
//! The subsystems:
//!
//! | module | contents |
//! |---|---|
//! | [`stats`] | ECDFs, quantiles, correlation, power-law fits |
//! | [`model`] | the domain model (instances, users, schedules, time) |
//! | [`graph`] | CSR digraph, components, removal sweeps |
//! | [`worldgen`] | the calibrated synthetic-fediverse generator |
//! | [`httpwire`] | HTTP/1.1 from scratch on tokio |
//! | [`activitypub`] | the federation protocol subset |
//! | [`simnet`] | live simulated instances behind one listener |
//! | [`crawler`] | the measurement toolkit (monitor, toots, followers) |
//! | [`monitor`] | availability analytics (downtime, outages, AS, certs) |
//! | [`replication`] | replication strategies + DHT + evaluators |
//! | [`core`] | every figure/table of the paper as a typed analysis |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fediscope_activitypub as activitypub;
pub use fediscope_core as core;
pub use fediscope_crawler as crawler;
pub use fediscope_graph as graph;
pub use fediscope_httpwire as httpwire;
pub use fediscope_model as model;
pub use fediscope_monitor as monitor;
pub use fediscope_replication as replication;
pub use fediscope_simnet as simnet;
pub use fediscope_stats as stats;
pub use fediscope_worldgen as worldgen;

/// The most common imports in one place.
pub mod prelude {
    pub use fediscope_core::{Metric, Observatory};
    pub use fediscope_model::{World, WINDOW_DAYS, WINDOW_EPOCHS};
    pub use fediscope_worldgen::{Generator, WorldConfig};
}

/// Generate the default small-scale study world for a seed.
pub fn quick_world(seed: u64) -> fediscope_model::World {
    fediscope_worldgen::Generator::generate_world(fediscope_worldgen::WorldConfig::small(seed))
}

#[cfg(test)]
mod tests {
    #[test]
    fn quick_world_builds() {
        let w = super::quick_world(7);
        assert_eq!(w.instances.len(), 433);
        assert_eq!(w.seed, 7);
    }
}
