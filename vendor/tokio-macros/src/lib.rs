//! Offline stand-in for `tokio-macros`.
//!
//! crates.io (and therefore `syn`/`quote`) is unavailable in this build
//! environment, so the attributes rewrite the item's `TokenStream` by hand.
//! Both expand an `async fn` into a plain fn whose body drives the future
//! on the deterministic runtime:
//!
//! ```text
//! #[tokio::test]                    #[test]
//! async fn name() { BODY }    →     fn name() {
//!                                       ::tokio::runtime::Runtime::new()
//!                                           .expect("failed to build runtime")
//!                                           .block_on(async { BODY })
//!                                   }
//! ```
//!
//! Supported shapes: a (possibly attributed) `async fn` with no arguments
//! and no return-type arrow, which is every use in this workspace. Anything
//! else panics at expansion time with a clear message.

use proc_macro::{Delimiter, Group, Ident, Span, TokenStream, TokenTree};

/// `#[tokio::main]`: run an async `main` on the deterministic runtime.
#[proc_macro_attribute]
pub fn main(_attr: TokenStream, item: TokenStream) -> TokenStream {
    expand(item, false)
}

/// `#[tokio::test]`: an async test driven to completion on a fresh runtime.
#[proc_macro_attribute]
pub fn test(_attr: TokenStream, item: TokenStream) -> TokenStream {
    expand(item, true)
}

fn expand(item: TokenStream, is_test: bool) -> TokenStream {
    let tokens: Vec<TokenTree> = item.into_iter().collect();
    let Some((TokenTree::Group(body), signature)) = tokens.split_last() else {
        panic!("#[tokio::main]/#[tokio::test] expects a function item");
    };
    assert!(
        body.delimiter() == Delimiter::Brace,
        "#[tokio::main]/#[tokio::test] expects a function with a brace body"
    );

    // Pass the signature through minus the one `async` keyword.
    let mut out: Vec<TokenTree> = Vec::new();
    if is_test {
        out.extend("#[test]".parse::<TokenStream>().expect("static tokens"));
    }
    let mut removed_async = false;
    for tt in signature {
        if !removed_async {
            if let TokenTree::Ident(id) = tt {
                if id.to_string() == "async" {
                    removed_async = true;
                    continue;
                }
            }
        }
        out.push(tt.clone());
    }
    assert!(
        removed_async,
        "#[tokio::main]/#[tokio::test] only applies to async fns"
    );

    // New body: ::tokio::runtime::Runtime::new().expect(..).block_on(async BODY)
    let mut call: Vec<TokenTree> = Vec::new();
    call.extend(
        "::tokio::runtime::Runtime::new().expect(\"failed to build runtime\").block_on"
            .parse::<TokenStream>()
            .expect("static tokens"),
    );
    let arg: Vec<TokenTree> = vec![
        TokenTree::Ident(Ident::new("async", Span::call_site())),
        TokenTree::Group(Group::new(Delimiter::Brace, body.stream())),
    ];
    call.push(TokenTree::Group(Group::new(
        Delimiter::Parenthesis,
        arg.into_iter().collect(),
    )));
    out.push(TokenTree::Group(Group::new(
        Delimiter::Brace,
        call.into_iter().collect(),
    )));
    out.into_iter().collect()
}
