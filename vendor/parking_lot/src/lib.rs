//! Offline stand-in for `parking_lot`: `Mutex`/`RwLock` wrappers over
//! `std::sync` with parking_lot's poison-free API (lock() returns the guard
//! directly; a poisoned std lock just yields the inner data).

/// Poison-free mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<std::sync::MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Poison-free reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
