//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a small, API-compatible subset of `rand 0.8`: the `Rng`/`RngCore`/
//! `SeedableRng` traits, a deterministic `StdRng` (xoshiro256** seeded via
//! SplitMix64), uniform range sampling, and `SliceRandom`.
//!
//! The random streams differ from upstream `rand`'s ChaCha12-based `StdRng`,
//! but every consumer in this workspace only relies on *determinism per
//! seed* and sound uniformity, both of which hold here.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG's raw bits (the
/// `Standard` distribution of upstream rand).
pub trait StandardSample {
    /// Draw one value.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types `Rng::gen_range` can sample uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[low, high)` (`inclusive` widens to `[low, high]`).
    fn sample_range<R: RngCore + ?Sized>(low: Self, high: Self, inclusive: bool, rng: &mut R)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(low <= high, "empty range in gen_range");
                    if low == <$t>::MIN && high == <$t>::MAX {
                        return rng.next_u64() as $t;
                    }
                } else {
                    assert!(low < high, "empty range in gen_range");
                }
                let span = (high as u128)
                    .wrapping_sub(low as u128) as u64
                    + inclusive as u64;
                // Lemire's multiply-shift keeps this bias-free enough for
                // simulation purposes while staying branch-light.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(hi as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                _inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(low < high, "empty range in gen_range");
                let u = <$t as StandardSample>::standard_sample(rng);
                low + u * (high - low)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges that `Rng::gen_range` accepts (mirrors rand 0.8's signature so
/// type inference flows from the expected output into the literal range).
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (s, e) = self.into_inner();
        T::sample_range(s, e, true, rng)
    }
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample a value of `T` from its natural uniform distribution.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Uniform draw from `range`.
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        <f64 as StandardSample>::standard_sample(self) < p
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, dist: D) -> T
    where
        Self: Sized,
    {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    /// Derive a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**
    /// seeded through SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for API familiarity.
    pub type SmallRng = StdRng;
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random picks over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// Distribution trait (re-exported by `rand_distr`).
pub mod distributions {
    use super::RngCore;

    /// Types that can produce samples of `T`.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over a stored range.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: Copy> Uniform<T> {
        /// Uniform over `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            Uniform { low, high }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            use super::StandardSample;
            self.low + f64::standard_sample(rng) * (self.high - self.low)
        }
    }

    impl Distribution<u64> for Uniform<u64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            use super::SampleRange;
            (self.low..self.high).sample_from(rng)
        }
    }
}

/// The common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

pub use distributions::Distribution;

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u32 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(3..=5);
            assert!((3..=5).contains(&w));
            let f = r.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_rate() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((28_000..32_000).contains(&hits), "{hits}");
    }

    #[test]
    fn uniform_f64_mean() {
        let mut r = StdRng::seed_from_u64(3);
        let mean: f64 = (0..100_000).map(|_| r.gen::<f64>()).sum::<f64>() / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
