//! Offline stand-in for the `bytes` crate: [`Bytes`] and [`BytesMut`] with
//! the operations the HTTP codec uses. Cheap cloning of `Bytes` is provided
//! by an `Arc`; zero-copy slicing is not attempted (irrelevant at the
//! traffic volumes of the simulator).

use std::sync::Arc;

/// Immutable, cheaply clonable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Buffer over a static slice (copied; compatibility constructor).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes {
            data: Arc::new(s.to_vec()),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_ref().clone()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::new(v) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes {
            data: Arc::new(s.into_bytes()),
        }
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes {
            data: Arc::new(s.as_bytes().to_vec()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes {
            data: Arc::new(s.to_vec()),
        }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        **self == **other
    }
}

/// Growable byte buffer with front consumption.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Consumed prefix length (lazily compacted).
    head: usize,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
            head: 0,
        }
    }

    /// Length of the unconsumed bytes.
    pub fn len(&self) -> usize {
        self.data.len() - self.head
    }

    /// Is the unconsumed region empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.compact();
        self.data.extend_from_slice(src);
    }

    /// Drop `n` bytes from the front.
    pub fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end");
        self.head += n;
        if self.head > 4096 && self.head * 2 > self.data.len() {
            self.compact();
        }
    }

    /// Split off and return the first `n` bytes.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to past end");
        let out = BytesMut {
            data: self.as_slice()[..n].to_vec(),
            head: 0,
        };
        self.advance(n);
        out
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(mut self) -> Bytes {
        self.compact();
        Bytes::from(self.data)
    }

    /// Reserve space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.head..]
    }

    fn compact(&mut self) {
        if self.head > 0 {
            self.data.drain(..self.head);
            self.head = 0;
        }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut {
            data: s.to_vec(),
            head: 0,
        }
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { data: v, head: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extend_advance_split() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"hello world");
        assert_eq!(b.len(), 11);
        let head = b.split_to(6);
        assert_eq!(&head[..], b"hello ");
        assert_eq!(&b[..], b"world");
        b.advance(4);
        assert_eq!(&b[..], b"d");
        b.extend_from_slice(b"one");
        assert_eq!(&b[..], b"done");
        assert_eq!(&b.freeze()[..], b"done");
    }

    #[test]
    fn bytes_equality_and_clone() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, &[1u8, 2, 3][..]);
        assert_eq!(Bytes::from_static(b"xy").len(), 2);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn windows_via_deref() {
        let mut b = BytesMut::from(&b"abcd"[..]);
        b.advance(1);
        let w: Vec<&[u8]> = b.windows(2).collect();
        assert_eq!(w, vec![b"bc".as_slice(), b"cd".as_slice()]);
    }
}
