//! JSON text layer: compact formatting and a recursive-descent parser.

use crate::{Error, Map, Number, Value};

/// Render `v` as compact JSON text (serde_json-compatible: no whitespace,
/// `"` `\\` control-character escaping, shortest-ish float forms).
pub fn format_value(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, &mut out);
    out
}

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_string(s, out),
        Value::Array(a) => {
            out.push('[');
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
        // Not a JSON type: rendered as lowercase hex for debuggability.
        // One-way — the parser reads this back as a plain string.
        Value::Bytes(b) => {
            out.push('"');
            for byte in b {
                out.push_str(&format!("{byte:02x}"));
            }
            out.push('"');
        }
    }
}

fn write_number(n: Number, out: &mut String) {
    match n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        Number::F(f) => {
            if f.is_finite() {
                if f == f.trunc() && f.abs() < 1e15 {
                    // keep the ".0" so floats survive a round-trip as floats
                    out.push_str(&format!("{f:.1}"));
                } else {
                    out.push_str(&format!("{f}"));
                }
            } else {
                // serde_json serialises non-finite floats as null
                out.push_str("null");
            }
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse JSON text into a [`Value`]; trailing non-whitespace is an error.
pub fn parse_value(input: &str) -> Result<Value, Error> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_any(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::custom(format!("trailing input at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_any(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    let Some(&c) = b.get(*pos) else {
        return Err(Error::custom("unexpected end of input"));
    };
    match c {
        b'n' => expect_lit(b, pos, "null").map(|_| Value::Null),
        b't' => expect_lit(b, pos, "true").map(|_| Value::Bool(true)),
        b'f' => expect_lit(b, pos, "false").map(|_| Value::Bool(false)),
        b'"' => parse_string(b, pos).map(Value::String),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_any(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::custom("expected ',' or ']'")),
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut map = Map::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err(Error::custom("expected ':'"));
                }
                *pos += 1;
                let val = parse_any(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(map));
                    }
                    _ => return Err(Error::custom("expected ',' or '}'")),
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(b, pos),
        other => Err(Error::custom(format!("unexpected byte {other:#x}"))),
    }
}

fn expect_lit(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(Error::custom(format!("expected `{lit}`")))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && b[*pos].is_ascii_digit() {
        *pos += 1;
    }
    let mut is_float = false;
    if b.get(*pos) == Some(&b'.') {
        is_float = true;
        *pos += 1;
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        is_float = true;
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        while *pos < b.len() && b[*pos].is_ascii_digit() {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| Error::custom("bad number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::custom("bad number"));
    }
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::Number(Number::U(u)));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Number(Number::I(i)));
        }
    }
    text.parse::<f64>()
        .map(|f| Value::Number(Number::F(f)))
        .map_err(|_| Error::custom(format!("bad number `{text}`")))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    if b.get(*pos) != Some(&b'"') {
        return Err(Error::custom("expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&c) = b.get(*pos) else {
            return Err(Error::custom("unterminated string"));
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = b.get(*pos) else {
                    return Err(Error::custom("unterminated escape"));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hi = parse_hex4(b, pos)?;
                        let ch = if (0xD800..0xDC00).contains(&hi) {
                            // surrogate pair
                            if b.get(*pos) == Some(&b'\\') && b.get(*pos + 1) == Some(&b'u') {
                                *pos += 2;
                                let lo = parse_hex4(b, pos)?;
                                let combined =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(hi)
                        };
                        out.push(ch.ok_or_else(|| Error::custom("bad \\u escape"))?);
                    }
                    _ => return Err(Error::custom("bad escape")),
                }
            }
            _ => {
                // Re-sync to char boundaries for multibyte UTF-8.
                let rest = std::str::from_utf8(&b[*pos - 1..])
                    .map_err(|_| Error::custom("invalid utf-8"))?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8() - 1;
            }
        }
    }
}

fn parse_hex4(b: &[u8], pos: &mut usize) -> Result<u32, Error> {
    if *pos + 4 > b.len() {
        return Err(Error::custom("short \\u escape"));
    }
    let s = std::str::from_utf8(&b[*pos..*pos + 4]).map_err(|_| Error::custom("bad hex"))?;
    *pos += 4;
    u32::from_str_radix(s, 16).map_err(|_| Error::custom("bad hex"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let src = r#"{"a":[1,2.5,-3,"x\ny",true,null],"b":{"c":"é"}}"#;
        let v = parse_value(src).unwrap();
        assert_eq!(v["a"][1].as_f64(), Some(2.5));
        assert_eq!(v["b"]["c"].as_str(), Some("é"));
        let back = parse_value(&format_value(&v)).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integers_stay_integers() {
        let v = parse_value("42").unwrap();
        assert_eq!(v.as_u64(), Some(42));
        assert_eq!(format_value(&v), "42");
        let neg = parse_value("-7").unwrap();
        assert_eq!(neg.as_i64(), Some(-7));
    }

    #[test]
    fn floats_keep_point() {
        assert_eq!(format_value(&Value::from(1.0f64)), "1.0");
        assert_eq!(format_value(&Value::from(0.5f64)), "0.5");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("{").is_err());
        assert!(parse_value("").is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let s = Value::String("a\"b\\c\nd\u{1}".into());
        let text = format_value(&s);
        assert_eq!(parse_value(&text).unwrap(), s);
    }
}
