//! Offline stand-in for `serde`.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! compact serde replacement specialised to the one data format the toolkit
//! uses: JSON. [`Serialize`]/[`Deserialize`] convert to and from an
//! order-preserving [`Value`] tree, `serde_derive` provides a real derive
//! (structs, newtypes, generics, enums with unit/newtype/tuple/struct
//! variants — externally or internally tagged — `rename`,
//! `skip_serializing_if`), and the sibling `serde_json` facade adds the
//! text layer. Container impls cover `Vec`, slices, tuples, `Option`,
//! `BTreeMap`/`HashMap` (string or integer keys via [`MapKey`], hash maps
//! emitted in sorted key order for deterministic bytes), `VecDeque`, and
//! exact `u128`/`i128` as decimal strings — the shapes the checkpoint
//! format in `crates/recover` snapshots.

pub use serde_derive::{Deserialize, Serialize};

mod text;
pub use text::{format_value, parse_value};

/// Serialisation/deserialisation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// New error with a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// A JSON number: unsigned, signed, or floating.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// As u64 when representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) if i >= 0 => Some(i as u64),
            _ => None,
        }
    }

    /// As i64 when representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(_) => None,
        }
    }

    /// As f64 (always representable, possibly lossily).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::F(a), Number::F(b)) => a == b,
            (Number::F(_), _) | (_, Number::F(_)) => false,
            _ => self.as_i64() == other.as_i64() && self.as_u64() == other.as_u64(),
        }
    }
}

/// An order-preserving JSON object.
#[derive(Debug, Clone, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert (replacing an existing key in place); returns the old value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Value for `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable value for `key`.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Does `key` exist?
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Remove `key`, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let idx = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(idx).1)
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterate keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

impl PartialEq for Map {
    fn eq(&self, other: &Self) -> bool {
        // Key order is preserved for output but irrelevant for equality,
        // matching serde_json's semantics.
        self.entries.len() == other.entries.len()
            && self
                .entries
                .iter()
                .all(|(k, v)| other.get(k) == Some(v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON document tree.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
    /// Raw binary data. Not a JSON type: snapshot payloads (see
    /// `crates/recover`) use it for packed fixed-width record columns,
    /// where one node standing in for thousands of numbers keeps
    /// checkpoint encode time off the hot path. The JSON text writer
    /// renders it as a lowercase-hex string (one-way: the parser has no
    /// bytes syntax); the binary snapshot codec round-trips it exactly.
    Bytes(Vec<u8>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Member of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// Mutable member of an object by key.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Object(m) => m.get_mut(key),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned integer payload.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Signed integer payload.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// Floating payload (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// Boolean payload.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array payload.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable array payload.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object payload.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable object payload.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Binary payload.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&format_value(self))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Number(Number::F(f))
    }
}

macro_rules! impl_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self { Value::Number(Number::U(v as u64)) }
        }
    )*};
}
impl_from_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                if v >= 0 { Value::Number(Number::U(v as u64)) }
                else { Value::Number(Number::I(v as i64)) }
            }
        }
    )*};
}
impl_from_int!(i8, i16, i32, i64, isize);

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::Array(v)
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}

/// Conversion into the JSON [`Value`] tree.
pub trait Serialize {
    /// Self as a JSON value.
    fn to_json_value(&self) -> Value;
}

/// Conversion out of the JSON [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse self from a JSON value.
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value { Value::Number(Number::U(*self as u64)) }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let u = v.as_u64().ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(u).map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value { Value::from(*self) }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let i = v.as_i64().ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(i).map_err(|_| Error::custom(concat!(stringify!($t), " out of range")))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_json_value(v)? as f32)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            Ok(Some(T::from_json_value(v)?))
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![self.0.to_json_value(), self.1.to_json_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let a = v.as_array().ok_or_else(|| Error::custom("expected pair"))?;
        if a.len() != 2 {
            return Err(Error::custom("expected 2-element array"));
        }
        Ok((A::from_json_value(&a[0])?, B::from_json_value(&a[1])?))
    }
}

// --------------------------------------------------------------- snapshots
//
// The checkpoint format (crates/recover) serialises engine state: map-valued
// fields (breaker tables, budget windows), deques (inboxes, parked mail), and
// u128 accumulators (storage-cost numerators). JSON objects key on strings,
// so map keys go through [`MapKey`]; hash maps are written in sorted key
// order so the byte stream is deterministic regardless of hasher state.

/// A type usable as a JSON object key: round-trips through a string.
pub trait MapKey: Sized {
    /// The key rendered as a JSON object key.
    fn to_key(&self) -> String;
    /// Parse the key back.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! impl_mapkey_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse().map_err(|_| {
                    Error::custom(concat!("bad ", stringify!($t), " map key"))
                })
            }
        }
    )*};
}
impl_mapkey_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        // BTreeMap iterates in key order: deterministic as-is.
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::custom("expected object for map"))?;
        obj.iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_json_value(v)?)))
            .collect()
    }
}

impl<K, V, S> Serialize for std::collections::HashMap<K, V, S>
where
    K: MapKey,
    V: Serialize,
{
    fn to_json_value(&self) -> Value {
        // Hash iteration order is arbitrary: sort by rendered key so the
        // output bytes are deterministic.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_json_value()))
            .collect();
        entries.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries.into_iter().collect())
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: MapKey + Eq + std::hash::Hash,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::custom("expected object for map"))?;
        obj.iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_json_value(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

// u128/i128 exceed Number's u64 payload: carried as decimal strings,
// exactly (never through f64).
impl Serialize for u128 {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for u128 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        // accept a plain number too (small accumulators, hand-written JSON)
        if let Some(u) = v.as_u64() {
            return Ok(u as u128);
        }
        v.as_str()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| Error::custom("expected u128 (decimal string)"))
    }
}

impl Serialize for i128 {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for i128 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        if let Some(i) = v.as_i64() {
            return Ok(i as i128);
        }
        v.as_str()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| Error::custom("expected i128 (decimal string)"))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_json_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_json_value(),
            self.1.to_json_value(),
            self.2.to_json_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let a = v.as_array().ok_or_else(|| Error::custom("expected triple"))?;
        if a.len() != 3 {
            return Err(Error::custom("expected 3-element array"));
        }
        Ok((
            A::from_json_value(&a[0])?,
            B::from_json_value(&a[1])?,
            C::from_json_value(&a[2])?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_get_replace() {
        let mut m = Map::new();
        m.insert("a".into(), Value::from(1u32));
        assert!(m.insert("a".into(), Value::from(2u32)).is_some());
        assert_eq!(m.get("a").and_then(Value::as_u64), Some(2));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn map_equality_ignores_order() {
        let mut a = Map::new();
        a.insert("x".into(), Value::from(1u32));
        a.insert("y".into(), Value::from(2u32));
        let mut b = Map::new();
        b.insert("y".into(), Value::from(2u32));
        b.insert("x".into(), Value::from(1u32));
        assert_eq!(Value::Object(a), Value::Object(b));
    }

    #[test]
    fn index_missing_is_null() {
        let v = Value::Object(Map::new());
        assert!(v["nope"]["deeper"].is_null());
    }

    #[test]
    fn option_round_trip() {
        let some: Option<u32> = Some(7);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_json_value(&some.to_json_value()).unwrap(), Some(7));
        assert_eq!(Option::<u32>::from_json_value(&none.to_json_value()).unwrap(), None);
    }

    #[test]
    fn tuple_round_trip() {
        let v = (3u32, "hi".to_string()).to_json_value();
        let back: (u32, String) = Deserialize::from_json_value(&v).unwrap();
        assert_eq!(back, (3, "hi".to_string()));
    }

    #[test]
    fn number_cross_variant_equality() {
        assert_eq!(Value::from(1u64), Value::from(1i64));
        assert_ne!(Value::from(1u64), Value::from(1.0f64));
    }

    #[test]
    fn btreemap_round_trip_integer_keys() {
        let mut m = std::collections::BTreeMap::new();
        m.insert(42u32, vec![1u64, 2, 3]);
        m.insert(7u32, vec![]);
        let v = m.to_json_value();
        // integer keys become decimal object keys
        assert!(v.as_object().unwrap().get("42").is_some());
        let back: std::collections::BTreeMap<u32, Vec<u64>> =
            Deserialize::from_json_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn hashmap_round_trip_and_deterministic_order() {
        let mut m = std::collections::HashMap::new();
        for k in [9u32, 1, 5, 3, 7] {
            m.insert(k, (k as u64) * 10);
        }
        let v = m.to_json_value();
        // serialized in sorted key order regardless of hasher state
        let keys: Vec<&str> =
            v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
        let back: std::collections::HashMap<u32, u64> =
            Deserialize::from_json_value(&v).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn string_keyed_map_round_trip() {
        let mut m = std::collections::BTreeMap::new();
        m.insert("alpha".to_string(), Some(1u32));
        m.insert("beta".to_string(), None);
        let back: std::collections::BTreeMap<String, Option<u32>> =
            Deserialize::from_json_value(&m.to_json_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn bad_map_key_is_error_not_panic() {
        let mut obj = Map::new();
        obj.insert("not-a-number".into(), Value::from(1u32));
        let r: Result<std::collections::BTreeMap<u32, u32>, Error> =
            Deserialize::from_json_value(&Value::Object(obj));
        assert!(r.is_err());
    }

    #[test]
    fn vecdeque_round_trip_preserves_order() {
        let mut q = std::collections::VecDeque::new();
        q.push_back(2u32);
        q.push_back(3);
        q.push_front(1);
        let back: std::collections::VecDeque<u32> =
            Deserialize::from_json_value(&q.to_json_value()).unwrap();
        assert_eq!(back, q);
        assert_eq!(back.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn u128_round_trip_exact() {
        // larger than any u64: must survive exactly (via decimal string)
        let big: u128 = (u64::MAX as u128) * 1000 + 17;
        let v = big.to_json_value();
        assert_eq!(u128::from_json_value(&v).unwrap(), big);
        // small values may arrive as plain numbers (hand-written JSON)
        assert_eq!(u128::from_json_value(&Value::from(5u64)).unwrap(), 5u128);
        let neg: i128 = -(u64::MAX as i128) - 12345;
        assert_eq!(i128::from_json_value(&neg.to_json_value()).unwrap(), neg);
    }
}
