//! Offline stand-in for `serde_derive`.
//!
//! crates.io (and therefore `syn`/`quote`) is unavailable in this build
//! environment, so the derive parses the item's `TokenStream` by hand. It
//! supports exactly the shapes this workspace uses:
//!
//! - structs with named fields,
//! - newtype structs (`struct Id(pub u32)`) — serialised as the inner value,
//! - tuple structs — serialised as arrays,
//! - enums with unit variants — serialised as the variant-name string,
//! - enums with newtype variants (`Up(Info)`) — externally tagged,
//! - enums with tuple variants (`Window(u32, u32)`) — externally tagged as
//!   `{"Window": [a, b]}`,
//! - enums with struct variants under `#[serde(tag = "...")]` (internally
//!   tagged),
//! - generic structs (`struct Grid<T> { .. }`) — every type parameter gets
//!   a `Serialize`/`Deserialize` bound on the generated impl,
//! - field attributes `#[serde(rename = "...")]` and
//!   `#[serde(skip_serializing_if = "path")]`.
//!
//! Anything else (generic enums, lifetimes, const generics, untagged data
//! enums, data variants inside internally tagged enums) panics at expansion
//! time with a clear message rather than miscompiling.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Default, Clone)]
struct SerdeAttrs {
    rename: Option<String>,
    skip_serializing_if: Option<String>,
    tag: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: String,
    attrs: SerdeAttrs,
}

impl Field {
    fn key(&self) -> String {
        self.attrs.rename.clone().unwrap_or_else(|| self.name.clone())
    }
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    /// Single unnamed field, e.g. `Up(InstanceApiInfo)`.
    Newtype,
    /// Two or more unnamed fields, e.g. `Window(u32, u32)` — serialised as
    /// an array under the variant key.
    Tuple(usize),
    Named(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    attrs: SerdeAttrs,
    shape: VariantShape,
}

impl Variant {
    fn key(&self) -> String {
        self.attrs.rename.clone().unwrap_or_else(|| self.name.clone())
    }
}

#[derive(Debug)]
enum Item {
    NamedStruct { name: String, generics: Vec<String>, fields: Vec<Field> },
    TupleStruct { name: String, generics: Vec<String>, arity: usize },
    Enum { name: String, tag: Option<String>, variants: Vec<Variant> },
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();
    let mut container_attrs = SerdeAttrs::default();

    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.next() {
                    merge_serde_attr(&mut container_attrs, g.stream());
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde derive: expected item name, got {other:?}"),
    };
    let generics = parse_generics(&mut toks, &name);

    match kind.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                generics,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    generics,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            other => panic!("serde derive: unsupported struct body for {name}: {other:?}"),
        },
        "enum" => {
            if !generics.is_empty() {
                panic!("serde derive stub: generic enums are not supported ({name})");
            }
            match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                    name,
                    tag: container_attrs.tag,
                    variants: parse_variants(g.stream()),
                },
                other => panic!("serde derive: unsupported enum body for {name}: {other:?}"),
            }
        }
        other => panic!("serde derive: unsupported item kind `{other}`"),
    }
}

/// Parse an optional `<...>` generic-parameter list after the item name,
/// returning the type-parameter names. Trait bounds (`T: Clone + Default`,
/// including bounds that themselves contain angle brackets) are accepted
/// and dropped — the generated impl substitutes its own
/// `Serialize`/`Deserialize` bounds. Lifetimes and const parameters stay
/// unsupported.
fn parse_generics(
    toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
    name: &str,
) -> Vec<String> {
    match toks.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            toks.next();
        }
        _ => return Vec::new(),
    }
    let mut params = Vec::new();
    let mut depth = 1i32;
    let mut expecting_param = true;
    for tok in toks.by_ref() {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    return params;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expecting_param = true,
            TokenTree::Punct(p) if p.as_char() == '\'' => {
                panic!("serde derive stub: lifetime parameters are not supported ({name})");
            }
            TokenTree::Ident(id) if expecting_param => {
                let id = id.to_string();
                if id == "const" {
                    panic!("serde derive stub: const generics are not supported ({name})");
                }
                params.push(id);
                expecting_param = false;
            }
            _ => {} // bounds, defaults, …
        }
    }
    panic!("serde derive: unterminated generic-parameter list for {name}");
}

/// Fold one `#[...]` attribute body into `attrs` when it is a serde attr.
fn merge_serde_attr(attrs: &mut SerdeAttrs, body: TokenStream) {
    let mut toks = body.into_iter();
    match toks.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // doc comment, derive list, #[allow], …
    }
    let Some(TokenTree::Group(args)) = toks.next() else {
        return;
    };
    let mut inner = args.stream().into_iter().peekable();
    while let Some(tok) = inner.next() {
        let TokenTree::Ident(key) = tok else { continue };
        let key = key.to_string();
        // consume `= "literal"` when present
        let mut value = None;
        if let Some(TokenTree::Punct(p)) = inner.peek() {
            if p.as_char() == '=' {
                inner.next();
                if let Some(TokenTree::Literal(lit)) = inner.next() {
                    value = Some(unquote(&lit.to_string()));
                }
            }
        }
        match (key.as_str(), value) {
            ("rename", Some(v)) => attrs.rename = Some(v),
            ("skip_serializing_if", Some(v)) => attrs.skip_serializing_if = Some(v),
            ("tag", Some(v)) => attrs.tag = Some(v),
            ("default", _) | ("deny_unknown_fields", _) => {}
            (other, _) => panic!("serde derive stub: unsupported serde attribute `{other}`"),
        }
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        let mut attrs = SerdeAttrs::default();
        // leading attributes / visibility
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.next() {
                        merge_serde_attr(&mut attrs, g.stream());
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(fname) = tok else {
            panic!("serde derive: expected field name, got {tok:?}");
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field name, got {other:?}"),
        }
        // skip the type: consume until a comma at angle-bracket depth 0
        let mut depth = 0i32;
        while let Some(tok) = toks.peek() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    toks.next();
                    break;
                }
                _ => {}
            }
            toks.next();
        }
        fields.push(Field {
            name: fname.to_string(),
            attrs,
        });
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut count = 0usize;
    let mut any = false;
    for tok in body {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => any = true,
        }
    }
    if any {
        count + 1
    } else {
        0
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = body.into_iter().peekable();
    loop {
        let mut attrs = SerdeAttrs::default();
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.next() {
                        merge_serde_attr(&mut attrs, g.stream());
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(vname) = tok else {
            panic!("serde derive: expected variant name, got {tok:?}");
        };
        let shape = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                VariantShape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                toks.next();
                match arity {
                    0 => panic!(
                        "serde derive stub: zero-field tuple variants are not \
                         supported ({vname}) — use a unit variant"
                    ),
                    1 => VariantShape::Newtype,
                    n => VariantShape::Tuple(n),
                }
            }
            _ => VariantShape::Unit,
        };
        // optional discriminant (`= expr`) unsupported; commas separate
        if let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == ',' {
                toks.next();
            }
        }
        variants.push(Variant {
            name: vname.to_string(),
            attrs,
            shape,
        });
    }
    variants
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, generics, fields } => {
            let mut body = String::from("let mut __m = ::serde::Map::new();\n");
            for f in fields {
                let insert = format!(
                    "__m.insert(::std::string::String::from(\"{key}\"), \
                     ::serde::Serialize::to_json_value(&self.{fname}));",
                    key = f.key(),
                    fname = f.name
                );
                if let Some(pred) = &f.attrs.skip_serializing_if {
                    body.push_str(&format!(
                        "if !{pred}(&self.{fname}) {{ {insert} }}\n",
                        fname = f.name
                    ));
                } else {
                    body.push_str(&insert);
                    body.push('\n');
                }
            }
            body.push_str("::serde::Value::Object(__m)");
            impl_serialize(name, generics, &body)
        }
        Item::TupleStruct { name, generics, arity } => {
            let body = if *arity == 1 {
                "::serde::Serialize::to_json_value(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            impl_serialize(name, generics, &body)
        }
        Item::Enum { name, tag, variants } => {
            let mut arms = String::new();
            for v in variants {
                match (&v.shape, tag) {
                    (VariantShape::Unit, None) => {
                        arms.push_str(&format!(
                            "{name}::{v} => ::serde::Value::String(\
                             ::std::string::String::from(\"{key}\")),\n",
                            v = v.name,
                            key = v.key()
                        ));
                    }
                    (VariantShape::Newtype, None) => {
                        arms.push_str(&format!(
                            "{name}::{v}(__f0) => {{ let mut __m = ::serde::Map::new(); \
                             __m.insert(::std::string::String::from(\"{key}\"), \
                             ::serde::Serialize::to_json_value(__f0)); \
                             ::serde::Value::Object(__m) }}\n",
                            v = v.name,
                            key = v.key()
                        ));
                    }
                    (VariantShape::Tuple(arity), None) => {
                        let binders: Vec<String> =
                            (0..*arity).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({binders}) => {{ let mut __m = ::serde::Map::new(); \
                             __m.insert(::std::string::String::from(\"{key}\"), \
                             ::serde::Value::Array(vec![{items}])); \
                             ::serde::Value::Object(__m) }}\n",
                            v = v.name,
                            key = v.key(),
                            binders = binders.join(", "),
                            items = items.join(", ")
                        ));
                    }
                    (VariantShape::Newtype | VariantShape::Tuple(_), Some(_)) => {
                        panic!(
                            "serde derive stub: newtype/tuple variants inside tagged \
                             enums are not supported ({})",
                            v.name
                        );
                    }
                    (VariantShape::Unit, Some(tag)) => {
                        arms.push_str(&format!(
                            "{name}::{v} => {{ let mut __m = ::serde::Map::new(); \
                             __m.insert(::std::string::String::from(\"{tag}\"), \
                             ::serde::Value::String(::std::string::String::from(\"{key}\"))); \
                             ::serde::Value::Object(__m) }}\n",
                            v = v.name,
                            key = v.key()
                        ));
                    }
                    (VariantShape::Named(fields), tag_opt) => {
                        let binders: Vec<&str> =
                            fields.iter().map(|f| f.name.as_str()).collect();
                        let mut inner = String::from("let mut __m = ::serde::Map::new();\n");
                        if let Some(tag) = tag_opt {
                            inner.push_str(&format!(
                                "__m.insert(::std::string::String::from(\"{tag}\"), \
                                 ::serde::Value::String(::std::string::String::from(\"{key}\")));\n",
                                key = v.key()
                            ));
                        }
                        for f in fields {
                            inner.push_str(&format!(
                                "__m.insert(::std::string::String::from(\"{key}\"), \
                                 ::serde::Serialize::to_json_value({fname}));\n",
                                key = f.key(),
                                fname = f.name
                            ));
                        }
                        let object = "::serde::Value::Object(__m)";
                        let result = if tag_opt.is_some() {
                            object.to_string()
                        } else {
                            // externally tagged: {"Variant": {...}}
                            format!(
                                "{{ let mut __outer = ::serde::Map::new(); \
                                 __outer.insert(::std::string::String::from(\"{key}\"), {object}); \
                                 ::serde::Value::Object(__outer) }}",
                                key = v.key()
                            )
                        };
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binders} }} => {{ {inner} {result} }}\n",
                            v = v.name,
                            binders = binders.join(", ")
                        ));
                    }
                }
            }
            impl_serialize(name, &[], &format!("match self {{\n{arms}\n}}"))
        }
    }
}

/// `impl<T: Bound, …> Trait for Name<T, …>` header pieces: the
/// parameter list with `bound` applied to every type parameter, and the
/// parameterised type name. Both empty strings for non-generic items.
fn generic_header(generics: &[String], bound: &str) -> (String, String) {
    if generics.is_empty() {
        return (String::new(), String::new());
    }
    let bounded: Vec<String> = generics.iter().map(|g| format!("{g}: {bound}")).collect();
    (
        format!("<{}>", bounded.join(", ")),
        format!("<{}>", generics.join(", ")),
    )
}

fn impl_serialize(name: &str, generics: &[String], body: &str) -> String {
    let (params, args) = generic_header(generics, "::serde::Serialize");
    format!(
        "#[automatically_derived]\n\
         impl{params} ::serde::Serialize for {name}{args} {{\n\
           fn to_json_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, generics, fields } => {
            let mut body = format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::Error::custom(\"expected object for {name}\"))?;\n"
            );
            body.push_str(&format!("Ok({name} {{\n"));
            for f in fields {
                body.push_str(&format!(
                    "{fname}: ::serde::Deserialize::from_json_value(\
                     __obj.get(\"{key}\").unwrap_or(&::serde::Value::Null))?,\n",
                    fname = f.name,
                    key = f.key()
                ));
            }
            body.push_str("})");
            impl_deserialize(name, generics, &body)
        }
        Item::TupleStruct { name, generics, arity } => {
            let body = if *arity == 1 {
                format!("Ok({name}(::serde::Deserialize::from_json_value(__v)?))")
            } else {
                let mut b = format!(
                    "let __arr = __v.as_array().ok_or_else(|| \
                     ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                     if __arr.len() != {arity} {{ return Err(::serde::Error::custom(\
                     \"wrong tuple arity for {name}\")); }}\n"
                );
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_json_value(&__arr[{i}])?"))
                    .collect();
                b.push_str(&format!("Ok({name}({}))", items.join(", ")));
                b
            };
            impl_deserialize(name, generics, &body)
        }
        Item::Enum { name, tag, variants } => {
            let body = if let Some(tag) = tag {
                let mut arms = String::new();
                for v in variants {
                    match &v.shape {
                        VariantShape::Unit => {
                            arms.push_str(&format!(
                                "\"{key}\" => Ok({name}::{v}),\n",
                                key = v.key(),
                                v = v.name
                            ));
                        }
                        VariantShape::Newtype | VariantShape::Tuple(_) => {
                            unreachable!("rejected during serialize")
                        }
                        VariantShape::Named(fields) => {
                            let mut ctor = format!("Ok({name}::{v} {{\n", v = v.name);
                            for f in fields {
                                ctor.push_str(&format!(
                                    "{fname}: ::serde::Deserialize::from_json_value(\
                                     __obj.get(\"{key}\").unwrap_or(&::serde::Value::Null))?,\n",
                                    fname = f.name,
                                    key = f.key()
                                ));
                            }
                            ctor.push_str("})");
                            arms.push_str(&format!("\"{key}\" => {ctor},\n", key = v.key()));
                        }
                    }
                }
                format!(
                    "let __obj = __v.as_object().ok_or_else(|| \
                     ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                     let __tag = __obj.get(\"{tag}\").and_then(::serde::Value::as_str)\
                     .ok_or_else(|| ::serde::Error::custom(\"missing tag for {name}\"))?;\n\
                     match __tag {{\n{arms}\
                     __other => Err(::serde::Error::custom(format!(\
                     \"unknown {name} variant `{{__other}}`\"))),\n}}"
                )
            } else {
                // externally tagged: unit variants are strings, data
                // variants are single-key objects {"Variant": ...}
                let mut str_arms = String::new();
                let mut obj_arms = String::new();
                for v in variants {
                    match &v.shape {
                        VariantShape::Unit => {
                            str_arms.push_str(&format!(
                                "\"{key}\" => Ok({name}::{v}),\n",
                                key = v.key(),
                                v = v.name
                            ));
                        }
                        VariantShape::Newtype => {
                            obj_arms.push_str(&format!(
                                "\"{key}\" => Ok({name}::{v}(\
                                 ::serde::Deserialize::from_json_value(__inner)?)),\n",
                                key = v.key(),
                                v = v.name
                            ));
                        }
                        VariantShape::Tuple(arity) => {
                            let items: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_json_value(&__arr[{i}])?")
                                })
                                .collect();
                            obj_arms.push_str(&format!(
                                "\"{key}\" => {{ let __arr = __inner.as_array()\
                                 .ok_or_else(|| ::serde::Error::custom(\
                                 \"expected array for {name}::{v}\"))?;\n\
                                 if __arr.len() != {arity} {{ return Err(\
                                 ::serde::Error::custom(\"wrong tuple arity for \
                                 {name}::{v}\")); }}\n\
                                 Ok({name}::{v}({items})) }},\n",
                                key = v.key(),
                                v = v.name,
                                items = items.join(", ")
                            ));
                        }
                        VariantShape::Named(fields) => {
                            let mut ctor = format!(
                                "{{ let __obj = __inner.as_object().ok_or_else(|| \
                                 ::serde::Error::custom(\"expected object\"))?; Ok({name}::{v} {{\n",
                                v = v.name
                            );
                            for f in fields {
                                ctor.push_str(&format!(
                                    "{fname}: ::serde::Deserialize::from_json_value(\
                                     __obj.get(\"{key}\").unwrap_or(&::serde::Value::Null))?,\n",
                                    fname = f.name,
                                    key = f.key()
                                ));
                            }
                            ctor.push_str("}) }");
                            obj_arms.push_str(&format!("\"{key}\" => {ctor},\n", key = v.key()));
                        }
                    }
                }
                format!(
                    "match __v {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n{str_arms}\
                     __other => Err(::serde::Error::custom(format!(\
                     \"unknown {name} variant `{{__other}}`\"))),\n}},\n\
                     ::serde::Value::Object(__map) => {{\n\
                     let (__key, __inner) = __map.iter().next().map(|(k, v)| (k.as_str(), v))\
                     .ok_or_else(|| ::serde::Error::custom(\"empty object for {name}\"))?;\n\
                     match __key {{\n{obj_arms}\
                     __other => Err(::serde::Error::custom(format!(\
                     \"unknown {name} variant `{{__other}}`\"))),\n}}\n}}\n\
                     _ => Err(::serde::Error::custom(\"expected string or object for {name}\")),\n\
                     }}"
                )
            };
            impl_deserialize(name, &[], &body)
        }
    }
}

fn impl_deserialize(name: &str, generics: &[String], body: &str) -> String {
    let (params, args) = generic_header(generics, "::serde::Deserialize");
    format!(
        "#[automatically_derived]\n\
         impl{params} ::serde::Deserialize for {name}{args} {{\n\
           fn from_json_value(__v: &::serde::Value) -> \
           ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}
