//! Offline stand-in for the `rand_distr` crate: the distributions the
//! worldgen calibration actually uses (`Normal`, `LogNormal`, `Beta`),
//! implemented with Box–Muller and Marsaglia–Tsang sampling over the
//! vendored deterministic [`rand`] core.

pub use rand::distributions::Distribution;
use rand::{Rng, RngCore};

/// Parameter error for distribution constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameters")
    }
}

impl std::error::Error for Error {}

fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Box–Muller; one fresh pair per call keeps the sampler stateless.
    loop {
        let u1: f64 = rng.gen();
        if u1 > 0.0 {
            let u2: f64 = rng.gen();
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// Normal distribution N(mean, std_dev²).
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// New normal; `std_dev` must be finite and non-negative.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, Error> {
        if std_dev.is_finite() && std_dev >= 0.0 && mean.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// Log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// New log-normal over the underlying normal's `mu`/`sigma`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if sigma.is_finite() && sigma >= 0.0 && mu.is_finite() {
            Ok(LogNormal { mu, sigma })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// Gamma(shape, scale=1) sampler via Marsaglia–Tsang, used by [`Beta`].
fn gamma_sample<R: RngCore + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
        let u: f64 = rng.gen();
        return gamma_sample(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.gen();
        if u < 1.0 - 0.0331 * x * x * x * x {
            return d * v;
        }
        if u > 0.0 && u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Beta(alpha, beta) distribution on (0, 1).
#[derive(Debug, Clone, Copy)]
pub struct Beta {
    alpha: f64,
    beta: f64,
}

impl Beta {
    /// New Beta; both shapes must be positive and finite.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, Error> {
        if alpha > 0.0 && beta > 0.0 && alpha.is_finite() && beta.is_finite() {
            Ok(Beta { alpha, beta })
        } else {
            Err(Error)
        }
    }
}

impl Distribution<f64> for Beta {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let x = gamma_sample(self.alpha, rng);
        let y = gamma_sample(self.beta, rng);
        x / (x + y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Normal::new(3.0, 2.0).unwrap();
        let s: Vec<f64> = (0..200_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&s);
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn lognormal_median() {
        // Median of LogNormal(mu, sigma) is exp(mu).
        let mut rng = StdRng::seed_from_u64(12);
        let d = LogNormal::new(2.0f64.ln(), 1.3).unwrap();
        let mut s: Vec<f64> = (0..100_001).map(|_| d.sample(&mut rng)).collect();
        s.sort_by(f64::total_cmp);
        let median = s[s.len() / 2];
        assert!((median - 2.0).abs() < 0.1, "median {median}");
    }

    #[test]
    fn beta_mean_and_support() {
        let mut rng = StdRng::seed_from_u64(13);
        let d = Beta::new(5.0, 1.8).unwrap();
        let s: Vec<f64> = (0..100_000).map(|_| d.sample(&mut rng)).collect();
        assert!(s.iter().all(|&x| (0.0..=1.0).contains(&x)));
        let (mean, _) = moments(&s);
        let expect = 5.0 / (5.0 + 1.8);
        assert!((mean - expect).abs() < 0.01, "mean {mean} vs {expect}");
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Beta::new(0.0, 1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, -1.0).is_err());
    }
}
