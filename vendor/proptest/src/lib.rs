//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace uses: the
//! [`Strategy`] trait over ranges / tuples / `any::<T>()` / regex-lite
//! string patterns / `collection::vec`, `prop_map`, and the [`proptest!`]
//! macro with `prop_assert!`/`prop_assert_eq!`/`prop_assert_ne!`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! inputs via `Debug` instead), and a fixed deterministic case count seeded
//! from the test name, so failures are reproducible run-over-run.

use rand::prelude::*;

/// Cases each `proptest!` test runs.
pub const CASES: usize = 64;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Deterministic per-test RNG.
pub fn rng_for(test_name: &str) -> TestRng {
    // FNV-1a over the test name keeps runs stable without global state.
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(h)
}

/// A generator of test-case values.
pub trait Strategy {
    /// The value produced.
    type Value;

    /// Draw one case.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy
    for (A, B, C, D, E)
{
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
            self.4.generate(rng),
        )
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Regex-lite string strategy: `&str` patterns made of literal chars and
/// `[a-z0-9-]` classes, each optionally followed by `{m,n}`, `{n}`, `?`,
/// `*` (0..=8) or `+` (1..=8). Covers the patterns used in this workspace.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for (chars, lo, hi) in &atoms {
            let n = if lo == hi { *lo } else { rng.gen_range(*lo..=*hi) };
            for _ in 0..n {
                out.push(chars[rng.gen_range(0..chars.len())]);
            }
        }
        out
    }
}

type Atom = (Vec<char>, usize, usize);

fn parse_pattern(pat: &str) -> Vec<Atom> {
    let chars: Vec<char> = pat.chars().collect();
    let mut i = 0usize;
    let mut atoms: Vec<Atom> = Vec::new();
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("unclosed [ in pattern")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (a, b) = (chars[j], chars[j + 2]);
                        for c in a..=b {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // optional repetition suffix
        let (lo, hi) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .expect("unclosed { in pattern")
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                if let Some((a, b)) = body.split_once(',') {
                    (a.trim().parse().unwrap(), b.trim().parse().unwrap())
                } else {
                    let n: usize = body.trim().parse().unwrap();
                    (n, n)
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        atoms.push((set, lo, hi));
    }
    atoms
}

/// `any::<T>()` support.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64, f32);

/// Strategy for any value of `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Unconstrained values of `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Length specification accepted by [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Vector of values from `element`, with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-case failure carrying the rendered assertion message.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy,
    };
    pub use crate::collection as prop_collection;
}

/// proptest's main entry: wraps `#[test]` functions whose arguments are
/// drawn from strategies.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..$crate::CASES {
                    let mut __dbg = ::std::string::String::new();
                    $(
                        let __tmp = $crate::Strategy::generate(&($strat), &mut __rng);
                        __dbg.push_str(&format!(
                            concat!(stringify!($arg), " = {:?}; "),
                            &__tmp
                        ));
                        let $arg = __tmp;
                    )+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = __result {
                        panic!(
                            "proptest case {}/{} failed: {}\n  inputs: {}",
                            __case + 1, $crate::CASES, e.0, __dbg
                        );
                    }
                }
            }
        )*
    };
}

/// Assert inside a `proptest!` body (fails the case, not the process).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($a), stringify!($b), __a, __b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} ({:?} vs {:?}; {})",
                stringify!($a), stringify!($b), __a, __b, format!($($fmt)+)
            )));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a), stringify!($b), __a
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        /// Strategies honour their ranges.
        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in 0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..1.0).contains(&y), "y = {}", y);
        }

        /// Tuple + vec composition works like upstream.
        #[test]
        fn vec_of_pairs(edges in super::collection::vec((0u32..5, 0u32..5), 0..20)) {
            prop_assert!(edges.len() < 20);
            for (a, b) in edges {
                prop_assert!(a < 5 && b < 5);
            }
        }

        /// Fixed-size vec form.
        #[test]
        fn fixed_len_vec(mask in super::collection::vec(any::<bool>(), 25)) {
            prop_assert_eq!(mask.len(), 25);
        }
    }

    #[test]
    fn regex_lite_pattern() {
        let mut rng = super::rng_for("regex");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9-]{0,12}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 13, "{s}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    #[test]
    fn prop_map_transforms() {
        let mut rng = super::rng_for("map");
        let s = (0u32..10).prop_map(|v| v * 2);
        for _ in 0..50 {
            let v = Strategy::generate(&s, &mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = super::rng_for("same");
        let mut b = super::rng_for("same");
        let strat = super::collection::vec(0u32..100, 0..10);
        for _ in 0..20 {
            assert_eq!(Strategy::generate(&strat, &mut a), Strategy::generate(&strat, &mut b));
        }
    }
}
