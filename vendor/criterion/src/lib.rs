//! Offline stand-in for `criterion`.
//!
//! Provides the subset of the criterion API the workspace's benches use
//! (`bench_function`, `benchmark_group`, `bench_with_input`, `black_box`,
//! `criterion_group!`, `criterion_main!`) over a simple wall-clock harness:
//! each benchmark is warmed up briefly, then timed over enough iterations
//! to fill a short measurement window, and the median per-iteration time is
//! printed. No statistical analysis or HTML reports.

use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a value/computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for parameterised benches.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Per-benchmark timing driver.
pub struct Bencher {
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
    measure_for: Duration,
}

impl Bencher {
    /// Time `f`, storing the median per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: run until ~10% of the window is spent.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < self.measure_for / 10 {
            black_box(f());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed() / calib_iters.max(1) as u32;
        // Measurement: batches of `batch` iterations, median of batch means.
        let batch = (self.measure_for.as_nanos() / 20 / per_iter.as_nanos().max(1))
            .clamp(1, 1_000_000) as u64;
        let mut samples: Vec<Duration> = Vec::new();
        let start = Instant::now();
        while start.elapsed() < self.measure_for || samples.len() < 5 {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t0.elapsed() / batch as u32);
            if samples.len() >= 200 {
                break;
            }
        }
        samples.sort_unstable();
        self.last = Some(samples[samples.len() / 2]);
    }
}

/// Top-level harness handle.
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // CRITERION_QUICK trims the measurement window (used by CI).
        let quick = std::env::var("CRITERION_QUICK").is_ok()
            || std::env::args().any(|a| a == "--quick");
        Criterion {
            measure_for: if quick {
                Duration::from_millis(50)
            } else {
                Duration::from_millis(400)
            },
        }
    }
}

fn run_one(name: &str, measure_for: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        last: None,
        measure_for,
    };
    f(&mut b);
    match b.last {
        Some(t) => println!("bench {name:<40} {t:>12.2?}/iter"),
        None => println!("bench {name:<40} (no iter() call)"),
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.measure_for, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    name: String,
    criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Criterion API compat: sample count is ignored by this harness.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Criterion API compat: measurement time override.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measure_for = d;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.criterion.measure_for, &mut f);
        self
    }

    /// Run one parameterised benchmark in the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(&name, self.criterion.measure_for, &mut |b| f(b, input));
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_something() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function("inner", |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
    }
}
