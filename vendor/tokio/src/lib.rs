//! Placeholder for `tokio`.
//!
//! The build environment has no crates.io access, so the real async runtime
//! cannot be fetched. Every module that needs tokio is feature-gated behind
//! the non-default `net` cargo feature of its crate (`fediscope_httpwire`,
//! `fediscope_crawler`, `fediscope_simnet`, `fediscope_cli`, and the
//! umbrella `fediscope` crate); this empty crate only exists so workspace
//! dependency resolution succeeds. Building *with* `net` enabled requires
//! replacing this path dependency with the real `tokio` from crates.io
//! (one-line change in the workspace manifest once network is available).

compile_error!(
    "the vendored tokio placeholder cannot back the `net` feature; \
     swap it for the real crates.io tokio to build networked components"
);
