//! Facade over [`fediscope_exec`] exposing the subset of tokio's API this
//! workspace uses, under tokio's module layout. The `net`-gated code
//! (`httpwire`, `crawler`, `simnet`, `cli`) compiles unchanged against
//! either engine; here it runs on the deterministic single-threaded
//! executor with virtual time and in-memory sockets — fully offline and
//! bit-reproducible. Point the workspace `tokio` dependency at the registry
//! to swap the real runtime back in.
//!
//! Surface covered: `runtime::{Runtime, Builder}`, `spawn`,
//! `task::JoinHandle`, `time::{sleep, timeout, interval}`,
//! `net::{TcpListener, TcpStream}`, `io::{AsyncRead*, AsyncWrite*}`,
//! `sync::{Semaphore, watch}`, `#[tokio::main]`, `#[tokio::test]`, and a
//! two-branch `select!`.

/// Runtime construction (`Runtime`, `Builder`).
pub mod runtime {
    pub use fediscope_exec::runtime::{Builder, Runtime};
}

/// Task handles and spawning.
pub mod task {
    pub use fediscope_exec::runtime::{spawn, JoinError, JoinHandle};
}

pub use fediscope_exec::runtime::spawn;

/// Virtual time: `sleep`, `timeout`, `interval`.
pub mod time {
    pub use fediscope_exec::time::{
        interval, sleep, timeout, Interval, MissedTickBehavior, Sleep, Timeout,
    };

    // Not part of real tokio's surface: the deterministic executor's
    // virtual clock, read by checkpointing callers so a resumed process
    // can continue the same virtual timeline (`Runtime::starting_at`).
    pub use fediscope_exec::time::now_nanos;

    /// Time error types.
    pub mod error {
        pub use fediscope_exec::time::Elapsed;
    }
}

/// In-memory TCP transport.
pub mod net {
    pub use fediscope_exec::net::{TcpListener, TcpStream};
}

/// Async IO traits and extension methods.
pub mod io {
    pub use fediscope_exec::io::{AsyncRead, AsyncReadExt, AsyncWrite, AsyncWriteExt};
}

/// Synchronisation primitives (`Semaphore`, `watch`).
pub mod sync {
    pub use fediscope_exec::sync::{watch, AcquireError, OwnedSemaphorePermit, Semaphore};
}

/// Combinators backing [`select!`] (not part of tokio's public API).
pub mod future {
    pub use fediscope_exec::future::{select2, Either};
}

pub use tokio_macros::{main, test};

/// Two-branch `select!` over the deterministic executor.
///
/// Unlike tokio's, this select is **biased**: branches are polled in
/// textual order every time, so races resolve identically on every run —
/// which is the point of the whole crate. Exactly two branches are
/// supported (the only shape used in this workspace).
#[macro_export]
macro_rules! select {
    (
        $p1:pat = $f1:expr => $b1:block
        $p2:pat = $f2:expr => $b2:expr $(,)?
    ) => {
        $crate::select!(@impl $p1, $f1, $b1, $p2, $f2, $b2)
    };
    (
        $p1:pat = $f1:expr => $b1:expr,
        $p2:pat = $f2:expr => $b2:expr $(,)?
    ) => {
        $crate::select!(@impl $p1, $f1, $b1, $p2, $f2, $b2)
    };
    (@impl $p1:pat, $f1:expr, $b1:expr, $p2:pat, $f2:expr, $b2:expr) => {
        match $crate::future::select2(::std::pin::pin!($f1), ::std::pin::pin!($f2)).await {
            $crate::future::Either::Left(__select_out) => {
                let $p1 = __select_out;
                $b1
            }
            $crate::future::Either::Right(__select_out) => {
                let $p2 = __select_out;
                $b2
            }
        }
    };
}
