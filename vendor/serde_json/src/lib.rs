//! Offline stand-in for `serde_json`: the text-layer facade over the
//! vendored [`serde`] value model. Supports the workspace's full usage:
//! `to_string`, `to_value`, `from_str`, `from_value`, `from_slice`,
//! [`Value`] inspection/indexing, and the [`json!`] macro.

pub use serde::{Error, Map, Number, Value};

/// Result alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialise to compact JSON text.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    Ok(serde::format_value(&value.to_json_value()))
}

/// Serialise to pretty-printed JSON text (two-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    fn pretty(v: &Value, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent + 1);
        let close = "  ".repeat(indent);
        match v {
            Value::Array(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad);
                    pretty(item, indent + 1, out);
                }
                out.push('\n');
                out.push_str(&close);
                out.push(']');
            }
            Value::Object(m) if !m.is_empty() => {
                out.push_str("{\n");
                for (i, (k, val)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&pad);
                    out.push_str(&serde::format_value(&Value::String(k.clone())));
                    out.push_str(": ");
                    pretty(val, indent + 1, out);
                }
                out.push('\n');
                out.push_str(&close);
                out.push('}');
            }
            other => out.push_str(&serde::format_value(other)),
        }
    }
    let mut out = String::new();
    pretty(&value.to_json_value(), 0, &mut out);
    Ok(out)
}

/// Serialise to a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_json_value())
}

/// Parse a value of `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let v = serde::parse_value(s)?;
    T::from_json_value(&v)
}

/// Parse a value of `T` from JSON bytes.
pub fn from_slice<T: serde::Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|_| Error::custom("invalid utf-8"))?;
    from_str(s)
}

/// Convert a [`Value`] into `T`.
pub fn from_value<T: serde::Deserialize>(v: Value) -> Result<T> {
    T::from_json_value(&v)
}

/// Build a [`Value`] with JSON-literal syntax.
///
/// Object and array entries may be arbitrary Rust expressions (method
/// calls, `format!`, casts…), matched by a token-tree muncher that splits
/// on top-level commas — same surface as the real `serde_json::json!`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($body:tt)* ]) => {{
        #![allow(clippy::vec_init_then_push)]
        #[allow(unused_mut)]
        let mut __a = ::std::vec::Vec::new();
        $crate::json_array_entry!(__a, $($body)*);
        $crate::Value::Array(__a)
    }};
    ({ $($body:tt)* }) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $crate::json_object_entry!(__m, $($body)*);
        $crate::Value::Object(__m)
    }};
    ($other:expr) => {
        $crate::value_from($other)
    };
}

/// `json!` internals: munch object entries. Single-token values (nested
/// `{…}`/`[…]` groups, literals, `null`) are tried first; anything longer
/// falls through to the `expr` arms, which consume up to the next
/// top-level comma.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_entry {
    ($m:ident $(,)?) => {};
    ($m:ident, $key:tt : $val:tt , $($rest:tt)*) => {
        $m.insert(::std::string::String::from($key), $crate::json!($val));
        $crate::json_object_entry!($m, $($rest)*);
    };
    ($m:ident, $key:tt : $val:tt) => {
        $m.insert(::std::string::String::from($key), $crate::json!($val));
    };
    ($m:ident, $key:tt : $val:expr , $($rest:tt)*) => {
        $m.insert(::std::string::String::from($key), $crate::json!($val));
        $crate::json_object_entry!($m, $($rest)*);
    };
    ($m:ident, $key:tt : $val:expr) => {
        $m.insert(::std::string::String::from($key), $crate::json!($val));
    };
}

/// `json!` internals: munch array items, same strategy as objects.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_entry {
    ($a:ident $(,)?) => {};
    ($a:ident, $val:tt , $($rest:tt)*) => {
        $a.push($crate::json!($val));
        $crate::json_array_entry!($a, $($rest)*);
    };
    ($a:ident, $val:tt) => {
        $a.push($crate::json!($val));
    };
    ($a:ident, $val:expr , $($rest:tt)*) => {
        $a.push($crate::json!($val));
        $crate::json_array_entry!($a, $($rest)*);
    };
    ($a:ident, $val:expr) => {
        $a.push($crate::json!($val));
    };
}

/// `json!` helper: convert an expression into a [`Value`] via `Serialize`.
pub fn value_from<T: serde::Serialize>(v: T) -> Value {
    v.to_json_value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "uri": "mastodon.social",
            "stats": { "user_count": 12, "status_count": 34u64 },
            "flags": [true, false, null],
            "ratio": 0.5,
        });
        assert_eq!(v["uri"].as_str(), Some("mastodon.social"));
        assert_eq!(v["stats"]["user_count"].as_u64(), Some(12));
        assert_eq!(v["flags"][2], Value::Null);
        assert_eq!(v["ratio"].as_f64(), Some(0.5));
    }

    #[test]
    fn to_string_from_str_round_trip() {
        let v = json!({"a": [1, 2, 3], "b": "x"});
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_parses_back() {
        let v = json!({"a": [1, {"b": 2}], "c": {}});
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn typed_round_trip() {
        let pairs: Vec<(u32, u32)> = vec![(1, 2), (3, 4)];
        let s = to_string(&pairs).unwrap();
        assert_eq!(s, "[[1,2],[3,4]]");
        let back: Vec<(u32, u32)> = from_str(&s).unwrap();
        assert_eq!(back, pairs);
    }
}
