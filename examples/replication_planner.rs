//! Replication planner: an instance administrator asks "how should the
//! federation replicate toots so AS failures don't erase history?" —
//! compares No-Rep / S-Rep / Random(n) / capacity-weighted placement and a
//! DHT-backed index, as §5.2 of the paper does.
//!
//! ```sh
//! cargo run --release --example replication_planner
//! ```

use fediscope::core::{Metric, Observatory};
use fediscope::prelude::*;
use fediscope::replication::eval::{singleton_groups, AvailabilitySweep};
use fediscope::replication::weighted::weighted_random_curve;
use fediscope::replication::HashRing;

fn main() {
    let world = Generator::generate_world(WorldConfig::small(99));
    let obs = Observatory::new(world);
    let view = obs.content_view();

    // Threat model: the 20 most content-heavy instances fail one by one.
    let mut order = obs.instance_order(Metric::Toots);
    order.truncate(20);

    println!("toot availability after the top-20 instances fail:\n");
    let report = |label: &str, availability: f64| {
        println!("  {label:<28} {:>6.2}%", availability * 100.0);
    };

    // One batched pass evaluates every strategy at once.
    let batch = AvailabilitySweep::singletons(view, &order).evaluate(&[1, 2, 4]);
    report("no replication", batch.none.last().unwrap().availability);
    report(
        "subscription (Mastodon-ish)",
        batch.subscription.last().unwrap().availability,
    );
    for (n, r) in &batch.random {
        report(
            &format!("random, {n} replica(s)"),
            r.last().unwrap().availability,
        );
    }
    let groups = singleton_groups(&order);

    // The paper's closing suggestion: weight replica placement by capacity.
    let capacities: Vec<f64> = obs
        .toots_per_instance
        .iter()
        .map(|&t| (t as f64).max(1.0))
        .collect();
    let weighted = weighted_random_curve(view, &capacities, 2, &groups, 16, 1);
    report(
        "capacity-weighted, 2 replicas",
        weighted.last().unwrap().availability,
    );
    println!(
        "\n  note: weighting by raw capacity concentrates replicas on the very\n\
         \x20 instances that fail in this threat model — the same correlated-\n\
         \x20 placement trap the paper found in subscription replication.\n\
         \x20 Capacity-aware placement needs a diversity constraint."
    );

    // And the global index that makes replicas discoverable: a consistent-
    // hash ring over the surviving instances.
    let mut ring = HashRing::new(0..view.n_instances as u32, 32);
    for &dead in &order {
        ring.remove(dead);
    }
    let replicas = ring.lookup(0xfeed_beef, 3);
    println!(
        "\nDHT index: after the failures, toot 0xfeedbeef resolves to instances {replicas:?}"
    );
    println!(
        "({} instances remain on the ring)",
        ring.instance_count()
    );
}
