//! Quickstart: generate a synthetic fediverse, run the headline analyses,
//! and print the paper-vs-measured verdicts.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use fediscope::core::{population, report, verdicts};
use fediscope::prelude::*;

fn main() {
    // 1. A deterministic world: 433 instances, 12K users, 15 months of
    //    availability history, follower graph, Twitter baselines.
    let world = Generator::generate_world(WorldConfig::small(42));
    println!(
        "world: {} instances, {} users, {} follower edges, {} toots\n",
        world.instances.len(),
        world.users.len(),
        world.follows.len(),
        world.total_toots()
    );

    // 2. Wrap it in an Observatory (lazy caches for graphs and aggregates).
    let obs = Observatory::new(world);

    // 3. Run a couple of §4 analyses.
    println!("{}", report::render_fig02(&population::fig02_open_closed(&obs)));
    println!("{}", report::render_fig05(&population::fig05_hosting(&obs)));

    // 4. Check the paper's headline claims hold on this world.
    let vs = verdicts::evaluate(&obs, true);
    println!("{}", report::render_verdicts(&vs));
    println!(
        "{}/{} claims replicate",
        vs.len() - verdicts::failed(&vs),
        vs.len()
    );
}
