//! Outage postmortem: run the §4.4 availability analytics over a world's
//! 15-month history — downtime distribution, AS-wide co-failures (Table 1),
//! certificate-expiry attribution (Fig. 9b) and the worst blackout day.
//!
//! ```sh
//! cargo run --release --example outage_postmortem
//! ```

use fediscope::core::{availability, report, Observatory};
use fediscope::monitor::certs::attribute_cert_outages;
use fediscope::prelude::*;

fn main() {
    let world = Generator::generate_world(WorldConfig::small(2024));
    let obs = Observatory::new(world);

    // Downtime landscape (Fig. 7).
    println!("{}", report::render_fig07(&availability::fig07_downtime(&obs)));

    // Who went down together? (Table 1)
    let rows = availability::table1_as_failures(&obs, 3);
    println!("{}", report::render_table1(&rows));
    for row in &rows {
        println!(
            "  ⚠ {} ({}): {} co-failures across {} instances — {} users affected",
            row.asn, row.org, row.failures, row.instances, row.users
        );
    }

    // Certificate forensics (Fig. 9).
    let cert_report = attribute_cert_outages(&obs.world.instances, &obs.world.schedules);
    println!(
        "\ncertificate expiries: {} outages attributed ({} of all outages)",
        cert_report.attributed,
        report::pct(cert_report.attributed_fraction()),
    );
    println!(
        "worst expiry day: {} with {} instances down simultaneously",
        cert_report.worst_day,
        cert_report.worst_day_count()
    );

    // The worst whole-day blackout (Fig. 10's tail).
    let outages = availability::fig10_outages(&obs);
    println!(
        "worst whole-day blackout: {} — {} of all toots unreachable for the full day",
        outages.worst_day.0,
        report::pct(outages.worst_day.1)
    );
}
