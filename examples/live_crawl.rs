//! Live crawl: boot the simulated fediverse on a loopback socket and run
//! the real measurement toolkit against it — instance monitoring, toot
//! crawling and follower scraping over actual HTTP.
//!
//! ```sh
//! cargo run --release --example live_crawl
//! ```

use fediscope::crawler::discovery::SeedList;
use fediscope::crawler::monitor::InstanceMonitor;
use fediscope::crawler::politeness::Politeness;
use fediscope::crawler::{followers, toots};
use fediscope::httpwire::Client;
use fediscope::model::time::Epoch;
use fediscope::prelude::*;
use fediscope::simnet::{launch, FaultPlan};
use std::sync::Arc;

#[tokio::main]
async fn main() {
    // A small world so the crawl finishes in seconds; flaky network to show
    // the retry machinery doing its job.
    let mut cfg = WorldConfig::tiny(7);
    cfg.n_instances = 20;
    cfg.n_users = 400;
    cfg.toots_per_user_open = 10.0;
    cfg.toots_per_user_closed = 18.0;
    let world = Arc::new(Generator::generate_world(cfg));
    let net = launch(world.clone(), FaultPlan::flaky(), 1)
        .await
        .expect("simnet boots");
    println!("simulated fediverse listening on {}", net.addr());

    let seeds = SeedList::for_simnet(&world, net.addr());
    let politeness = Politeness {
        retries: 5,
        ..Politeness::fast()
    };

    // --- 1. one monitoring sweep (the mnm.social 5-minute poll) ----------
    net.state.clock.set(Epoch(40_000));
    let mut monitor = InstanceMonitor::new(seeds.clone(), politeness.clone());
    monitor.poll_all(Epoch(40_000)).await;
    let up = monitor
        .dataset()
        .series
        .iter()
        .filter(|s| s.polls.last().is_some_and(|(_, r)| r.is_up()))
        .count();
    println!("monitor sweep: {up}/{} instances answered", seeds.len());

    // --- 2. the toot crawl -------------------------------------------------
    let dataset = toots::crawl_toots(&seeds, &politeness, &Client::default()).await;
    println!(
        "toot crawl: {} instances crawled, {} home toots collected ({}% coverage)",
        dataset.crawled_instances(),
        dataset.total_home_toots(),
        (dataset.coverage(world.total_toots()) * 100.0).round()
    );

    // --- 3. follower scrape ------------------------------------------------
    let targets: Vec<_> = world
        .users
        .iter()
        .filter(|u| u.has_tooted())
        .map(|u| (u.id, u.instance))
        .collect();
    let graphs =
        followers::scrape_followers(&seeds, &targets, &politeness, &Client::default()).await;
    println!(
        "follower scrape: {} accounts, {} follow edges \
         (ground truth {} — partial, as in the paper: only tooting users' \
         ego networks on instances reachable at the crawl epoch)",
        graphs.accounts.len(),
        graphs.follows.len(),
        world.follows.len()
    );

    net.shutdown().await;
    println!("done.");
}
